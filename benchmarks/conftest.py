"""Shared benchmark plumbing.

Every benchmark regenerates one table/figure of the paper's Section 6
and records the series rows under ``benchmarks/results/`` so
EXPERIMENTS.md can cite actual measured numbers.

``REPRO_SCALE`` (default 1.0) scales workload sizes: the defaults are
laptop-scale versions of the paper's sweeps with identical structure
(same topologies, same data placement, same ASR grids).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).parent
RESULTS_DIR = BENCHMARKS_DIR / "results"


def pytest_collection_modifyitems(items):
    """Mark every test under benchmarks/ so CI can deselect the slow
    figure regenerations with ``-m "not benchmark_suite"``."""
    for item in items:
        if BENCHMARKS_DIR in Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.benchmark_suite)


def scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def scaled(value: int, minimum: int = 1) -> int:
    return max(minimum, int(value * scale()))


class SeriesRecorder:
    """Appends labelled measurement rows to a per-figure results file."""

    def __init__(self, figure: str):
        self.figure = figure
        RESULTS_DIR.mkdir(exist_ok=True)
        self.path = RESULTS_DIR / f"{figure}.txt"

    def record(self, label: str, **metrics: object) -> None:
        parts = [f"{key}={value}" for key, value in metrics.items()]
        line = f"{label:>32}  " + "  ".join(parts)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        print(line)


@pytest.fixture(scope="session", autouse=True)
def fresh_results():
    """Truncate result files once per session."""
    RESULTS_DIR.mkdir(exist_ok=True)
    for path in RESULTS_DIR.glob("*.txt"):
        path.unlink()
    yield


@pytest.fixture(scope="module")
def recorder(request):
    return SeriesRecorder(request.module.FIGURE)
