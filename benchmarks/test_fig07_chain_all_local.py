"""Figure 7: chain of varying length, data at EVERY peer.

Paper claim: the number of unfolded rules — and with it unfolding and
evaluation time — grows exponentially with the number of peers,
because every tuple at every peer may be inserted locally or derived
from downstream, and the unfolding covers all combinations for each
side of every join.  (Our counts follow 1 + pc(n-1), pc(i) = 1 + 3
pc(i-1): 2, 5, 14, 41, 122 — a steeper constant than the paper's DB2
prototype reported, same exponential shape.)
"""

import pytest

from repro.workloads import chain, prepare_storage, run_target_query

from conftest import scaled

FIGURE = "fig07"

PEER_COUNTS = (2, 3, 4, 5, 6)


@pytest.fixture(scope="module")
def systems():
    built = {}
    for peers in PEER_COUNTS:
        system = chain(
            peers, data_peers=range(peers), base_size=scaled(20)
        )
        built[peers] = (system, prepare_storage(system))
    yield built
    for _, storage in built.values():
        storage.close()


@pytest.mark.parametrize("peers", PEER_COUNTS)
def test_fig07_point(benchmark, systems, recorder, peers):
    system, storage = systems[peers]

    def run():
        return run_target_query(system, storage=storage)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    recorder.record(
        f"peers={peers}",
        rules=result.unfolded_rules,
        unfold_ms=round(result.unfold_seconds * 1e3, 1),
        eval_ms=round(result.evaluation_seconds * 1e3, 1),
        tuples=result.instance_tuples,
    )
    expected_rules = {2: 2, 3: 5, 4: 14, 5: 41, 6: 122}
    assert result.unfolded_rules == expected_rules[peers]


def test_fig07_shape(benchmark, systems, recorder):
    """Exponential growth check: rules more than double per peer."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    counts = [
        run_target_query(system, storage=storage).unfolded_rules
        for system, storage in systems.values()
    ]
    ratios = [b / a for a, b in zip(counts, counts[1:])]
    assert all(r >= 2 for r in ratios)
    recorder.record("shape", rule_counts=counts, growth_ratios=[round(r, 2) for r in ratios])
