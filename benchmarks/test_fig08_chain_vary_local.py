"""Figure 8: fixed-length chain, varying the number of peers WITH data.

Paper claim: for a chain of 20 peers, unfolded rules / unfolding time /
evaluation time grow exponentially with the number of peers supplying
local data.  Data peers sit at the upstream end, as in Section 6.1.1's
"most of the data contributed by a small subset of authoritative
peers".

Each point is measured under both update-exchange engines (in-memory
compiled plans vs. set-oriented SQLite), and each system runs a second,
incremental exchange after construction so the rows also witness the
compiled-program cache and the incremental instance mirror: ``plans=0``
with a non-zero ``cache_hits`` column means the incremental exchange
recompiled nothing, and ``mirrored=0`` means it re-shipped no rows into
the SQLite store (the sync protocol found every relation unchanged).
"""

import pytest

from repro.workloads import chain, prepare_storage, run_target_query, upstream_data_peers

from conftest import scaled

FIGURE = "fig08"

CHAIN_LENGTH = 12
DATA_PEER_COUNTS = (1, 2, 3, 4, 5)
ENGINES = ("memory", "sqlite")


@pytest.fixture(scope="module")
def systems():
    built = {}
    for engine in ENGINES:
        for count in DATA_PEER_COUNTS:
            system = chain(
                CHAIN_LENGTH,
                data_peers=upstream_data_peers(CHAIN_LENGTH, count),
                base_size=scaled(20),
                engine=engine,
            )
            # Incremental no-op exchange: hits the program cache.
            system.exchange(engine=engine)
            built[engine, count] = (system, prepare_storage(system))
    yield built
    for _, storage in built.values():
        storage.close()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("data_peers", DATA_PEER_COUNTS)
def test_fig08_point(benchmark, systems, recorder, engine, data_peers):
    system, storage = systems[engine, data_peers]

    def run():
        return run_target_query(system, storage=storage)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    recorder.record(
        f"engine={engine} data_peers={data_peers}",
        rules=result.unfolded_rules,
        unfold_ms=round(result.unfold_seconds * 1e3, 1),
        eval_ms=round(result.evaluation_seconds * 1e3, 1),
        exchange_ms=round(result.exchange_seconds * 1e3, 1),
        engine=result.engine,
        plans=result.plans_compiled,
        cache_hits=result.plan_cache_hits,
        index_hits=result.index_hits,
        deduped=result.dedup_skipped,
        mirrored=result.rows_mirrored,
        rel_synced=result.relations_synced,
    )


def test_fig08_shape(benchmark, systems, recorder):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    counts = [
        run_target_query(*systems["memory", count]).unfolded_rules
        for count in DATA_PEER_COUNTS
    ]
    recorder.record("shape", rule_counts=counts)
    # Exponential in the number of data peers.
    ratios = [b / a for a, b in zip(counts, counts[1:])]
    assert all(r >= 2 for r in ratios)
