"""Figure 8: fixed-length chain, varying the number of peers WITH data.

Paper claim: for a chain of 20 peers, unfolded rules / unfolding time /
evaluation time grow exponentially with the number of peers supplying
local data.  Data peers sit at the upstream end, as in Section 6.1.1's
"most of the data contributed by a small subset of authoritative
peers".

Each point is measured under both update-exchange engines (in-memory
compiled plans vs. set-oriented SQLite), and each system runs a second,
incremental exchange after construction so the rows also witness the
compiled-program cache and the incremental instance mirror: ``plans=0``
with a non-zero ``cache_hits`` column means the incremental exchange
recompiled nothing, and ``mirrored=0`` means it re-shipped no rows into
the SQLite store (the sync protocol found every relation unchanged).

The phase columns are **span-derived**: every system is built with a
``repro.obs`` tracer, and ``unfold_ms``/``plan_ms``/``eval_ms``/
``mirror_ms`` come from one traced measurement run's
:func:`~repro.obs.report.phase_totals` — the same numbers
``python -m repro.obs report`` shows — rather than hand-threaded
counters.  ``exchange_ms`` is that run's single incremental exchange
(:attr:`EvaluationResult.wall_seconds`), not the cumulative total.

``unfold_ms`` is measured with the per-system unfold cache invalidated,
so it is a cold — but viability/subsumption-*pruned* — unfolding;
``prune_ms`` breaks out the pruning pass itself, and
``warm_unfold_ms``/``unfold_hits`` come from an immediate repeat of the
same query served from the unfold cache.
"""

import pytest

from repro.obs import MemorySink, Tracer
from repro.obs.report import phase_totals
from repro.workloads import chain, prepare_storage, run_target_query, upstream_data_peers

from conftest import scaled

FIGURE = "fig08"

CHAIN_LENGTH = 12
DATA_PEER_COUNTS = (1, 2, 3, 4, 5)
ENGINES = ("memory", "sqlite")


@pytest.fixture(scope="module")
def systems():
    built = {}
    for engine in ENGINES:
        for count in DATA_PEER_COUNTS:
            sink = MemorySink()
            system = chain(
                CHAIN_LENGTH,
                data_peers=upstream_data_peers(CHAIN_LENGTH, count),
                base_size=scaled(20),
                engine=engine,
                trace=Tracer(sink),
            )
            # Incremental no-op exchange: hits the program cache.
            system.exchange(engine=engine)
            built[engine, count] = (system, prepare_storage(system), sink)
    yield built
    for _, storage, _ in built.values():
        storage.close()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("data_peers", DATA_PEER_COUNTS)
def test_fig08_point(benchmark, systems, recorder, engine, data_peers):
    system, storage, sink = systems[engine, data_peers]

    def run():
        return run_target_query(system, storage=storage)

    benchmark.pedantic(run, rounds=3, iterations=1)

    # One traced measurement run: an incremental exchange plus the
    # target query, with the phase breakdown read back from the spans.
    # The unfold cache is invalidated first so ``unfold_ms`` is a *cold*
    # (but pruned) unfolding; ``prune_ms`` is the share the viability/
    # subsumption pass spent earning that.  The warm repeat right after
    # witnesses the cache: ``warm_unfold_ms`` is the cache-hit cost of
    # the same query, and ``unfold_hits`` counts the lookups it served.
    sink.clear()
    system.unfold_cache.invalidate()
    system.exchange(engine=engine)
    result = run_target_query(system, storage=storage)
    phases = phase_totals(sink.records())
    sink.clear()
    hits_before = system.unfold_cache.hits
    run_target_query(system, storage=storage)
    warm = phase_totals(sink.records())
    recorder.record(
        f"engine={engine} data_peers={data_peers}",
        rules=result.unfolded_rules,
        unfold_ms=round(phases.get("query.unfold", 0.0), 1),
        prune_ms=round(phases.get("unfold.prune", 0.0), 1),
        warm_unfold_ms=round(warm.get("query.unfold", 0.0), 1),
        unfold_hits=system.unfold_cache.hits - hits_before,
        plan_ms=round(phases.get("query.compile", 0.0), 1),
        eval_ms=round(phases.get("query.sql", 0.0), 1),
        mirror_ms=round(phases.get("exchange.mirror", 0.0), 1),
        exchange_ms=round(result.last_exchange_seconds * 1e3, 1),
        engine=result.engine,
        plans=result.plans_compiled,
        cache_hits=result.plan_cache_hits,
        index_hits=result.index_hits,
        deduped=result.dedup_skipped,
        mirrored=result.rows_mirrored,
        rel_synced=result.relations_synced,
    )


def test_fig08_shape(benchmark, systems, recorder):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    counts = [
        run_target_query(
            systems["memory", count][0], storage=systems["memory", count][1]
        ).unfolded_rules
        for count in DATA_PEER_COUNTS
    ]
    recorder.record("shape", rule_counts=counts)
    # Exponential in the number of data peers.
    ratios = [b / a for a, b in zip(counts, counts[1:])]
    assert all(r >= 2 for r in ratios)
