"""Figure 9: chain and branched topologies, varying base size.

Paper claim: instance size grows linearly with base size, and query
processing time also grows (roughly) linearly, staying modest even at
the largest base sizes.
"""

import pytest

from repro.workloads import branched, chain, prepare_storage, run_target_query

from conftest import scaled

FIGURE = "fig09"

PEERS = 12
BASE_SIZES = tuple(scaled(size) for size in (100, 200, 400, 800))


@pytest.fixture(scope="module")
def systems():
    built = {}
    for kind, build in (("chain", chain), ("branched", branched)):
        for base in BASE_SIZES:
            system = build(PEERS, base_size=base)
            built[(kind, base)] = (system, prepare_storage(system))
    yield built
    for _, storage in built.values():
        storage.close()


@pytest.mark.parametrize("kind", ["chain", "branched"])
@pytest.mark.parametrize("base", BASE_SIZES)
def test_fig09_point(benchmark, systems, recorder, kind, base):
    system, storage = systems[(kind, base)]

    def run():
        return run_target_query(system, storage=storage)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    recorder.record(
        f"{kind} base={base}",
        rules=result.unfolded_rules,
        total_ms=round(result.query_processing_seconds * 1e3, 1),
        instance_tuples=result.instance_tuples,
    )


def test_fig09_linear_instance_growth(benchmark, systems, recorder):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for kind in ("chain", "branched"):
        sizes = [
            systems[(kind, base)][0].instance_size() for base in BASE_SIZES
        ]
        # Instance size is proportional to base size.
        ratios = [
            size / base for size, base in zip(sizes, BASE_SIZES)
        ]
        assert max(ratios) / min(ratios) < 1.05
        recorder.record(f"{kind} linearity", tuples=sizes)
