"""Figure 9: chain and branched topologies, varying base size.

Paper claim: instance size grows linearly with base size, and query
processing time also grows (roughly) linearly, staying modest even at
the largest base sizes.

The deletion rows (use case Q5) extend the sweep with both deletion-
propagation engines: the memory engine's graph-based DERIVABILITY test
vs. the sqlite engine's store-resident SQL fixpoint over the P_m
firing history — same victims, identical survivors, engine-comparable
``rows_deleted`` / ``pm_rows_collected`` columns.
"""

import time

import pytest

from repro.workloads import branched, chain, prepare_storage, run_target_query
from repro.workloads.swissprot import generate_entries

from conftest import scaled

FIGURE = "fig09"

PEERS = 12
BASE_SIZES = tuple(scaled(size) for size in (100, 200, 400, 800))
DELETE_BASES = tuple(scaled(size) for size in (100, 200))


def delete_and_propagate(system, peer: int, base: int, fraction: int = 10):
    """Delete ``base // fraction`` entries of *peer*'s local tables and
    propagate; returns (stats, propagate_seconds)."""
    victims = generate_entries(base, seed=peer, key_offset=peer * 10_000_000)[
        : max(1, base // fraction)
    ]
    for entry in victims:
        system.delete_local(f"P{peer}_R1", entry.first_row())
        system.delete_local(f"P{peer}_R2", entry.second_row())
    started = time.perf_counter()
    system.propagate_deletions()
    return system.last_deletion, time.perf_counter() - started


def record_deletion_matrix(recorder, tmp_path, peers: int, base: int, axis: str):
    """Delete 10% of the most-upstream peer's base data on each engine
    (graph-based memory vs. store-resident SQL fixpoint), record one
    series row per engine, and assert the engines agree."""
    peer = peers - 1
    stats = {}
    for engine in ("memory", "sqlite"):
        system = chain(
            peers,
            base_size=base,
            engine=engine,
            exchange_path=(
                str(tmp_path / f"delete-{engine}.db")
                if engine == "sqlite"
                else None
            ),
            resident=(engine == "sqlite"),
        )
        deletion, seconds = delete_and_propagate(system, peer, base)
        stats[engine] = deletion
        recorder.record(
            f"chain delete engine={engine} {axis}",
            rows_deleted=deletion.rows_deleted,
            pm_collected=deletion.pm_rows_collected,
            propagate_ms=round(seconds * 1e3, 1),
            tuples_after=system.instance_size(),
        )
    assert stats["sqlite"].rows_deleted == stats["memory"].rows_deleted > 0
    assert (
        stats["sqlite"].pm_rows_collected
        == stats["memory"].pm_rows_collected
        > 0
    )


@pytest.fixture(scope="module")
def systems():
    built = {}
    for kind, build in (("chain", chain), ("branched", branched)):
        for base in BASE_SIZES:
            system = build(PEERS, base_size=base)
            built[(kind, base)] = (system, prepare_storage(system))
    yield built
    for _, storage in built.values():
        storage.close()


@pytest.mark.parametrize("kind", ["chain", "branched"])
@pytest.mark.parametrize("base", BASE_SIZES)
def test_fig09_point(benchmark, systems, recorder, kind, base):
    system, storage = systems[(kind, base)]

    def run():
        return run_target_query(system, storage=storage)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    recorder.record(
        f"{kind} base={base}",
        rules=result.unfolded_rules,
        total_ms=round(result.query_processing_seconds * 1e3, 1),
        instance_tuples=result.instance_tuples,
    )


@pytest.mark.parametrize("base", DELETE_BASES)
def test_fig09_deletion_point(benchmark, recorder, tmp_path, base):
    """Deletion propagation across the engine matrix, varying base
    size: same victims, identical survivors, engine-comparable rows."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record_deletion_matrix(recorder, tmp_path, PEERS, base, f"base={base}")


def test_fig09_linear_instance_growth(benchmark, systems, recorder):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for kind in ("chain", "branched"):
        sizes = [
            systems[(kind, base)][0].instance_size() for base in BASE_SIZES
        ]
        # Instance size is proportional to base size.
        ratios = [
            size / base for size, base in zip(sizes, BASE_SIZES)
        ]
        assert max(ratios) / min(ratios) < 1.05
        recorder.record(f"{kind} linearity", tuples=sizes)
