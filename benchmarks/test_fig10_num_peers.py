"""Figure 10: chain and branched topologies, varying the number of
peers at fixed base size.

Paper claims: materialized instance size and query processing time
grow roughly linearly with the number of peers (branched slightly
steeper), and the scaling limit comes from the underlying DBMS's
query-size cap — DB2 rejected the generated SQL beyond 80 peers; our
SQLite analogue is its 64-table join limit.
"""

import pytest

from repro.errors import StorageError
from repro.workloads import branched, chain, prepare_storage, run_target_query

from conftest import scaled
from test_fig09_base_size import record_deletion_matrix

FIGURE = "fig10"

PEER_COUNTS = (5, 10, 15, 20, 25)
DELETE_PEER_COUNTS = (5, 10, 15)


@pytest.fixture(scope="module")
def systems():
    built = {}
    for kind, build in (("chain", chain), ("branched", branched)):
        for peers in PEER_COUNTS:
            system = build(peers, base_size=scaled(100))
            built[(kind, peers)] = (system, prepare_storage(system))
    yield built
    for _, storage in built.values():
        storage.close()


@pytest.mark.parametrize("kind", ["chain", "branched"])
@pytest.mark.parametrize("peers", PEER_COUNTS)
def test_fig10_point(benchmark, systems, recorder, kind, peers):
    system, storage = systems[(kind, peers)]

    def run():
        return run_target_query(system, storage=storage)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    recorder.record(
        f"{kind} peers={peers}",
        rules=result.unfolded_rules,
        total_ms=round(result.query_processing_seconds * 1e3, 1),
        instance_tuples=result.instance_tuples,
        max_join=result.stats.max_join_width,
    )


@pytest.mark.parametrize("peers", DELETE_PEER_COUNTS)
def test_fig10_deletion_point(benchmark, recorder, tmp_path, peers):
    """Deletion propagation vs. chain length, across both engines:
    propagation work grows with the number of downstream peers the
    deleted base tuples reached."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    record_deletion_matrix(
        recorder, tmp_path, peers, scaled(100), f"peers={peers}"
    )


def test_fig10_dbms_query_size_limit(benchmark, recorder):
    """The paper could not scale beyond 80 peers because the unfolded
    SQL exceeded DB2's limits; SQLite's 64-table join cap plays the
    same role here, hit near chain length ~65 (the paper hit DB2's at
    ~80 peers)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    system = chain(70, base_size=1)
    storage = prepare_storage(system)
    try:
        with pytest.raises(StorageError, match="64"):
            run_target_query(system, storage=storage)
        recorder.record("dbms_limit", peers=70, outcome="join-width cap hit")
    finally:
        storage.close()
