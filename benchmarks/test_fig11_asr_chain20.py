"""Figure 11: ASR types and lengths on a 20-peer chain, few data peers.

Paper claims: every ASR type yields a significant improvement over the
no-ASR baseline, and the benefit grows with ASR path length — on this
sparse chain the indexed paths are completely subsumed by the query's
paths, so even complete-path ASRs are fully exploitable.
"""

import pytest

from repro.workloads import chain, prepare_storage, run_target_query

from conftest import scaled

FIGURE = "fig11"

PEERS = 20
KINDS = ("complete", "subpath", "prefix", "suffix")
LENGTHS = (1, 2, 4, 6, 8, 10)


@pytest.fixture(scope="module")
def workload():
    system = chain(PEERS, base_size=scaled(300))
    storage = prepare_storage(system)
    yield system, storage
    storage.close()


def test_fig11_baseline(benchmark, workload, recorder):
    system, storage = workload

    def run():
        return run_target_query(system, storage=storage)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    recorder.record(
        "no-ASR",
        eval_ms=round(result.evaluation_seconds * 1e3, 2),
        total_ms=round(result.query_processing_seconds * 1e3, 2),
        max_join=result.stats.max_join_width,
    )


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("length", LENGTHS)
def test_fig11_point(benchmark, workload, recorder, kind, length):
    system, storage = workload

    def run():
        return run_target_query(
            system, storage=storage, asr_length=length, asr_kind=kind
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    recorder.record(
        f"{kind} L={length}",
        eval_ms=round(result.evaluation_seconds * 1e3, 2),
        total_ms=round(result.query_processing_seconds * 1e3, 2),
        max_join=result.stats.max_join_width,
        asr_rows=result.asr_rows,
    )


def test_fig11_asrs_reduce_joins(benchmark, workload, recorder):
    """Longer ASRs leave fewer joins per rule — the mechanism behind
    the paper's speedup curve."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    system, storage = workload
    widths = {}
    for length in (2, 6, 10):
        result = run_target_query(
            system, storage=storage, asr_length=length, asr_kind="suffix"
        )
        widths[length] = result.stats.max_join_width
    baseline = run_target_query(system, storage=storage).stats.max_join_width
    assert widths[2] < baseline
    assert widths[10] < widths[2]
    recorder.record("join-widths", baseline=baseline, **{
        f"L{length}": width for length, width in widths.items()
    })
