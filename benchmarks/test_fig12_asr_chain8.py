"""Figure 12: ASR types and lengths on an 8-peer chain, HALF of the
peers with local data.

Paper claims: with more data peers there are many unfolded rules using
combinations of subpaths, so subpath/prefix/suffix ASRs generally beat
complete-path ASRs, and suffix ASRs beat prefix ASRs for the
target-anchored query (paths end at a specific node).
"""

import pytest

from repro.workloads import chain, prepare_storage, run_target_query, upstream_data_peers

from conftest import scaled

FIGURE = "fig12"

PEERS = 8
DATA_PEERS = upstream_data_peers(PEERS, 4)
KINDS = ("complete", "subpath", "prefix", "suffix")
LENGTHS = (1, 2, 3, 4, 5, 6, 7)


@pytest.fixture(scope="module")
def workload():
    system = chain(PEERS, data_peers=DATA_PEERS, base_size=scaled(300))
    storage = prepare_storage(system)
    yield system, storage
    storage.close()


def test_fig12_baseline(benchmark, workload, recorder):
    system, storage = workload

    def run():
        return run_target_query(system, storage=storage)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    recorder.record(
        "no-ASR",
        rules=result.unfolded_rules,
        eval_ms=round(result.evaluation_seconds * 1e3, 2),
        total_ms=round(result.query_processing_seconds * 1e3, 2),
    )


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("length", LENGTHS)
def test_fig12_point(benchmark, workload, recorder, kind, length):
    system, storage = workload

    def run():
        return run_target_query(
            system, storage=storage, asr_length=length, asr_kind=kind
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    recorder.record(
        f"{kind} L={length}",
        eval_ms=round(result.evaluation_seconds * 1e3, 2),
        total_ms=round(result.query_processing_seconds * 1e3, 2),
        max_join=result.stats.max_join_width,
    )


def test_fig12_segment_asrs_apply_to_more_rules(benchmark, workload, recorder):
    """Rules stop at many depths here, so suffix/subpath segments are
    usable where a long complete path is not: measured as how many
    provenance atoms remain un-rewritten."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.indexing import ASRManager, asr_definitions_for
    from repro.proql import SQLEngine
    from repro.workloads.topologies import target_relation

    system, storage = workload
    leftovers = {}
    for kind in ("complete", "suffix"):
        manager = ASRManager(storage)
        manager.register_all(
            asr_definitions_for(system, target_relation(), 5, kind)
        )
        engine = SQLEngine(storage)
        rules = manager.rewrite(engine.unfolder.full_ancestry(target_relation()))
        leftovers[kind] = sum(
            1
            for rule in rules
            for item in rule.items
            if item.kind == "prov"
        )
        manager.drop_all()
    recorder.record("unrewritten-prov-atoms", **leftovers)
    assert leftovers["suffix"] <= leftovers["complete"]
