"""Figure 13: ASR types and lengths on a 20-peer branched topology.

Paper claims: unfolded rules traverse combinations of branches, so
complete-path and prefix ASRs that would cross branch boundaries help
fewer rules; subpath and suffix ASRs provide the larger benefit at
longer lengths.  (Our advisor windows ASRs within non-branching chain
segments, so the "crossing" effect appears as shorter usable windows.)
"""

import pytest

from repro.workloads import branched, leaf_peers, prepare_storage, run_target_query

from conftest import scaled

FIGURE = "fig13"

PEERS = 20
KINDS = ("complete", "subpath", "prefix", "suffix")
LENGTHS = (1, 2, 3, 4, 5, 6)


@pytest.fixture(scope="module")
def workload():
    system = branched(
        PEERS, data_peers=leaf_peers(PEERS)[:4], base_size=scaled(150)
    )
    storage = prepare_storage(system)
    yield system, storage
    storage.close()


def test_fig13_baseline(benchmark, workload, recorder):
    system, storage = workload

    def run():
        return run_target_query(system, storage=storage)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    recorder.record(
        "no-ASR",
        rules=result.unfolded_rules,
        eval_ms=round(result.evaluation_seconds * 1e3, 2),
        total_ms=round(result.query_processing_seconds * 1e3, 2),
        max_join=result.stats.max_join_width,
    )


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("length", LENGTHS)
def test_fig13_point(benchmark, workload, recorder, kind, length):
    system, storage = workload

    def run():
        return run_target_query(
            system, storage=storage, asr_length=length, asr_kind=kind
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    recorder.record(
        f"{kind} L={length}",
        eval_ms=round(result.evaluation_seconds * 1e3, 2),
        total_ms=round(result.query_processing_seconds * 1e3, 2),
        max_join=result.stats.max_join_width,
    )


def test_fig13_asr_still_beats_baseline(benchmark, workload, recorder):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    system, storage = workload
    baseline = run_target_query(system, storage=storage)
    indexed = run_target_query(
        system, storage=storage, asr_length=4, asr_kind="suffix"
    )
    assert indexed.stats.max_join_width < baseline.stats.max_join_width
    recorder.record(
        "check",
        baseline_join=baseline.stats.max_join_width,
        suffix4_join=indexed.stats.max_join_width,
    )
