"""Figure 14 (extension): graph-query latency vs. base size.

The two query engines answer the paper's graph use cases from opposite
substrates: the memory engine annotates the in-memory provenance graph
(Section 2.1's annotation passes) while the store-resident engine runs
recursive joins over the stored ``P_m`` firing history
(:mod:`repro.exchange.graph_queries`) — lineage as a backward
transitive-closure walk, derivability and trust as liveness fixpoints.
This series measures all three queries on both engines over a chain
topology at growing base sizes, asserts the engines agree
**node-for-node** at every point, and records the relational engine's
``iterations`` / ``pm_rows_scanned`` columns (threaded through
``EvaluationResult`` → ``ExperimentResult``).

Each query is measured twice per point: **cold** is the first call
after the exchange (the resident side answers from the maintained
reachability index its run just brought current — see
``docs/graph-index.md``), **warm** is an immediate repeat (the
resident side answers from the index's per-epoch result cache).
"""

import time

import pytest

from repro.cdss.trust import TrustPolicy
from repro.provenance.graph import TupleNode
from repro.workloads import chain
from repro.workloads.swissprot import generate_entries
from repro.workloads.topologies import target_relation, upstream_data_peers

from conftest import scaled

FIGURE = "fig14"

PEERS = 8
BASE_SIZES = tuple(scaled(size) for size in (50, 100, 200))


def build_pair(tmp_path, base):
    """Memory twin + store-resident twin of the same chain workload."""
    memory = chain(PEERS, base_size=base, engine="memory")
    resident = chain(
        PEERS,
        base_size=base,
        engine="sqlite",
        exchange_path=str(tmp_path / f"graphq-{base}.db"),
        resident=True,
    )
    return memory, resident


def query_node(base: int) -> TupleNode:
    """A target-peer tuple derived from the most-upstream base data
    (its lineage spans the whole chain)."""
    peer = upstream_data_peers(PEERS, 1)[0]
    entry = generate_entries(1, seed=peer, key_offset=peer * 10_000_000)[0]
    return TupleNode(target_relation(), entry.first_row())


def trust_policy() -> TrustPolicy:
    policy = TrustPolicy()
    policy.trust_if(
        f"P{PEERS - 1}_R1", lambda values: values[1] % 2 == 0
    )
    policy.distrust_mapping("m1")
    return policy


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - started) * 1e3


@pytest.mark.parametrize("base", BASE_SIZES)
def test_fig14_point(benchmark, recorder, tmp_path, base):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    memory, resident = build_pair(tmp_path, base)
    node = query_node(base)
    policy = trust_policy()
    answers = {}
    for label, system in (("memory", memory), ("sqlite", resident)):
        lineage, lineage_cold_ms = timed(lambda: system.lineage(node))
        lineage_stats = system.last_graph_query
        _, lineage_warm_ms = timed(lambda: system.lineage(node))
        derivability, deriv_cold_ms = timed(system.derivability)
        _, deriv_warm_ms = timed(system.derivability)
        trusted, trusted_cold_ms = timed(lambda: system.trusted(policy))
        _, trusted_warm_ms = timed(lambda: system.trusted(policy))
        answers[label] = (lineage, derivability, trusted)
        recorder.record(
            f"chain base={base} engine={label}",
            lineage_cold_ms=round(lineage_cold_ms, 2),
            lineage_warm_ms=round(lineage_warm_ms, 2),
            deriv_cold_ms=round(deriv_cold_ms, 2),
            deriv_warm_ms=round(deriv_warm_ms, 2),
            trusted_cold_ms=round(trusted_cold_ms, 2),
            trusted_warm_ms=round(trusted_warm_ms, 2),
            nodes=len(derivability),
            walk_iters=lineage_stats.iterations,
            pm_scanned=lineage_stats.pm_rows_scanned,
            index_hit=getattr(system.last_graph_query, "index_hit", 0),
        )
    # Node-for-node agreement on every answer at every point.
    assert answers["memory"][0] == answers["sqlite"][0]
    assert answers["memory"][1] == answers["sqlite"][1]
    assert answers["memory"][2] == answers["sqlite"][2]
    # The resident side answered without ever building a graph, from
    # the maintained index its exchange run brought current.
    assert resident.graph.size() == (0, 0)
    assert resident.last_graph_query.index_hit == 1
    assert resident.metrics.value("graph_query.index_hit") == 6
    assert "graph_query.index_miss" not in resident.metrics.snapshot()


def test_fig14_stats_thread_into_experiment_result(
    benchmark, recorder, tmp_path
):
    """The per-query counters surface through the harness row schema
    (the same path the fig08-10 exchange/deletion columns take)."""
    from repro.workloads import run_target_query

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = BASE_SIZES[0]
    memory, resident = build_pair(tmp_path, base)
    resident.lineage(query_node(base))
    memory.lineage(query_node(base))
    result = run_target_query(memory)
    assert result.graph_query_engine == "memory"
    resident_stats = resident.last_graph_query
    assert resident_stats.engine == "sqlite"
    assert resident_stats.iterations > 0
    assert resident_stats.pm_rows_scanned > 0
    recorder.record(
        f"threading base={base}",
        harness_engine=result.graph_query_engine,
        resident_iters=resident_stats.iterations,
        resident_pm_scanned=resident_stats.pm_rows_scanned,
    )
