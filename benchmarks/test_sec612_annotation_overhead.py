"""Section 6.1.2's side observation: annotation computation adds little
over the graph-projection component — "the graph projection component
dominates execution time"."""

import pytest

from repro.proql import SQLEngine
from repro.workloads import chain, prepare_storage
from repro.workloads.topologies import target_relation

from conftest import scaled

FIGURE = "sec612"

PROJECTION = (
    "FOR [{rel} $x] INCLUDE PATH [$x] <-+ [] RETURN $x"
)
ANNOTATED = (
    "EVALUATE TRUST OF {{ FOR [{rel} $x] INCLUDE PATH [$x] <-+ [] RETURN $x }}"
)


@pytest.fixture(scope="module")
def engine():
    system = chain(8, base_size=scaled(150))
    storage = prepare_storage(system)
    yield SQLEngine(storage)
    storage.close()


def test_projection_only(benchmark, engine, recorder):
    query = PROJECTION.format(rel=target_relation())
    result = benchmark.pedantic(lambda: engine.run(query), rounds=3, iterations=1)
    recorder.record(
        "projection",
        sql_ms=round(result.stats.sql_seconds * 1e3, 2),
        rows=result.stats.rows,
    )


def test_projection_plus_annotation(benchmark, engine, recorder):
    query = ANNOTATED.format(rel=target_relation())
    result = benchmark.pedantic(lambda: engine.run(query), rounds=3, iterations=1)
    recorder.record(
        "with TRUST annotation",
        sql_ms=round(result.stats.sql_seconds * 1e3, 2),
        annotated=len(result.annotated_rows),
    )
    assert result.annotations
