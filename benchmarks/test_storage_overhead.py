"""Section 4.1's storage claim: the relational provenance encoding
"allows storage of provenance in an RDBMS while incurring a modest
space overhead".

Measured as the ratio of provenance-relation rows (and their total
cells) to base/materialized data, across topologies.  Superfluous
(projection) mappings contribute zero stored rows — their P relations
are virtual views (Fig. 2).
"""

import pytest

from repro.cdss.mapping import provenance_relation_name
from repro.storage import provenance_rows
from repro.workloads import branched, chain, prepare_storage

FIGURE = "storage_overhead"


@pytest.mark.parametrize("engine", ("memory", "sqlite"))
@pytest.mark.parametrize(
    "kind,build,peers",
    [("chain", chain, 8), ("branched", branched, 9)],
)
def test_storage_overhead(benchmark, recorder, kind, build, peers, engine):
    system = build(peers, base_size=200, engine=engine)
    # Incremental no-op exchange: witnesses the compiled-program cache.
    system.exchange(engine=engine)

    def load():
        storage = prepare_storage(system)
        sizes = {}
        for mapping in system.mappings.values():
            if mapping.is_superfluous:
                sizes[mapping.name] = 0
            else:
                sizes[mapping.name] = storage.table_size(
                    provenance_relation_name(mapping.name)
                )
        storage.close()
        return sizes

    sizes = benchmark.pedantic(load, rounds=2, iterations=1)
    prov_rows = sum(sizes.values())
    prov_cells = sum(
        rows * len(system.mappings[name].provenance_columns)
        for name, rows in sizes.items()
    )
    data_rows = system.instance_size(public_only=False)
    data_cells = sum(
        system.instance.size(schema.name) * schema.arity
        for schema in system.catalog
    )
    exchange = system.last_exchange
    recorder.record(
        f"{kind}/{engine}",
        prov_rows=prov_rows,
        data_rows=data_rows,
        row_overhead=round(prov_rows / data_rows, 3),
        cell_overhead=round(prov_cells / data_cells, 4),
        exchange_ms=round(system.exchange_seconds * 1e3, 1),
        engine=engine,
        plans=exchange.plans_compiled if exchange else 0,
        cache_hits=system.plan_cache.hits,
        index_hits=exchange.index_hits if exchange else 0,
        deduped=exchange.dedup_skipped if exchange else 0,
        mirrored=exchange.rows_mirrored if exchange else 0,
        rel_synced=exchange.relations_synced if exchange else 0,
    )
    # "Modest": provenance cells are a small fraction of data cells
    # (each derivation stores only key columns, one per shared var).
    assert prov_cells / data_cells < 0.25
