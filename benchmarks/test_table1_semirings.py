"""Table 1: annotation of one provenance graph in every semiring.

The paper's Table 1 is definitional; this bench demonstrates the same
materialized view (the running example's graph, extended with extra
base data) being evaluated under each semiring — the "one view, many
scoring models" capability of Section 1 — and measures the cost of
each annotation pass.
"""

import pytest

from repro.cdss import CDSS, Peer
from repro.provenance import annotate
from repro.relational import RelationSchema
from repro.semirings import get_semiring
from repro.workloads import chain
from repro.workloads.topologies import target_relation

from conftest import scaled

FIGURE = "table1"

SEMIRINGS = [
    "DERIVABILITY",
    "TRUST",
    "CONFIDENTIALITY",
    "WEIGHT",
    "LINEAGE",
    "PROBABILITY",
    "COUNT",
]


@pytest.fixture(scope="module")
def workload_graph():
    system = chain(5, data_peers=[3, 4], base_size=scaled(100))
    return system.graph


@pytest.mark.parametrize("name", SEMIRINGS)
def test_table1_semiring(benchmark, workload_graph, recorder, name):
    semiring = get_semiring(name)
    if name == "CONFIDENTIALITY":
        leaf = lambda node: "S" if node.relation.endswith("R1_l") else "C"
    elif name == "WEIGHT":
        leaf = lambda node: 1.0
    else:
        leaf = None  # Table 1 default base values

    def run():
        return annotate(workload_graph, semiring, leaf_assignment=leaf)

    values = benchmark.pedantic(run, rounds=3, iterations=1)
    annotated = sum(1 for v in values.values() if not semiring.is_zero(v))
    recorder.record(
        name,
        tuples=len(values),
        non_zero=annotated,
        cycle_safe=semiring.cycle_safe,
    )
    assert annotated > 0
