"""Static analysis of a broken CDSS (``repro.analysis``).

Builds a three-peer system with three deliberate defects:

* an **unsafe rule** — ``m_null`` invents both head values out of thin
  air, so every firing would produce the *same* labeled null (RA101);
* a **non-weakly-acyclic mapping cycle** — ``m_fwd``/``m_back`` feed
  the labeled nulls they create back into their own creation, so the
  exchange may not terminate (RA201);
* a **dangling trust policy** — a condition on a relation that does
  not exist and a distrusted mapping nobody defined (RA301, RA302).

The analyzer flags all three without touching any data, and the
``validate="error"`` pre-flight refuses to run the (potentially
diverging) exchange.

Run:  python examples/analysis_demo.py
"""

from repro.analysis import analyze
from repro.cdss import CDSS, Peer, TrustPolicy
from repro.errors import AnalysisError
from repro.relational import RelationSchema


def build_cdss() -> CDSS:
    """The deliberately broken system (structure only, no data)."""
    system = CDSS(
        Peer.of(name, [RelationSchema.of(f"{name}_R", ["k", "v"], key=["k"])])
        for name in ("P0", "P1", "P2")
    )
    system.add_mappings(
        [
            # RA201: w is existential; each mapping feeds the other's
            # labeled-null position, so nulls grow without bound.
            "m_fwd: P1_R(v, w) :- P0_R(k, v)",
            "m_back: P0_R(v, w) :- P1_R(k, v)",
            # RA101: x and y share no variable with the body — both
            # Skolemize to nullary (constant) labeled nulls.
            "m_null: P2_R(x, y) :- P0_R(_, _)",
        ]
    )
    return system


def trust_policies() -> list[TrustPolicy]:
    """A policy whose references dangle (RA301 + RA302)."""
    policy = TrustPolicy()
    policy.distrust_relation("P9_R")        # no such relation
    policy.distrust_mapping("m_ghost")      # no such mapping
    return [policy]


def main() -> None:
    system = build_cdss()
    (policy,) = trust_policies()

    print("== static analysis report (no data was touched) ==")
    report = analyze(system, policies=[policy])
    print(report)
    print(f"\nstats: {report.stats}")

    print('\n== exchange(validate="error") pre-flight ==')
    system.insert_local("P0_R", (1, 2))
    try:
        system.exchange(validate="error")
    except AnalysisError as error:
        print(f"refused, as it should be:\n{error}")
    print(f"\nmaterialized tuples after the refusal: {system.instance_size()}")

    print("\n== the same pre-flight accepts a clean program ==")
    clean = CDSS(
        Peer.of(name, [RelationSchema.of(f"{name}_R", ["k", "v"], key=["k"])])
        for name in ("P0", "P1")
    )
    clean.add_mapping("m1: P0_R(k, v) :- P1_R(k, v)")
    clean.insert_local("P1_R", (1, 2))
    result = clean.exchange(validate="error")
    print(
        f"clean exchange ran: {clean.instance_size()} tuples, "
        f"validation errors: {len(clean.last_validation.errors)}"
    )
    assert result is not None


if __name__ == "__main__":
    main()
