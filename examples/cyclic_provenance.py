"""Cyclic provenance graphs (Section 2.1's cycle discussion).

The full running example of the paper — WITH mapping m3 — produces a
cyclic provenance graph: m1 derives C from N while m3 derives N from
C.  The paper's SQL implementation targets acyclic graphs, but the
idempotent semirings of Table 1 still converge under fixpoint
iteration, which the reference graph engine implements.

Run:  python examples/cyclic_provenance.py
"""

from repro.cdss import CDSS, Peer
from repro.errors import CycleError
from repro.proql import GraphEngine
from repro.relational import RelationSchema


def build_cdss() -> CDSS:
    """The full running example WITH m3 — structure only (no data), so
    ``python -m repro.analysis`` can verify the cyclic program is still
    weakly acyclic (the C <-> N cycle copies values, never nulls)."""
    system = CDSS(
        [
            Peer.of(
                "P1",
                [
                    RelationSchema.of("A", ["id", ("sn", "str"), "len"], key=["id"]),
                    RelationSchema.of("C", ["id", ("name", "str")], key=["id", "name"]),
                ],
            ),
            Peer.of(
                "P2",
                [
                    RelationSchema.of(
                        "N", ["id", ("name", "str"), ("canon", "bool")],
                        key=["id", "name"],
                    )
                ],
            ),
            Peer.of(
                "P3",
                [
                    RelationSchema.of(
                        "O", [("name", "str"), "h", ("animal", "bool")], key=["name"]
                    )
                ],
            ),
        ]
    )
    system.add_mappings(
        [
            "m1: C(i, n) :- A(i, s, _), N(i, n, false)",
            "m2: N(i, n, true) :- A(i, n, _)",
            "m3: N(i, n, false) :- C(i, n)",   # closes the C <-> N cycle
            "m4: O(n, h, true) :- A(i, n, h)",
            "m5: O(n, h, true) :- A(i, _, h), C(i, n)",
        ]
    )
    return system


def main() -> None:
    system = build_cdss()
    system.insert_local("A", (1, "sn1", 7))
    system.insert_local("A", (2, "sn1", 5))
    system.insert_local("N", (1, "cn1", False))
    system.insert_local("C", (2, "cn2"))
    system.exchange()

    print(f"graph acyclic? {system.graph.is_acyclic()}")
    engine = GraphEngine(system.graph, system.catalog)

    # Idempotent semirings converge on the cycle via Kleene iteration.
    for name in ("DERIVABILITY", "TRUST", "WEIGHT", "LINEAGE"):
        result = engine.run(
            f"EVALUATE {name} OF {{ FOR [O $x] "
            "INCLUDE PATH [$x] <-+ [] RETURN $x }"
        )
        print(f"\n{name}:")
        for row in result.annotated_rows:
            for node, value in row:
                shown = sorted(map(str, value)) if name == "LINEAGE" else value
                print(f"  {node} -> {shown}")

    # Number-of-derivations diverges on cycles (infinitely many trees).
    try:
        engine.run(
            "EVALUATE COUNT OF { FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x }"
        )
    except CycleError as error:
        print(f"\nCOUNT on the cyclic graph correctly refuses: {error}")

    # A tuple genuinely supported only through the cycle still resolves:
    # C(1,cn1) and N(1,cn1,false) support each other, but both trace to
    # the base tuples A_l(1,...) and N_l(1,cn1,false).
    from repro.provenance import TupleNode, annotate
    from repro.semirings import get_semiring

    values = annotate(system.graph, get_semiring("LINEAGE"))
    node = TupleNode("C", (1, "cn1"))
    print(f"\nlineage of {node} (reaches through the cycle):")
    for leaf in sorted(values[node], key=str):
        print(f"  {leaf}")


if __name__ == "__main__":
    main()
