"""One materialized view, many scoring models (Section 1, Q8/Q9).

The paper's pitch for storing provenance instead of scores: "we can
materialize a single view and its provenance — and from this we can
efficiently compute any of a variety of scores or annotations through
provenance queries."  This example materializes one small data-sharing
view and then, WITHOUT re-running the exchange:

* assigns Trio-style probabilities (Q9) from event expressions,
* ranks results with keyword-search-style weights (Q8),
* re-ranks under a second weight model (as after user feedback, [41]).
"""

import random

from repro.provenance import annotate
from repro.semirings import ProbabilitySemiring, get_semiring
from repro.workloads import branched, leaf_peers
from repro.workloads.topologies import TopologySpec, build_system, target_relation


def build_cdss():
    """Structure-only twin of main()'s CDSS (no data), for
    ``python -m repro.analysis examples/probabilistic_ranking.py``."""
    return build_system(TopologySpec("branched", 9, (), base_size=0))


def main() -> None:
    system = branched(9, data_peers=leaf_peers(9)[:3], base_size=12)
    print(
        f"branched CDSS: {len(system.peers)} peers, "
        f"{len(system.mappings)} mappings, "
        f"{system.instance_size()} tuples materialized once\n"
    )
    graph = system.graph
    targets = sorted(graph.tuples_in(target_relation()))[:10]
    leaves = sorted(graph.leaves())

    # -- Q9: probabilities, Trio style ------------------------------------
    probability = get_semiring("PROBABILITY")
    events = annotate(graph, probability)  # leaves become atomic events
    rng = random.Random(42)
    base_probabilities = {leaf: round(rng.uniform(0.5, 0.99), 3) for leaf in leaves}
    print("== probabilistic database view (Q9) ==")
    for node in targets[:5]:
        expression = events[node]
        p = ProbabilitySemiring.probability(expression, base_probabilities)
        print(f"  P[{node.values[0]}] = {p:.3f}  ({len(expression)} event clause(s))")

    # -- Q8: weighted ranking, keyword-search style ---------------------------
    weight = get_semiring("WEIGHT")
    model1 = {leaf: float(leaf.values[0] % 7) for leaf in leaves}
    costs1 = annotate(graph, weight, leaf_assignment=lambda n: model1[n])
    ranked1 = sorted(targets, key=lambda n: costs1[n])
    print("\n== ranked results, weight model 1 (Q8) ==")
    for node in ranked1[:5]:
        print(f"  cost={costs1[node]:5.1f}  {node.values[0]}")

    # -- Q8 again: a second model over the SAME provenance ----------------------
    # (e.g. after learning from user feedback, the system re-weights
    # one source's contributions — no view recomputation needed.)
    model2 = {
        leaf: model1[leaf] + (10.0 if leaf.relation.startswith("P8") else 0.0)
        for leaf in leaves
    }
    costs2 = annotate(graph, weight, leaf_assignment=lambda n: model2[n])
    ranked2 = sorted(targets, key=lambda n: costs2[n])
    moved = sum(1 for a, b in zip(ranked1, ranked2) if a != b)
    print(f"\n== weight model 2 (P8 penalized): {moved}/{len(targets)} "
          "rank positions changed ==")
    for node in ranked2[:5]:
        print(f"  cost={costs2[node]:5.1f}  {node.values[0]}")

    # -- the same provenance also counts derivations -----------------------------
    counts = annotate(graph, get_semiring("COUNT"))
    multi = [n for n in targets if counts[n] > 1]
    print(
        f"\n{len(multi)}/{len(targets)} target tuples have multiple "
        "derivations (their probability/rank reflects all of them)"
    )


if __name__ == "__main__":
    main()
