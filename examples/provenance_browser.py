"""Backing an interactive provenance browser (Section 1).

Graphical tools "visualize the relationship between tuples ... without
being overwhelmed by complexity"; ProQL's graph projections are the
retrieval layer.  This example runs a handful of browser-style
interactions — zoom into one tuple, restrict to a source, follow a
mapping — and exports each projected subgraph as DOT and JSON.

Run:  python examples/provenance_browser.py [output-dir]
"""

import pathlib
import sys

from repro.proql import SQLEngine
from repro.provenance import annotate, to_dot, to_json
from repro.semirings import get_semiring
from repro.workloads import branched, leaf_peers, prepare_storage
from repro.workloads.topologies import TopologySpec, build_system, target_relation


def build_cdss():
    """Structure-only twin of main()'s CDSS (no data), for
    ``python -m repro.analysis examples/provenance_browser.py``."""
    return build_system(TopologySpec("branched", 9, (), base_size=0))


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "browser_out")
    out_dir.mkdir(exist_ok=True)

    system = branched(9, data_peers=leaf_peers(9)[:3], base_size=6)
    storage = prepare_storage(system)
    engine = SQLEngine(storage)
    rel = target_relation()

    views = {
        # "Show me everything about the results at my peer."
        "full_ancestry": f"FOR [{rel} $x] INCLUDE PATH [$x] <-+ [] RETURN $x",
        # "Only the part coming from peer P7."
        "from_p7": (
            f"FOR [{rel} $x] <-+ [P7_R1 $y] "
            f"INCLUDE PATH [$x] <-+ [$y] RETURN $x"
        ),
        # "What does mapping m1 feed, one step out?"
        "mapping_m1": (
            "FOR [$x] <m1 [] INCLUDE PATH [$x] <m1 [] RETURN $x"
        ),
    }

    for name, query in views.items():
        result = engine.run(query)
        tuples, derivations = result.graph.size()
        print(
            f"{name:>14}: {len(result.rows)} bindings, subgraph "
            f"{tuples} tuples / {derivations} derivations "
            f"({result.stats.unfolded_rules} unfolded rules, "
            f"{result.stats.sql_seconds * 1e3:.1f}ms SQL)"
        )
        # Color by derivation count so the browser can size nodes.
        counts = annotate(result.graph, get_semiring("COUNT"))
        (out_dir / f"{name}.dot").write_text(
            to_dot(result.graph, annotations=counts)
        )
        (out_dir / f"{name}.json").write_text(to_json(result.graph, counts))

    print(f"\nwrote {2 * len(views)} files under {out_dir}/")
    print("render with e.g.:  dot -Tpng browser_out/full_ancestry.dot -o g.png")
    storage.close()


if __name__ == "__main__":
    main()
