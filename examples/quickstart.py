"""Quickstart: the paper's running example, end to end.

Builds the three-peer CDSS of Example 2.1, runs update exchange to
materialize all public relations with provenance (Figure 1), stores
everything in SQLite using the relational encoding of Figure 2, and
runs the paper's example queries Q1-Q7 through the SQL-backed ProQL
engine.

Run:  python examples/quickstart.py

Set ``REPRO_TRACE=/path/to/trace.jsonl`` to record a hierarchical
span trace of the whole lifecycle; inspect it afterwards with
``python -m repro.obs report trace.jsonl`` (see docs/observability.md).
"""

import os

from repro.cdss import CDSS, Peer
from repro.proql import SQLEngine
from repro.provenance import to_dot
from repro.relational import RelationSchema
from repro.storage import SQLiteStorage


def build_cdss() -> CDSS:
    """Example 2.1: peers P1, P2, P3 and mappings m1-m5.

    (We omit the m3 of the paper so the provenance graph is acyclic,
    which is the scope of the SQL implementation; see
    examples/cyclic_provenance.py for the cyclic variant.)
    """
    system = CDSS(
        trace=os.environ.get("REPRO_TRACE") or None,
        peers=[
            Peer.of(
                "P1",
                [
                    RelationSchema.of("A", ["id", ("sn", "str"), "len"], key=["id"]),
                    RelationSchema.of("C", ["id", ("name", "str")], key=["id", "name"]),
                ],
            ),
            Peer.of(
                "P2",
                [
                    RelationSchema.of(
                        "N", ["id", ("name", "str"), ("canon", "bool")],
                        key=["id", "name"],
                    )
                ],
            ),
            Peer.of(
                "P3",
                [
                    RelationSchema.of(
                        "O", [("name", "str"), "h", ("animal", "bool")], key=["name"]
                    )
                ],
            ),
        ]
    )
    system.add_mappings(
        [
            "m1: C(i, n) :- A(i, s, _), N(i, n, false)",
            "m2: N(i, n, true) :- A(i, n, _)",
            "m4: O(n, h, true) :- A(i, n, h)",
            "m5: O(n, h, true) :- A(i, _, h), C(i, n)",
        ]
    )
    # Figure 1's base data (boldface tuples).
    system.insert_local("A", (1, "sn1", 7))
    system.insert_local("A", (2, "sn1", 5))
    system.insert_local("N", (1, "cn1", False))
    system.insert_local("C", (2, "cn2"))
    system.exchange()
    return system


def main() -> None:
    system = build_cdss()
    print("== materialized instance ==")
    for relation in ("A", "C", "N", "O"):
        for row in sorted(system.instance[relation], key=str):
            print(f"  {relation}{row}")
    tuples, derivations = system.graph.size()
    print(f"provenance graph: {tuples} tuple nodes, {derivations} derivations\n")

    storage = SQLiteStorage(system)
    storage.load()
    engine = SQLEngine(storage)

    print("== Q1: the ways each O tuple was derived ==")
    result = engine.run("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
    print(f"  subgraph: {result.graph.size()}, rows: ")
    for (node,) in result.rows:
        print(f"    {node}")

    print("\n== Q2: derivations of O involving relation A ==")
    result = engine.run(
        "FOR [O $x] <-+ [A $y] INCLUDE PATH [$x] <-+ [$y] RETURN $x"
    )
    for (node,) in result.rows:
        print(f"    {node}")

    print("\n== Q3: one-step derivations from m1/m2-derived tuples ==")
    result = engine.run(
        "FOR [$x] <$p [], [$y] <- [$x] WHERE $p = m1 OR $p = m2 "
        "INCLUDE PATH [$y] <- [$x] RETURN $y"
    )
    for (node,) in result.rows:
        print(f"    {node}")

    print("\n== Q4: O and C tuples with common provenance ==")
    result = engine.run(
        "FOR [O $x] <-+ [$z], [C $y] <-+ [$z] "
        "INCLUDE PATH [$x] <-+ [], [$y] <-+ [] RETURN $x, $y"
    )
    for o_node, c_node in result.rows:
        print(f"    {o_node}  ~  {c_node}")

    print("\n== Q5: derivability ==")
    result = engine.run(
        "EVALUATE DERIVABILITY OF { FOR [O $x] "
        "INCLUDE PATH [$x] <-+ [] RETURN $x }"
    )
    for row in result.annotated_rows:
        for node, value in row:
            print(f"    {node} -> {value}")

    print("\n== Q7: trust with a policy ==")
    result = engine.run(
        """
        EVALUATE TRUST OF {
          FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x
        } ASSIGNING EACH leaf_node $y {
          CASE $y in C : SET true
          CASE $y in A AND $y.len >= 6 : SET false
          DEFAULT : SET true
        } ASSIGNING EACH mapping $p($z) {
          CASE $p = m4 : SET false
          DEFAULT : SET $z
        }
        """
    )
    for row in result.annotated_rows:
        for node, value in row:
            print(f"    {node} -> {'trusted' if value else 'DISTRUSTED'}")

    print("\n== pipeline stats ==")
    print(
        f"  unfolded rules: {result.stats.unfolded_rules}, "
        f"SQL time: {result.stats.sql_seconds * 1e3:.1f}ms"
    )

    dot = to_dot(result.graph)
    print(f"\nDOT export of the projected graph: {len(dot.splitlines())} lines "
          "(pipe to `dot -Tpng` to render)")
    storage.close()


if __name__ == "__main__":
    main()
