"""SQL-backed, out-of-core update exchange with a compiled-plan cache.

The paper's testbed performs update exchange *inside the DBMS*; this
demo shows the reproduction's `repro.exchange` subsystem doing the
same:

* `engine="sqlite"` runs every semi-naive round as set-oriented SQL
  statements over delta tables (one statement per compiled join plan),
  maintaining the `P_m` provenance relations transactionally;
* an on-disk store path makes the exchange working set disk-resident —
  the out-of-core mode for instances larger than memory;
* the compiled-program cache makes incremental exchanges skip plan
  compilation entirely (`plans_compiled == 0` on a cache hit);
* the store mirror is synced *incrementally* from each relation's
  change journal — a repeat exchange over unchanged relations ships
  zero rows (`rows_mirrored == 0`);
* store-resident mode (`resident=True`) keeps the authoritative
  instance on disk only: derived tuples are never materialized in
  Python, so working sets can exceed memory;
* deletions work store-resident too: `delete_local` marks victims in
  SQL and `propagate_deletions` re-runs the paper's DERIVABILITY test
  as an iterative SQL fixpoint over the `P_m` firing history, killing
  unsupported tuples and garbage-collecting dead `P_m` rows;
* graph *queries* work store-resident as well: `lineage` runs as a
  backward transitive-closure walk over the stored firing history's
  join columns, and `trusted`/`derivability` re-use the deletion
  fixpoint with the trust policy pushed into the firing joins — so no
  provenance graph is ever materialized for any lifecycle step;
* both engines produce identical instances, provenance graphs, and
  graph-query answers.

Run:  python examples/sqlite_exchange_demo.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro.cdss.trust import TrustPolicy
from repro.provenance.graph import TupleNode
from repro.relational.schema import is_local_name
from repro.workloads import chain
from repro.workloads.swissprot import generate_entries
from repro.workloads.topologies import TopologySpec, build_system


def build_cdss():
    """Structure-only twin of main()'s CDSS (no data), for
    ``python -m repro.analysis examples/sqlite_exchange_demo.py``."""
    return build_system(TopologySpec("chain", 6, (), base_size=0))


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro-exchange-")
    )
    workdir.mkdir(parents=True, exist_ok=True)
    store_path = str(workdir / "exchange.db")

    # One chain workload per engine; the sqlite one keeps its working
    # set on disk (out-of-core).
    memory = chain(6, base_size=40, engine="memory")
    sqlite = chain(6, base_size=40, engine="sqlite", exchange_path=store_path)

    print("engine matrix (identical results, different substrates):")
    for label, system in (("memory", memory), ("sqlite", sqlite)):
        result = system.last_exchange
        print(
            f"  {label:>6}: {system.instance_size()} tuples, "
            f"graph {system.graph.size()}, {result.firings} firings, "
            f"{result.plans_compiled} plans compiled"
        )
    assert memory.instance == sqlite.instance
    assert memory.graph.tuples == sqlite.graph.tuples
    assert memory.graph.derivations == sqlite.graph.derivations
    baseline_size = memory.instance_size()
    print(f"  on-disk store: {store_path} "
          f"({Path(store_path).stat().st_size} bytes)")

    # Incremental update: the program is unchanged, so the compiled
    # plans come from the cache and nothing is recompiled.
    entry = (99_000_123, *(5,) * 12)
    entry2 = (99_000_123, *(6,) * 13)
    for system, engine in ((memory, "memory"), (sqlite, "sqlite")):
        system.insert_local("P5_R1", entry)
        system.insert_local("P5_R2", entry2)
        result = system.exchange(engine=engine, storage=(
            store_path if engine == "sqlite" else None
        ))
        print(
            f"incremental on {engine:>6}: {result.inserted} new tuples, "
            f"plans compiled = {result.plans_compiled} "
            f"(cache hit: {result.plan_cache_hit}), "
            f"mirrored {result.rows_mirrored} rows / "
            f"{result.relations_synced} relations"
        )
        assert result.plan_cache_hit and result.plans_compiled == 0
    assert memory.instance == sqlite.instance
    # Only the two appended rows crossed into the store — the rest of
    # the instance was already mirrored (journal high-water marks).
    assert sqlite.last_exchange.rows_mirrored == 2

    # A repeat exchange over unchanged relations ships nothing at all.
    unchanged = sqlite.exchange(engine="sqlite", storage=store_path)
    print(
        f"unchanged repeat: rows_mirrored = {unchanged.rows_mirrored}, "
        f"relations_synced = {unchanged.relations_synced}"
    )
    assert unchanged.rows_mirrored == 0 and unchanged.relations_synced == 0

    # Store-resident mode: the store IS the instance.  Derived tuples
    # exist only on disk; Python holds just the local contributions.
    resident = chain(
        6,
        base_size=40,
        engine="sqlite",
        exchange_path=str(workdir / "resident.db"),
        resident=True,
    )
    public_in_python = sum(
        resident.instance.size(r)
        for r in resident.catalog.names()
        if not is_local_name(r)
    )
    print(
        f"resident mode: {resident.instance_size()} tuples on disk, "
        f"{public_in_python} derived tuples in Python memory"
    )
    assert public_in_python == 0
    assert resident.instance_size() == baseline_size

    # Store-resident deletion propagation: delete a slice of the most
    # upstream peer's base data, then let the DERIVABILITY test run as
    # a SQL fixpoint over the P_m firing history — victims and every
    # tuple they solely supported disappear from the on-disk instance,
    # and the dead P_m rows are garbage-collected alongside.
    upstream = 5
    victims = generate_entries(40, seed=upstream, key_offset=upstream * 10_000_000)[:4]
    for victim in victims:
        resident.delete_local(f"P{upstream}_R1", victim.first_row())
        resident.delete_local(f"P{upstream}_R2", victim.second_row())
    removed = resident.propagate_deletions()
    stats = resident.last_deletion
    print(
        f"resident delete: {len(victims) * 2} victims marked in SQL, "
        f"{removed} unsupported tuples propagated out in "
        f"{stats.iterations} fixpoint rounds, "
        f"{stats.pm_rows_collected} P_m rows collected"
    )
    assert stats.rows_deleted == removed > 0
    assert stats.pm_rows_collected > 0
    assert resident.instance_size() < baseline_size

    # The store remains fully incremental after the delete: a fresh
    # exchange re-derives only what the new rows support.
    resident.insert_local("P5_R1", entry)
    resident.insert_local("P5_R2", entry2)
    after_delete = resident.exchange(engine="sqlite", resident=True)
    assert after_delete.rows_mirrored == 2
    print(
        f"post-delete incremental exchange: {after_delete.inserted} tuples "
        f"re-derived, {after_delete.rows_mirrored} rows mirrored"
    )

    # Store-resident graph queries: the provenance graph is never
    # built, yet lineage/derivability/trusted answer relationally.
    # lineage(node) walks the firing history backwards from the query
    # row (a transitive closure over the P_m join columns); the entry
    # just inserted at the most upstream peer reaches the target peer
    # through the whole chain, so its target-side tuple's lineage is
    # the pair of upstream local contributions.
    node = TupleNode("P0_R1", entry)
    leaves = resident.lineage(node)
    stats = resident.last_graph_query
    print(
        f"resident lineage of {node.relation}{node.values[:2]}...: "
        f"{len(leaves)} leaf tuples in {stats.iterations} walk rounds "
        f"({stats.pm_rows_scanned} firing rows scanned, engine={stats.engine})"
    )
    assert leaves == frozenset(
        {TupleNode("P5_R1_l", entry), TupleNode("P5_R2_l", entry2)}
    )
    assert resident.graph.size() == (0, 0)  # still no graph in Python

    # trusted() pushes the policy INTO the SQL fixpoint: distrusting
    # the most upstream mapping cuts everything derived through it,
    # and leaf conditions filter which local rows seed the live set.
    policy = TrustPolicy()
    policy.distrust_mapping("m5")  # the edge out of peer 5
    verdicts = resident.trusted(policy)
    trusted_count = sum(1 for trusted in verdicts.values() if trusted)
    print(
        f"resident trust under distrust(m5): {trusted_count} of "
        f"{len(verdicts)} stored tuples trusted "
        f"(fixpoint rounds: {resident.last_graph_query.iterations})"
    )
    assert not verdicts[node]  # entry only reaches P0 through m5
    assert trusted_count < len(verdicts)

    # The P_m provenance relations were maintained inside SQLite,
    # round by round, alongside the instance tables.
    store = sqlite.exchange_store
    mapping = next(
        m for m in sqlite.mappings.values()
        if not m.is_superfluous and m.provenance_columns
    )
    (count,) = store.connection.execute(
        f'SELECT COUNT(*) FROM "P_{mapping.name}"'
    ).fetchone()
    print(
        f"provenance relation P_{mapping.name} holds {count} derivation "
        "rows, written transactionally during the SQL fixpoint"
    )


if __name__ == "__main__":
    main()
