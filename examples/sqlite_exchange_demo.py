"""SQL-backed, out-of-core update exchange with a compiled-plan cache.

The paper's testbed performs update exchange *inside the DBMS*; this
demo shows the reproduction's `repro.exchange` subsystem doing the
same:

* `engine="sqlite"` runs every semi-naive round as set-oriented SQL
  statements over delta tables (one statement per compiled join plan),
  maintaining the `P_m` provenance relations transactionally;
* an on-disk store path makes the exchange working set disk-resident —
  the out-of-core mode for instances larger than memory;
* the compiled-program cache makes incremental exchanges skip plan
  compilation entirely (`plans_compiled == 0` on a cache hit);
* both engines produce identical instances and provenance graphs.

Run:  python examples/sqlite_exchange_demo.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro.workloads import chain


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro-exchange-")
    )
    workdir.mkdir(parents=True, exist_ok=True)
    store_path = str(workdir / "exchange.db")

    # One chain workload per engine; the sqlite one keeps its working
    # set on disk (out-of-core).
    memory = chain(6, base_size=40, engine="memory")
    sqlite = chain(6, base_size=40, engine="sqlite", exchange_path=store_path)

    print("engine matrix (identical results, different substrates):")
    for label, system in (("memory", memory), ("sqlite", sqlite)):
        result = system.last_exchange
        print(
            f"  {label:>6}: {system.instance_size()} tuples, "
            f"graph {system.graph.size()}, {result.firings} firings, "
            f"{result.plans_compiled} plans compiled"
        )
    assert memory.instance == sqlite.instance
    assert memory.graph.tuples == sqlite.graph.tuples
    assert memory.graph.derivations == sqlite.graph.derivations
    print(f"  on-disk store: {store_path} "
          f"({Path(store_path).stat().st_size} bytes)")

    # Incremental update: the program is unchanged, so the compiled
    # plans come from the cache and nothing is recompiled.
    entry = (99_000_123, *(5,) * 12)
    entry2 = (99_000_123, *(6,) * 13)
    for system, engine in ((memory, "memory"), (sqlite, "sqlite")):
        system.insert_local("P5_R1", entry)
        system.insert_local("P5_R2", entry2)
        result = system.exchange(engine=engine, storage=(
            store_path if engine == "sqlite" else None
        ))
        print(
            f"incremental on {engine:>6}: {result.inserted} new tuples, "
            f"plans compiled = {result.plans_compiled} "
            f"(cache hit: {result.plan_cache_hit})"
        )
        assert result.plan_cache_hit and result.plans_compiled == 0
    assert memory.instance == sqlite.instance

    # The P_m provenance relations were maintained inside SQLite,
    # round by round, alongside the instance tables.
    store = sqlite.exchange_store
    mapping = next(
        m for m in sqlite.mappings.values()
        if not m.is_superfluous and m.provenance_columns
    )
    (count,) = store.connection.execute(
        f'SELECT COUNT(*) FROM "P_{mapping.name}"'
    ).fetchone()
    print(
        f"provenance relation P_{mapping.name} holds {count} derivation "
        "rows, written transactionally during the SQL fixpoint"
    )


if __name__ == "__main__":
    main()
