"""Trust assessment in a CDSS (use case Q7, Sections 1-2).

A bioinformatics-style chain of five peers shares protein annotations.
The target peer wants to decide, per materialized tuple, whether to
trust it — based on which sources contributed it, which mappings it
traveled through, and attribute-level trust conditions.  Because
provenance was materialized once, *different* trust policies can be
evaluated instantly without re-running the exchange.

Run:  python examples/trust_assessment.py
"""

from repro.cdss import TrustPolicy, attribute_condition
from repro.provenance import annotate
from repro.semirings import TrustSemiring, get_semiring
from repro.workloads import chain, upstream_data_peers
from repro.workloads.topologies import TopologySpec, build_system, target_relation


def build_cdss():
    """Structure-only twin of main()'s CDSS (peers and mappings, no
    data), for ``python -m repro.analysis examples/trust_assessment.py``."""
    return build_system(TopologySpec("chain", 5, (), base_size=0))


def trust_policies():
    """The example's reference-checkable policies, for the trust lint."""
    policy1 = TrustPolicy()
    policy1.distrust_relation("P4_R1")
    policy1.distrust_relation("P4_R2")
    policy2 = TrustPolicy()
    policy2.distrust_mapping("m3")
    return [policy1, policy2]


def main() -> None:
    # Five peers; the two most-upstream ones are data contributors.
    system = chain(5, data_peers=upstream_data_peers(5, 2), base_size=30)
    print(
        f"built chain CDSS: {len(system.peers)} peers, "
        f"{system.instance_size()} materialized tuples"
    )

    target_nodes = sorted(system.graph.tuples_in(target_relation()))
    semiring: TrustSemiring = get_semiring("TRUST")

    # Policy 1: distrust everything contributed by peer P4.
    policy1 = TrustPolicy()
    policy1.distrust_relation("P4_R1")
    policy1.distrust_relation("P4_R2")
    trusted1 = system.trusted(policy1)

    # Policy 2: distrust the mapping from peer P3 to P2 (say it was
    # authored by an unreliable curator).
    policy2 = TrustPolicy()
    policy2.distrust_mapping("m3")
    trusted2 = system.trusted(policy2)

    # Policy 3: attribute-level condition — trust entries whose first
    # payload attribute (a synthetic quality score) is even.
    schema = system.catalog["P4_R1"]
    policy3 = TrustPolicy()
    policy3.trust_if(
        "P4_R1", attribute_condition(schema, "a1", lambda v: v % 2 == 0)
    )
    trusted3 = system.trusted(policy3)

    print(f"\n{'tuple key':>12}  {'no-P4':>6}  {'no-m3':>6}  {'a1-even':>8}")
    for node in target_nodes[:12]:
        print(
            f"{node.values[0]:>12}  "
            f"{str(trusted1[node]):>6}  "
            f"{str(trusted2[node]):>6}  "
            f"{str(trusted3[node]):>8}"
        )

    def count(trusted):
        return sum(1 for node in target_nodes if trusted[node])

    print(
        f"\ntrusted at target peer: "
        f"policy1={count(trusted1)}/{len(target_nodes)}, "
        f"policy2={count(trusted2)}/{len(target_nodes)}, "
        f"policy3={count(trusted3)}/{len(target_nodes)}"
    )

    # The same provenance graph also answers: which base tuples does a
    # distrusted result depend on?  (lineage, use case Q6)
    doubtful = next(
        node for node in target_nodes if not trusted2[node]
    )
    lineage = system.lineage(doubtful)
    print(f"\nlineage of distrusted {doubtful}:")
    for leaf in sorted(lineage, key=str)[:4]:
        print(f"  {leaf}")

    # Everything above is also expressible in ProQL; e.g. policy 2:
    from repro.proql import GraphEngine

    engine = GraphEngine(system.graph, system.catalog)
    result = engine.run(
        f"""
        EVALUATE TRUST OF {{
          FOR [{target_relation()} $x] INCLUDE PATH [$x] <-+ [] RETURN $x
        }} ASSIGNING EACH mapping $p($z) {{
          CASE $p = m3 : SET false
          DEFAULT : SET $z
        }}
        """
    )
    agreement = all(
        result.annotations[node] == trusted2[node] for node in target_nodes
    )
    print(f"\nProQL TRUST query agrees with TrustPolicy API: {agreement}")


if __name__ == "__main__":
    main()
