"""Incremental update exchange and deletion propagation (Q5/Q6).

The CDSS materializes every peer's instance; when base data changes,
provenance makes maintenance incremental:

* **insertions** seed a semi-naive delta — only new derivations fire;
* **deletions** use the DERIVABILITY semiring over the stored graph
  (use case Q5): tuples whose annotation flips to false are garbage-
  collected, while tuples still derivable another way survive;
* **lineage** (Q6) predicts the blast radius of a deletion before
  performing it — the side-effect test of bidirectional update
  exchange.

Run:  python examples/update_exchange_demo.py
"""

from repro.provenance import TupleNode
from repro.workloads import chain, upstream_data_peers
from repro.workloads.topologies import TopologySpec, build_system, target_relation


def build_cdss():
    """Structure-only twin of main()'s CDSS (no data), for
    ``python -m repro.analysis examples/update_exchange_demo.py``."""
    return build_system(TopologySpec("chain", 4, (), base_size=0))


def main() -> None:
    system = chain(4, data_peers=upstream_data_peers(4, 2), base_size=10)
    print(f"initial exchange: {system.instance_size()} tuples, "
          f"graph {system.graph.size()}")

    # -- incremental insertion ---------------------------------------------------
    new_entry = (99_000_001, *(7 for _ in range(12)))
    new_entry2 = (99_000_001, *(9 for _ in range(13)))
    system.insert_local("P3_R1", new_entry)
    system.insert_local("P3_R2", new_entry2)
    result = system.exchange()
    print(
        f"\ninserted 1 entry at upstream peer P3: {result.inserted} new "
        f"tuples materialized with {result.firings} rule firings "
        "(incremental, not a full recomputation)"
    )
    target = TupleNode(target_relation(), (99_000_001, *(7,) * 12))
    assert system.instance.contains(target.relation, target.values)
    print(f"  -> propagated to the target peer: {target}")

    # -- lineage: predict the effect of a deletion (Q6) ------------------------
    lineage = system.lineage(target)
    print(f"\nlineage of {target.values[0]} at the target peer:")
    for leaf in sorted(lineage, key=str):
        print(f"  {leaf}")

    # -- deletion propagation (Q5) ------------------------------------------------
    before = system.instance_size()
    system.delete_local("P3_R1", new_entry)
    removed = system.propagate_deletions()
    print(
        f"\ndeleted the P3_R1 contribution: {removed} tuples garbage-"
        f"collected across all peers ({before} -> {system.instance_size()})"
    )
    assert not system.instance.contains(target.relation, target.values)

    # -- alternate derivations survive -------------------------------------------
    # Insert the same logical entry at TWO peers, then delete one copy.
    entry_key = 99_000_777
    for peer in ("P3", "P2"):
        system.insert_local(f"{peer}_R1", (entry_key, *(3,) * 12))
        system.insert_local(f"{peer}_R2", (entry_key, *(4,) * 13))
    system.exchange()
    target = TupleNode(target_relation(), (entry_key, *(3,) * 12))
    derivations = len(system.graph.derivations_of(target))

    system.delete_local("P3_R1", (entry_key, *(3,) * 12))
    system.delete_local("P3_R2", (entry_key, *(4,) * 13))
    removed = system.propagate_deletions()
    survives = system.instance.contains(target.relation, target.values)
    print(
        f"\nsame entry contributed by P3 and P2; after deleting P3's copy "
        f"({removed} tuples removed), the target tuple "
        f"{'SURVIVES via P2' if survives else 'was lost'}"
    )
    assert survives


if __name__ == "__main__":
    main()
