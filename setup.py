"""Legacy setup shim for offline editable installs (no wheel package)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Querying Data Provenance' (ProQL, SIGMOD 2010)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
