"""repro — reproduction of "Querying Data Provenance" (SIGMOD 2010).

Public API surface.  The typical flow:

1. build a :class:`~repro.cdss.CDSS` (peers + schema mappings),
2. insert local data and :meth:`~repro.cdss.CDSS.exchange` — in memory
   or set-oriented inside SQLite (``engine="sqlite"``, see
   :mod:`repro.exchange`), with compiled plans cached across
   incremental calls,
3. load into :class:`~repro.storage.SQLiteStorage`,
4. query with :class:`~repro.proql.SQLEngine` (or the reference
   :class:`~repro.proql.GraphEngine`), optionally after registering
   ASRs through :class:`~repro.indexing.ASRManager`.
"""

from repro.cdss import CDSS, Peer, SchemaMapping, TrustPolicy
from repro.errors import ReproError
from repro.exchange import ProgramCache, program_fingerprint
from repro.indexing import ASRDefinition, ASRManager, asr_definitions_for
from repro.proql import GraphEngine, SQLEngine, parse_query
from repro.provenance import (
    DerivationNode,
    ProvenanceGraph,
    TupleNode,
    annotate,
    provenance_polynomial,
    to_dot,
    to_json,
)
from repro.relational import Catalog, Instance, RelationSchema
from repro.semirings import Polynomial, Semiring, get_semiring, known_semirings
from repro.storage import SQLiteStorage

__version__ = "1.0.0"

__all__ = [
    "ASRDefinition",
    "ASRManager",
    "CDSS",
    "Catalog",
    "DerivationNode",
    "GraphEngine",
    "Instance",
    "Peer",
    "Polynomial",
    "ProgramCache",
    "ProvenanceGraph",
    "RelationSchema",
    "ReproError",
    "SQLEngine",
    "SQLiteStorage",
    "SchemaMapping",
    "Semiring",
    "TrustPolicy",
    "TupleNode",
    "annotate",
    "asr_definitions_for",
    "get_semiring",
    "known_semirings",
    "parse_query",
    "program_fingerprint",
    "provenance_polynomial",
    "to_dot",
    "to_json",
]
