"""Static analysis of CDSS mapping programs — no data required.

The analyzer inspects a :class:`~repro.cdss.system.CDSS`'s *program*
(peers, mappings, local rules, trust policies) and reports defects
before the first delta fires:

* **safety / range restriction** (RA1xx) — degenerate labeled nulls,
  unbound Skolem arguments, singleton variables, duplicate mappings,
  catalog mismatches;
* **termination** (RA2xx) — weak acyclicity of the position dependency
  graph (the standard chase-termination criterion), isolated peers,
  no-op mappings;
* **trust lint** (RA3xx) — policies referencing unknown relations or
  mappings, shadowed conditions;
* **lowering lint** (RA4xx) — every SQL lowering of the program
  (exchange, derivability, graph-query) EXPLAIN-prepared against a
  schema-only store, catching engine drift statically.

Entry points:

* :func:`analyze` — full report over a built CDSS;
* :func:`analyze_program` — safety + termination over raw rules (no
  CDSS needed);
* ``CDSS.exchange(validate="error"|"warn")`` — the pre-flight hook;
* ``python -m repro.analysis`` — the CLI (see :mod:`repro.analysis.cli`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.analysis.diagnostics import (
    CODES,
    ERROR,
    WARNING,
    Diagnostic,
    Report,
    make_report,
    severity_of,
)
from repro.analysis.safety import safety_pass
from repro.analysis.termination import (
    build_position_graph,
    topology_pass,
    weak_acyclicity_pass,
)
from repro.analysis.trustlint import trust_pass
from repro.datalog.rules import Program, Rule
from repro.relational.instance import Catalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cdss.system import CDSS
    from repro.cdss.trust import TrustPolicy
    from repro.exchange.sql_executor import ExchangeStore

__all__ = [
    "CODES",
    "ERROR",
    "WARNING",
    "Diagnostic",
    "Report",
    "analyze",
    "analyze_program",
    "analyze_query",
    "build_position_graph",
    "make_report",
    "severity_of",
]


def analyze_query(cdss: "CDSS", query: str) -> Report:
    """RA5xx static analysis of one ProQL query (no data needed).

    Checks path reachability over the schema graph (RA501), WHERE
    satisfiability (RA502), dead membership conditions (RA503), and
    parse/reference failures (RA504) — see
    :mod:`repro.analysis.query`.  ``CDSS.query(validate=...)`` and the
    CLI's ``--query`` flag both route here.
    """
    from repro.analysis.query import analyze_query as _analyze_query

    return _analyze_query(cdss, query)


def analyze_program(
    rules: Program | Sequence[Rule],
    catalog: Catalog | None = None,
) -> Report:
    """Safety + termination analysis of raw rules (no CDSS needed).

    Used by tests and by callers holding a bare
    :class:`~repro.datalog.rules.Program`; the trust and lowering
    passes need a full CDSS and run only from :func:`analyze`.
    """
    rule_list = list(rules)
    diagnostics = safety_pass(rule_list, catalog)
    diagnostics.extend(weak_acyclicity_pass(rule_list, catalog))
    return make_report(diagnostics, {"rules_analyzed": len(rule_list)})


def analyze(
    cdss: "CDSS",
    policies: "Iterable[TrustPolicy]" = (),
    lowering: bool = True,
    store: "ExchangeStore | None" = None,
    query: str | None = None,
) -> Report:
    """Full static analysis of *cdss* — without touching any data.

    ``policies`` adds the trust lint over each given policy (labeled
    ``#0``, ``#1``, ... in diagnostics).  ``lowering=False`` skips the
    SQL dry-run (the only pass that needs a SQLite connection);
    ``store`` lets the lowering lint run against an existing — e.g.
    reopened on-disk — store instead of a throwaway in-memory one.
    Only ``EXPLAIN`` and idempotent ``CREATE TABLE`` statements ever
    reach the store.  ``query`` additionally runs the RA5xx ProQL
    analysis of that query against this system's schema graph.
    """
    from repro.analysis.lowering import lowering_pass

    program = cdss.program()
    mapping_rules = [m.rule for m in cdss.mappings.values()]
    diagnostics = safety_pass(
        program.rules, cdss.catalog, duplicate_candidates=mapping_rules
    )
    diagnostics.extend(weak_acyclicity_pass(program.rules, cdss.catalog))
    diagnostics.extend(topology_pass(cdss.peers, cdss.mappings))
    known_mappings = set(cdss.mappings) | {r.name for r in cdss.local_rules()}
    for index, policy in enumerate(policies):
        diagnostics.extend(
            trust_pass(policy, cdss.catalog, known_mappings, label=f"#{index}")
        )
    stats = {
        "rules_analyzed": len(program.rules),
        "mappings": len(cdss.mappings),
        "peers": len(cdss.peers),
    }
    if lowering:
        entry, _hit = cdss.plan_cache.fetch(program)
        lowering_diagnostics, lowering_stats = lowering_pass(
            entry, cdss.catalog, cdss.mappings, store
        )
        diagnostics.extend(lowering_diagnostics)
        stats.update(lowering_stats)
    if query is not None:
        from repro.analysis.query import query_pass

        query_diagnostics, query_stats = query_pass(cdss, query)
        diagnostics.extend(query_diagnostics)
        stats.update(query_stats)
    return make_report(diagnostics, stats)
