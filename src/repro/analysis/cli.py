"""``python -m repro.analysis`` — lint CDSS programs from the shell.

Targets are either workload specs or Python files:

* ``chain:N`` / ``branched:N`` — the workload topologies of
  :mod:`repro.workloads.topologies`, built *structure-only* (peers and
  mappings, no data, no exchange);
* ``path/to/file.py`` — imported by path; the file must expose a
  zero-argument ``build_cdss()`` (or ``build_system()``) returning the
  :class:`~repro.cdss.system.CDSS` to analyze, and may expose
  ``trust_policies()`` returning policies for the trust lint.

Exit status is non-zero iff any target reports an *error* diagnostic
(warnings never fail the lint).  ``--json`` prints one machine-readable
object over all targets, which is what CI consumes.

Examples::

    python -m repro.analysis chain:8 branched:9
    python -m repro.analysis examples/quickstart.py --json
    python tools/repro_lint.py examples/*.py
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.analysis import Diagnostic, Report, analyze, make_report

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cdss.system import CDSS

#: builder names probed, in order, in a target file's namespace.
_BUILDER_NAMES = ("build_cdss", "build_system")


def _failure(target: str, message: str) -> Report:
    return make_report(
        [Diagnostic("RA001", f"{target}: {message}", subject=target)]
    )


def _build_spec_target(target: str) -> "CDSS":
    """``chain:N`` / ``branched:N`` — structure-only workload build."""
    from repro.workloads.topologies import TopologySpec, build_system

    kind, _, count = target.partition(":")
    num_peers = int(count)
    if num_peers < 1:
        raise ValueError(f"need at least 1 peer, got {num_peers}")
    return build_system(TopologySpec(kind, num_peers, (), base_size=0))


def _load_file_target(path: Path) -> tuple["CDSS", list]:
    """Import *path* and call its builder; returns (cdss, policies)."""
    spec = importlib.util.spec_from_file_location(
        f"repro_lint_target_{path.stem}", path
    )
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    builder: Callable[[], "CDSS"] | None = None
    for name in _BUILDER_NAMES:
        candidate = getattr(module, name, None)
        if callable(candidate):
            builder = candidate
            break
    if builder is None:
        raise AttributeError(
            f"defines none of {'/'.join(_BUILDER_NAMES)}; add a "
            "zero-argument builder returning the CDSS to analyze"
        )
    cdss = builder()
    policies = []
    policy_builder = getattr(module, "trust_policies", None)
    if callable(policy_builder):
        policies = list(policy_builder())
    return cdss, policies


def analyze_target(
    target: str,
    lowering: bool = True,
    queries: list[str] | None = None,
) -> Report:
    """Analyze one CLI target, mapping build failures to RA001.

    ``queries`` runs the RA5xx ProQL lint for each given query against
    the target's schema graph, merged into the one report.
    """
    try:
        if target.startswith(("chain:", "branched:")):
            cdss = _build_spec_target(target)
            policies: list = []
        else:
            cdss, policies = _load_file_target(Path(target))
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        return _failure(target, f"{type(exc).__name__}: {exc}")
    report = analyze(cdss, policies=policies, lowering=lowering)
    if not queries:
        return report
    from repro.analysis.query import query_pass

    diagnostics = list(report.diagnostics)
    stats = dict(report.stats)
    for query in queries:
        query_diagnostics, query_stats = query_pass(cdss, query)
        diagnostics.extend(query_diagnostics)
        for key, value in query_stats.items():
            stats[key] = stats.get(key, 0) + value
    return make_report(diagnostics, stats)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analyzer for CDSS mapping programs "
        "(runs without touching any data).",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        help="chain:N, branched:N, or a .py file exposing build_cdss()",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print one JSON object mapping each target to its report",
    )
    parser.add_argument(
        "--no-lowering",
        action="store_true",
        help="skip the SQL EXPLAIN dry-run (the only pass that opens "
        "a SQLite connection)",
    )
    parser.add_argument(
        "--query",
        action="append",
        default=[],
        metavar="PROQL",
        help="also lint this ProQL query (RA5xx) against each target's "
        "schema graph; repeatable",
    )
    args = parser.parse_args(argv)
    reports = {
        target: analyze_target(
            target, lowering=not args.no_lowering, queries=args.query
        )
        for target in args.targets
    }
    failed = [target for target, report in reports.items() if not report.ok]
    if args.json:
        payload = {
            target: report.to_dict() for target, report in reports.items()
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for target, report in reports.items():
            print(f"== {target}")
            print(report)
            print()
        verdict = "FAIL" if failed else "ok"
        print(
            f"repro lint: {verdict} — {len(reports) - len(failed)}/"
            f"{len(reports)} target(s) clean"
        )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised as a script
    sys.exit(main())
