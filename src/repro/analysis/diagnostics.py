"""Diagnostics: stable codes, severities, and the report container.

Every check in :mod:`repro.analysis` emits :class:`Diagnostic` values
with a **stable code** (``RA101``, ``RA201``, ...) so tooling — CI
gates, editor integrations, the ``validate=`` pre-flight — can match on
codes instead of message text.  The catalog below is the single source
of truth: a code's severity is fixed here, and ``docs/analysis.md``
must document every entry (enforced by ``tools/check_docs.py``).

Code blocks by pass:

* ``RA0xx`` — analyzer/CLI plumbing (bad target, no builder).
* ``RA1xx`` — safety / range restriction.
* ``RA2xx`` — termination (weak acyclicity, topology reachability).
* ``RA3xx`` — trust-policy references.
* ``RA4xx`` — SQL lowering drift (``EXPLAIN`` dry-runs).
* ``RA5xx`` — ProQL query analysis (reachability, satisfiability).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import AnalysisError

ERROR = "error"
WARNING = "warning"

#: code -> (severity, one-line title).  Stable across releases: codes
#: are never reused for a different meaning.
CODES: dict[str, tuple[str, str]] = {
    "RA001": (ERROR, "analysis target failure (bad file, no builder)"),
    "RA101": (ERROR, "unsafe rule: unparameterized labeled null"),
    "RA102": (ERROR, "Skolem argument not bound by the rule body"),
    "RA103": (WARNING, "singleton body variable (possible typo)"),
    "RA104": (WARNING, "duplicate mapping (identical head and body)"),
    "RA105": (ERROR, "atom arity does not match the relation schema"),
    "RA106": (ERROR, "rule references an unknown relation"),
    "RA201": (ERROR, "not weakly acyclic: exchange may not terminate"),
    "RA202": (WARNING, "peer unreachable in the mapping topology"),
    "RA203": (WARNING, "no-op mapping (head is contained in the body)"),
    "RA301": (ERROR, "trust condition references an unknown relation"),
    "RA302": (ERROR, "trust policy distrusts an unknown mapping"),
    "RA303": (WARNING, "trust condition shadowed by a public-name condition"),
    "RA401": (ERROR, "exchange lowering failed EXPLAIN"),
    "RA402": (ERROR, "derivability lowering failed EXPLAIN"),
    "RA403": (ERROR, "graph-query lowering failed EXPLAIN"),
    "RA404": (WARNING, "rule outside the SQL-compilable fragment"),
    "RA501": (WARNING, "statically empty path (relation unreachable from spec)"),
    "RA502": (ERROR, "unsatisfiable WHERE condition"),
    "RA503": (WARNING, "condition on a relation the rewriting never touches"),
    "RA504": (ERROR, "query failed to parse or references unknown names"),
}

#: severity sort rank (errors first in reports).
_RANK = {ERROR: 0, WARNING: 1}


def severity_of(code: str) -> str:
    """The fixed severity of *code* (raises KeyError for unknown codes)."""
    return CODES[code][0]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer.

    ``subject`` names the offending object — a rule/mapping name, a
    relation, a peer, or a trust-policy index — so reports stay
    greppable and machine-consumable.
    """

    code: str
    message: str
    subject: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise AnalysisError(f"unknown diagnostic code {self.code!r}")

    @property
    def severity(self) -> str:
        return severity_of(self.code)

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def to_dict(self) -> dict[str, str]:
        return {
            "code": self.code,
            "severity": self.severity,
            "subject": self.subject,
            "message": self.message,
        }

    def __str__(self) -> str:
        subject = f" [{self.subject}]" if self.subject else ""
        return f"{self.code} {self.severity}{subject}: {self.message}"


@dataclass(frozen=True)
class Report:
    """The analyzer's verdict over one mapping program.

    ``ok`` means *no errors* — warnings never block an exchange, they
    only show up in the listing.  ``stats`` counts what the passes
    actually covered (rules analyzed, SQL statements dry-run), so a
    "clean" report can be told apart from a pass that never ran.
    """

    diagnostics: tuple[Diagnostic, ...]
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.is_error)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if not d.is_error)

    @property
    def ok(self) -> bool:
        return not self.errors

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.code == code)

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "stats": dict(self.stats),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def raise_for_errors(self) -> None:
        """Raise :class:`AnalysisError` when the report has errors."""
        if self.ok:
            return
        lines = [str(d) for d in self.errors]
        raise AnalysisError(
            f"static analysis failed with "
            f"{len(lines)} error(s):\n" + "\n".join(lines)
        )

    def __str__(self) -> str:
        if not self.diagnostics:
            return "analysis: clean (0 errors, 0 warnings)"
        lines = [str(d) for d in self.diagnostics]
        lines.append(
            f"analysis: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)


def make_report(
    diagnostics: list[Diagnostic], stats: dict[str, int] | None = None
) -> Report:
    """Order diagnostics (errors first, then code, then subject) into a
    :class:`Report`."""
    ordered = tuple(
        sorted(
            diagnostics,
            key=lambda d: (_RANK[d.severity], d.code, d.subject, d.message),
        )
    )
    return Report(ordered, stats or {})
