"""Lowering lint (codes RA401–RA404): dry-run the SQL engine's plans.

The sqlite engine trusts that :mod:`repro.exchange.sql_plans` and the
store schema (:meth:`~repro.exchange.sql_executor.ExchangeStore.ensure_schema`)
agree on every table, column, and parameter name.  That contract is
normally only exercised at exchange time — hours into a run for the
workloads ROADMAP targets.  This pass exercises it at analysis time:

* lower the program all three ways (exchange, derivability,
  graph-query),
* create the schema in a **schema-only** store (no data is ever
  written — ``ensure_*`` builds empty tables), and
* run ``EXPLAIN`` over every generated statement with its parameters
  bound, which forces SQLite to prepare each one: a missing table or
  column fails at prepare, a missing parameter fails at bind.

``EXPLAIN`` never executes the plan, so the pass touches zero rows
even against a reopened store that holds live data.
"""

from __future__ import annotations

import sqlite3
from typing import TYPE_CHECKING, Mapping

from repro.analysis.diagnostics import Diagnostic
from repro.cdss.mapping import SchemaMapping
from repro.errors import ExchangeError
from repro.exchange.sql_plans import Statement
from repro.relational.instance import Catalog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exchange.cache import CompiledExchangeProgram
    from repro.exchange.sql_executor import ExchangeStore


def _explain(
    store: "ExchangeStore",
    sql: str,
    params: Mapping[str, object],
    runtime: tuple[str, ...],
    code: str,
    subject: str,
    diagnostics: list[Diagnostic],
) -> int:
    """Prepare one statement via EXPLAIN; 1 if it prepared cleanly."""
    bound = dict(params)
    for name in runtime:
        bound[name] = 0
    try:
        store.connection.execute(f"EXPLAIN {sql}", bound)
    except sqlite3.Error as exc:
        diagnostics.append(
            Diagnostic(
                code,
                f"{subject}: statement failed to prepare against the "
                f"store schema: {exc}",
                subject=subject,
            )
        )
        return 0
    return 1


def _explain_statement(
    store: "ExchangeStore",
    statement: Statement,
    code: str,
    subject: str,
    diagnostics: list[Diagnostic],
) -> int:
    return _explain(
        store,
        statement.sql,
        statement.params,
        statement.runtime,
        code,
        subject,
        diagnostics,
    )


def lowering_pass(
    program: "CompiledExchangeProgram",
    catalog: Catalog,
    mappings: Mapping[str, SchemaMapping],
    store: "ExchangeStore | None" = None,
) -> tuple[list[Diagnostic], dict[str, int]]:
    """Dry-run all three SQL lowerings of *program* through EXPLAIN.

    ``store`` defaults to a throwaway in-memory
    :class:`~repro.exchange.sql_executor.ExchangeStore`; pass an
    existing (possibly reopened on-disk) store to lint against its
    file.  Either way only ``CREATE TABLE IF NOT EXISTS`` / ``CREATE
    INDEX IF NOT EXISTS`` and ``EXPLAIN`` run — no data is read or
    written.
    """
    from repro.exchange.sql_executor import ExchangeStore
    from repro.exchange.sql_plans import (
        kill_sql,
        lower_derivability_program,
        lower_program,
        pm_gc_sql,
        stage_ancestor_sql,
        stage_live_sql,
        stage_new_sql,
    )
    from repro.exchange.graph_queries import lower_lineage_program

    diagnostics: list[Diagnostic] = []
    explained = 0
    compilable = []
    for crule in program.compiled:
        if crule.plans:
            compilable.append(crule)
        else:
            diagnostics.append(
                Diagnostic(
                    "RA404",
                    f"rule {crule.rule.name}: body is outside the "
                    "planner's SQL-compilable fragment; the sqlite "
                    "engine cannot run it (memory engine only)",
                    subject=crule.rule.name,
                )
            )
    own_store = store is None
    the_store = ExchangeStore() if store is None else store
    codec = the_store.codec
    try:
        # -- exchange lowering (RA401) --------------------------------
        try:
            psql = lower_program(compilable, catalog, mappings, codec)
        except ExchangeError as exc:
            psql = None
            diagnostics.append(
                Diagnostic("RA401", str(exc), subject="exchange")
            )
        if psql is not None:
            the_store.ensure_schema(catalog, mappings, psql)
            for rule_sql in psql.rules:
                subject = rule_sql.rule_name
                for plan in rule_sql.plans:
                    explained += _explain_statement(
                        the_store, plan.statement, "RA401", subject, diagnostics
                    )
                for insert in rule_sql.head_inserts:
                    explained += _explain_statement(
                        the_store, insert, "RA401", subject, diagnostics
                    )
                if rule_sql.provenance_insert is not None:
                    explained += _explain_statement(
                        the_store,
                        rule_sql.provenance_insert,
                        "RA401",
                        subject,
                        diagnostics,
                    )
            for relation in psql.relations:
                explained += _explain(
                    the_store,
                    stage_new_sql(catalog, relation),
                    {},
                    (),
                    "RA401",
                    relation,
                    diagnostics,
                )
        # -- derivability lowering (RA402) ----------------------------
        try:
            dsql = lower_derivability_program(
                compilable, catalog, mappings, codec
            )
        except ExchangeError as exc:
            dsql = None
            diagnostics.append(
                Diagnostic("RA402", str(exc), subject="derivability")
            )
        if dsql is not None:
            the_store.ensure_derivability_schema(catalog, dsql)
            for drule in dsql.rules:
                subject = drule.rule_name
                for dplan in drule.plans:
                    explained += _explain_statement(
                        the_store, dplan.statement, "RA402", subject, diagnostics
                    )
                for insert in drule.head_inserts:
                    explained += _explain_statement(
                        the_store, insert, "RA402", subject, diagnostics
                    )
                if drule.pm_insert is not None:
                    explained += _explain_statement(
                        the_store, drule.pm_insert, "RA402", subject, diagnostics
                    )
            for relation in dsql.relations:
                explained += _explain(
                    the_store,
                    stage_live_sql(catalog, relation),
                    {},
                    (),
                    "RA402",
                    relation,
                    diagnostics,
                )
            for relation in dsql.derived_relations:
                explained += _explain(
                    the_store,
                    kill_sql(catalog, relation),
                    {},
                    (),
                    "RA402",
                    relation,
                    diagnostics,
                )
            for _name, pm_table, live_pm, columns in dsql.pm_tables:
                explained += _explain(
                    the_store,
                    pm_gc_sql(pm_table, live_pm, columns),
                    {},
                    (),
                    "RA402",
                    pm_table,
                    diagnostics,
                )
        # -- graph-query lowering (RA403) -----------------------------
        try:
            lsql = lower_lineage_program(compilable, catalog, codec)
        except ExchangeError as exc:
            lsql = None
            diagnostics.append(
                Diagnostic("RA403", str(exc), subject="graph-query")
            )
        if lsql is not None:
            the_store.ensure_graph_query_schema(catalog, lsql)
            for lrule in lsql.rules:
                subject = lrule.rule_name
                for _head_relation, probe in lrule.head_probes:
                    explained += _explain_statement(
                        the_store, probe, "RA403", subject, diagnostics
                    )
                for insert in lrule.body_inserts:
                    explained += _explain_statement(
                        the_store, insert, "RA403", subject, diagnostics
                    )
            for relation in lsql.relations:
                explained += _explain(
                    the_store,
                    stage_ancestor_sql(catalog, relation),
                    {},
                    (),
                    "RA403",
                    relation,
                    diagnostics,
                )
    finally:
        if own_store:
            the_store.close()
    stats = {
        "explained_statements": explained,
        "sql_rules": len(compilable),
    }
    return diagnostics, stats
