"""Static analysis of ProQL queries — the RA5xx family.

Runs without any data, over the same structures the SQL engine's
pipeline uses (the schema graph, the path-NFA viability product of
:mod:`repro.proql.pruning`, the condition AST of
:mod:`repro.proql.conditions`):

* **RA501** — a path expression can never match: no anchor relation
  reaches an accepting state of the path NFA over the schema graph
  (the unfolder's pruning oracle would produce zero rewritings, so the
  query is statically empty);
* **RA502** — the WHERE condition is unsatisfiable (contradictory
  equality/constant constraints in every OR branch);
* **RA503** — a membership condition names a relation the unfolded
  rewriting set can never touch, so the condition is dead weight;
* **RA504** — the query does not parse, or names relations/mappings
  unknown to the system.

Entry points: :func:`analyze_query` (standalone report),
``analyze(cdss, query=...)``, ``CDSS.query(..., validate=...)``, and
the CLI's ``--query`` flag — all sharing the catalog in
:mod:`repro.analysis.diagnostics`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.analysis.diagnostics import Diagnostic, Report, make_report
from repro.errors import ProQLError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cdss.system import CDSS
    from repro.proql.ast import (
        Compare,
        Condition,
        Membership,
        Operand,
        PathExpr,
        Projection,
    )
    from repro.proql.schema_graph import SchemaGraph

#: DNF expansion cap: beyond this many branches the satisfiability
#: check assumes "satisfiable" rather than blowing up (RA502 is a
#: *certainly-empty* verdict, so giving up is sound).
_BRANCH_LIMIT = 64

#: negation of a comparison operator (pushing NOT into a Compare).
_NEGATE = {"=": "!=", "!=": "=", "<": ">=", ">=": "<", ">": "<=", "<=": ">"}

#: operator after swapping the two sides of a comparison.
_SWAP = {"=": "=", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}


# -- condition satisfiability (RA502) ----------------------------------------------


def _const_value(operand: "Operand") -> tuple[bool, object]:
    """(is-constant, value); Identifiers count as string constants."""
    from repro.proql.ast import Identifier, Literal

    if isinstance(operand, Literal):
        return True, operand.value
    if isinstance(operand, Identifier):
        return True, operand.name
    return False, None


def _branches(
    condition: "Condition | None", limit: int = _BRANCH_LIMIT
) -> list[list["Condition"]] | None:
    """DNF expansion: a list of AND-branches of atomic conditions.

    Returns None when the expansion exceeds *limit* (caller must treat
    the condition as satisfiable).  NOT is pushed into comparisons and
    left opaque elsewhere.
    """
    from repro.proql.ast import And, Compare, Not, Or

    if condition is None:
        return [[]]
    if isinstance(condition, And):
        branches: list[list["Condition"]] = [[]]
        for operand in condition.operands:
            sub = _branches(operand, limit)
            if sub is None:
                return None
            branches = [b + s for b in branches for s in sub]
            if len(branches) > limit:
                return None
        return branches
    if isinstance(condition, Or):
        out: list[list["Condition"]] = []
        for operand in condition.operands:
            sub = _branches(operand, limit)
            if sub is None:
                return None
            out.extend(sub)
            if len(out) > limit:
                return None
        return out
    if isinstance(condition, Not):
        inner = condition.operand
        if isinstance(inner, Compare) and inner.op in _NEGATE:
            return [[Compare(inner.left, _NEGATE[inner.op], inner.right)]]
        return [[condition]]  # opaque: negated memberships/paths
    return [[condition]]


class _BranchState:
    """Accumulated constraints of one AND branch."""

    def __init__(self) -> None:
        #: (variable, attribute|"") -> required constant
        self.eq: dict[tuple[str, str], object] = {}
        #: (variable, attribute|"") -> excluded constants
        self.neq: dict[tuple[str, str], set[object]] = {}
        #: variable -> required (public) relation
        self.member: dict[str, str] = {}

    def require_eq(self, key: tuple[str, str], value: object) -> bool:
        if key in self.eq and self.eq[key] != value:
            return False
        if value in self.neq.get(key, ()):
            return False
        self.eq[key] = value
        return True

    def require_neq(self, key: tuple[str, str], value: object) -> bool:
        if key in self.eq and self.eq[key] == value:
            return False
        self.neq.setdefault(key, set()).add(value)
        return True

    def require_member(self, variable: str, relation: str) -> bool:
        previous = self.member.get(variable)
        if previous is not None and previous != relation:
            return False
        self.member[variable] = relation
        return True


def _apply_compare(state: _BranchState, compare: "Compare") -> bool:
    """Fold one comparison into the branch; False = contradiction."""
    from repro.proql.ast import AttrAccess, VarRef
    from repro.proql.conditions import compare_values

    left, op, right = compare.left, compare.op, compare.right
    left_const, left_value = _const_value(left)
    right_const, right_value = _const_value(right)
    if left_const and right_const:
        try:
            return compare_values(left_value, op, right_value)
        except ProQLError:
            return True  # unknown operator: leave to runtime
    if left_const and not right_const:
        left, right = right, left
        op = _SWAP.get(op, op)
        right_const, right_value = True, left_value
    if not right_const:
        return True  # variable-to-variable: opaque
    if isinstance(left, AttrAccess):
        key = (left.variable, left.attribute)
    elif isinstance(left, VarRef):
        key = (left.name, "")
    else:
        return True  # arithmetic operand: opaque
    if op == "=":
        return state.require_eq(key, right_value)
    if op == "!=":
        return state.require_neq(key, right_value)
    return True  # range constraints: opaque (sound to skip)


def _branch_satisfiable(atoms: Iterable["Condition"]) -> bool:
    from repro.proql.ast import Compare, Membership
    from repro.relational.schema import public_name

    state = _BranchState()
    for atom in atoms:
        if isinstance(atom, Compare):
            if not _apply_compare(state, atom):
                return False
        elif isinstance(atom, Membership):
            if not state.require_member(
                atom.variable, public_name(atom.relation)
            ):
                return False
        # memberships under NOT, path conditions: opaque
    return True


def condition_satisfiable(condition: "Condition | None") -> bool:
    """Certainly-empty test for a WHERE condition.

    False means **no** binding can satisfy it (every DNF branch holds
    contradictory equality / membership constraints); True means the
    analysis could not rule it out.
    """
    branches = _branches(condition)
    if branches is None:
        return True
    return any(_branch_satisfiable(branch) for branch in branches)


# -- the pass ------------------------------------------------------------


def _memberships(condition: "Condition | None") -> list["Membership"]:
    from repro.proql.ast import Membership

    out: list["Membership"] = []
    stack = [condition] if condition is not None else []
    while stack:
        node = stack.pop()
        if isinstance(node, Membership):
            out.append(node)
            continue
        for attr in ("operands", "operand"):
            inner = getattr(node, attr, None)
            if inner is None:
                continue
            if isinstance(inner, tuple):
                stack.extend(inner)
            else:
                stack.append(inner)
    return out


def _anchor_relations(
    graph: "SchemaGraph",
    path: "PathExpr",
    var_relations: dict[str, str],
) -> list[str]:
    """Anchor candidates of *path* (mirrors the SQL engine's matcher);
    raises :class:`~repro.errors.ProQLSemanticError` on unknown names."""
    spec = path.specs[0]
    if spec.relation is not None:
        return [graph.check_relation(spec.relation)]
    if spec.variable is not None and spec.variable in var_relations:
        return [graph.check_relation(var_relations[spec.variable])]
    return sorted(graph.relations)


def query_pass(
    cdss: "CDSS", query: str
) -> tuple[list[Diagnostic], dict[str, int]]:
    """All RA5xx checks over one query; (diagnostics, stats)."""
    from repro.proql.ast import projection_of
    from repro.proql.parser import parse_query
    from repro.proql.pruning import PatternViability
    from repro.proql.schema_graph import SchemaGraph
    from repro.proql.sql_engine import SQLEngine

    diagnostics: list[Diagnostic] = []
    stats = {"queries_analyzed": 1, "paths_analyzed": 0}
    try:
        ast = parse_query(query)
    except ProQLError as exc:
        diagnostics.append(
            Diagnostic("RA504", str(exc), subject=query.strip()[:60])
        )
        return diagnostics, stats
    projection: "Projection" = projection_of(ast)
    graph = SchemaGraph.of(cdss)
    var_relations = SQLEngine._var_relations(projection)
    get_allowed = SQLEngine._step_mappings(projection)

    # Named mappings on steps must exist (the matcher would silently
    # never traverse them — surface it as a reference error instead).
    known_mappings = set(cdss.mappings)
    for path in SQLEngine._all_paths(projection):
        for step in path.steps:
            if step.mapping is not None and step.mapping not in known_mappings:
                diagnostics.append(
                    Diagnostic(
                        "RA504",
                        f"path step names unknown mapping {step.mapping!r}",
                        subject=str(path),
                    )
                )

    # Reachability (RA501) per path + the touched-relation set (RA503).
    touched: set[str] = set()
    for path in SQLEngine._all_paths(projection):
        stats["paths_analyzed"] += 1
        try:
            anchors = _anchor_relations(graph, path, var_relations)
        except ProQLError as exc:
            diagnostics.append(
                Diagnostic("RA504", str(exc), subject=str(path))
            )
            continue
        viability = PatternViability(graph, path, get_allowed, local_edges=True)
        viable = [a for a in anchors if viability.start_viable(a)]
        if not viable:
            diagnostics.append(
                Diagnostic(
                    "RA501",
                    "path cannot match any derivation: no anchor "
                    "relation reaches the end of the pattern over the "
                    "schema graph (the query is statically empty)",
                    subject=str(path),
                )
            )
            continue
        touched |= viability.reachable_relations(viable)

    # Condition satisfiability (RA502) + dead memberships (RA503).
    where = projection.where
    if where is not None:
        if not condition_satisfiable(where):
            diagnostics.append(
                Diagnostic(
                    "RA502",
                    "WHERE condition is unsatisfiable: every OR branch "
                    "holds contradictory constraints, so the query "
                    "returns nothing",
                    subject="WHERE",
                )
            )
        for membership in _memberships(where):
            from repro.relational.schema import public_name

            relation = public_name(membership.relation)
            if relation not in graph.relations:
                diagnostics.append(
                    Diagnostic(
                        "RA504",
                        f"condition references unknown relation "
                        f"{membership.relation!r}",
                        subject=f"${membership.variable} in "
                        f"{membership.relation}",
                    )
                )
            elif touched and relation not in touched:
                diagnostics.append(
                    Diagnostic(
                        "RA503",
                        f"condition tests membership in {relation!r}, "
                        "but no rewriting of the query's paths can "
                        "bind a tuple of that relation",
                        subject=f"${membership.variable} in "
                        f"{membership.relation}",
                    )
                )
    return diagnostics, stats


def analyze_query(cdss: "CDSS", query: str) -> Report:
    """Standalone RA5xx report over one ProQL query (no data needed)."""
    diagnostics, stats = query_pass(cdss, query)
    return make_report(diagnostics, stats)
