"""Safety / range-restriction pass (codes RA101–RA106, RA203).

Checks each rule *as written* — before and after Skolemization — so the
pass catches mistakes :meth:`repro.datalog.rules.Rule.skolemize` would
silently paper over:

* ``skolemize()`` folds *every* unbound head variable into a labeled
  null, so a post-skolemization rule always passes ``check_safe()``.
  The real defect it can hide is a head variable with an **empty
  frontier** (no body variable shared with the head): the resulting
  Skolem term is nullary, i.e. the *same* labeled null for every rule
  firing — almost never what the author meant.  That is RA101.
* An explicit :class:`~repro.datalog.terms.SkolemTerm` whose argument
  is not bound by the body (RA102) would likewise be re-skolemized
  into something well-defined but meaningless.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.datalog.atoms import Atom
from repro.datalog.rules import Rule
from repro.datalog.terms import SkolemTerm, Variable, is_wildcard, variables_of
from repro.relational.instance import Catalog

#: strips the rule-specific part of generated Skolem function names
#: (``f_<rule>_<var>`` -> ``f__<var>``) so RA104 can compare mappings
#: that differ only in their (auto-assigned) names.
_SKOLEM_PREFIX = re.compile(r"\bf_[A-Za-z0-9_]+?_(?=[A-Za-z0-9]+\()")


def _nullary_skolems(atoms: Iterable[Atom]) -> list[SkolemTerm]:
    """Skolem terms with zero arguments, at any nesting depth."""
    found: list[SkolemTerm] = []

    def walk(term: object) -> None:
        if isinstance(term, SkolemTerm):
            if not term.args:
                found.append(term)
            for arg in term.args:
                walk(arg)

    for atom in atoms:
        for term in atom.terms:
            walk(term)
    return found


def _check_unsafe(rule: Rule) -> list[Diagnostic]:
    """RA101: a head position that degenerates to an unparameterized
    labeled null (same null for every firing)."""
    diagnostics: list[Diagnostic] = []
    body_vars = rule.body_variables()
    existential = sorted(
        v.name for v in rule.head_variables() - body_vars
    )
    frontier = rule.head_variables() & body_vars
    if existential and not frontier:
        diagnostics.append(
            Diagnostic(
                "RA101",
                f"rule {rule.name}: head variables {existential} have an "
                "empty frontier (no body variable is shared with the "
                "head), so each would Skolemize to the same labeled "
                "null for every firing; bind them in the body or share "
                "a frontier variable",
                subject=rule.name,
            )
        )
        return diagnostics
    for skolem in _nullary_skolems(rule.skolemize().head):
        diagnostics.append(
            Diagnostic(
                "RA101",
                f"rule {rule.name}: labeled null {skolem.function}() "
                "takes no arguments, so every firing produces the same "
                "null; parameterize it with a body variable",
                subject=rule.name,
            )
        )
    return diagnostics


def _check_skolem_args(rule: Rule) -> list[Diagnostic]:
    """RA102: explicit Skolem terms with arguments the body never
    binds (checked on the rule as given, pre-skolemization)."""
    diagnostics: list[Diagnostic] = []
    body_vars = rule.body_variables()
    for atom in rule.head:
        for term in atom.terms:
            if not isinstance(term, SkolemTerm):
                continue
            unbound = sorted(
                {
                    v.name
                    for arg in term.args
                    for v in variables_of(arg)
                    if v not in body_vars
                }
            )
            if unbound:
                diagnostics.append(
                    Diagnostic(
                        "RA102",
                        f"rule {rule.name}: Skolem term {term} uses "
                        f"argument variables {unbound} that no body atom "
                        "binds",
                        subject=rule.name,
                    )
                )
    return diagnostics


def _check_singletons(rule: Rule) -> list[Diagnostic]:
    """RA103: a body variable with exactly one occurrence in the whole
    rule — legal (it is just an unnamed projection), but in practice
    usually a typo for a join variable.  Wildcards (``_``) are the
    idiomatic way to say "intentionally unused" and are exempt."""
    counts: dict[Variable, int] = {}
    for atom in rule.body + rule.head:
        for term in atom.terms:
            for var in variables_of(term):
                counts[var] = counts.get(var, 0) + 1
    body_vars = rule.body_variables()
    singles = sorted(
        v.name
        for v, n in counts.items()
        if n == 1 and v in body_vars and not is_wildcard(v)
    )
    if not singles:
        return []
    return [
        Diagnostic(
            "RA103",
            f"rule {rule.name}: body variables {singles} occur exactly "
            "once; if unused on purpose, write the wildcard _ instead",
            subject=rule.name,
        )
    ]


def _check_noop(rule: Rule) -> list[Diagnostic]:
    """RA203: every head atom already appears verbatim in the body —
    the mapping derives nothing new."""
    body_texts = {str(atom) for atom in rule.body}
    if rule.head and all(str(atom) in body_texts for atom in rule.head):
        return [
            Diagnostic(
                "RA203",
                f"rule {rule.name}: every head atom appears verbatim in "
                "the body, so the mapping derives nothing new",
                subject=rule.name,
            )
        ]
    return []


def _check_catalog(rule: Rule, catalog: Catalog) -> list[Diagnostic]:
    """RA105/RA106: every atom must name a cataloged relation with the
    right arity."""
    diagnostics: list[Diagnostic] = []
    for atom in rule.body + rule.head:
        if atom.relation not in catalog:
            diagnostics.append(
                Diagnostic(
                    "RA106",
                    f"rule {rule.name}: unknown relation {atom.relation}",
                    subject=rule.name,
                )
            )
            continue
        expected = catalog[atom.relation].arity
        if atom.arity != expected:
            diagnostics.append(
                Diagnostic(
                    "RA105",
                    f"rule {rule.name}: atom {atom} has arity "
                    f"{atom.arity}, but relation {atom.relation} has "
                    f"arity {expected}",
                    subject=rule.name,
                )
            )
    return diagnostics


def _canonical_text(rule: Rule) -> tuple[str, str]:
    """Mapping text with rule-specific Skolem prefixes erased and atom
    order normalized, for duplicate detection."""
    head = ", ".join(
        sorted(_SKOLEM_PREFIX.sub("f__", str(atom)) for atom in rule.head)
    )
    body = ", ".join(sorted(str(atom) for atom in rule.body))
    return head, body


def _check_duplicates(rules: Sequence[Rule]) -> list[Diagnostic]:
    """RA104: two mappings with identical head and body (up to Skolem
    naming and atom order) — the second fires redundant derivations."""
    diagnostics: list[Diagnostic] = []
    seen: dict[tuple[str, str], str] = {}
    for rule in rules:
        key = _canonical_text(rule.skolemize())
        first = seen.get(key)
        if first is None:
            seen[key] = rule.name
        else:
            diagnostics.append(
                Diagnostic(
                    "RA104",
                    f"rule {rule.name} duplicates mapping {first} "
                    "(identical head and body); its derivations are "
                    "redundant",
                    subject=rule.name,
                )
            )
    return diagnostics


def safety_pass(
    rules: Sequence[Rule],
    catalog: Catalog | None = None,
    duplicate_candidates: Sequence[Rule] | None = None,
) -> list[Diagnostic]:
    """Run every safety check over *rules*.

    ``duplicate_candidates`` restricts RA104 to user-authored mappings
    (auto-generated ``L_R`` rules are all pairwise distinct by
    construction and would only add noise).  Defaults to all rules.
    """
    diagnostics: list[Diagnostic] = []
    for rule in rules:
        diagnostics.extend(_check_unsafe(rule))
        diagnostics.extend(_check_skolem_args(rule))
        diagnostics.extend(_check_singletons(rule))
        diagnostics.extend(_check_noop(rule))
        if catalog is not None:
            diagnostics.extend(_check_catalog(rule, catalog))
    candidates = rules if duplicate_candidates is None else duplicate_candidates
    diagnostics.extend(_check_duplicates(candidates))
    return diagnostics
