"""Termination pass: weak acyclicity and topology reachability.

The chase (update exchange) over a set of TGDs terminates on every
instance if the program is **weakly acyclic** (Fagin et al., the
standard data-exchange criterion): build the *position dependency
graph* whose nodes are (relation, position) pairs, with

* a **normal edge** ``(R, i) -> (S, j)`` when some rule copies a body
  variable at position ``i`` of ``R`` into position ``j`` of a head
  atom ``S``, and
* a **special edge** ``(R, i) ~> (S, j)`` when that body variable
  instead feeds a *Skolem argument* at ``(S, j)`` — a fresh labeled
  null parameterized by the value.

The program is weakly acyclic iff no cycle goes through a special
edge.  A special edge inside a strongly connected component means a
labeled null can be fed back into the position that creates it,
minting ever-larger nulls — the exchange may not terminate (RA201).

A second, cheaper graph check: a peer none of whose relations is read
or written by any mapping is disconnected from the exchange entirely
(RA202) — usually a topology wiring mistake, not a latent bug.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.analysis.diagnostics import Diagnostic
from repro.cdss.mapping import SchemaMapping
from repro.cdss.peer import Peer
from repro.datalog.rules import Rule
from repro.datalog.terms import SkolemTerm, Variable, variables_of
from repro.relational.instance import Catalog
from repro.relational.schema import public_name

#: a position node: (relation name, 0-based column index).
Position = tuple[str, int]


def _position_label(position: Position, catalog: Catalog | None) -> str:
    relation, index = position
    if catalog is not None and relation in catalog:
        names = catalog[relation].attribute_names
        if 0 <= index < len(names):
            return f"{relation}.{names[index]}"
    return f"{relation}[{index}]"


def build_position_graph(
    rules: Iterable[Rule],
) -> tuple[
    dict[Position, set[Position]],
    dict[tuple[Position, Position], set[str]],
    set[tuple[Position, Position]],
]:
    """The position dependency graph of the (skolemized) *rules*.

    Returns ``(adjacency, edge_rules, special_edges)`` where
    ``edge_rules`` maps each edge to the names of the rules that
    contribute it.
    """
    adjacency: dict[Position, set[Position]] = {}
    edge_rules: dict[tuple[Position, Position], set[str]] = {}
    special: set[tuple[Position, Position]] = set()

    def add_edge(src: Position, dst: Position, rule: Rule, is_special: bool) -> None:
        adjacency.setdefault(src, set()).add(dst)
        adjacency.setdefault(dst, set())
        edge_rules.setdefault((src, dst), set()).add(rule.name)
        if is_special:
            special.add((src, dst))

    for rule in rules:
        prepared = rule.skolemize()
        occurrences: dict[Variable, set[Position]] = {}
        for atom in prepared.body:
            for index, term in enumerate(atom.terms):
                for var in variables_of(term):
                    occurrences.setdefault(var, set()).add(
                        (atom.relation, index)
                    )
        for atom in prepared.head:
            for index, term in enumerate(atom.terms):
                target = (atom.relation, index)
                if isinstance(term, Variable):
                    for src in occurrences.get(term, ()):
                        add_edge(src, target, prepared, is_special=False)
                elif isinstance(term, SkolemTerm):
                    for var in variables_of(term):
                        for src in occurrences.get(var, ()):
                            add_edge(src, target, prepared, is_special=True)
    return adjacency, edge_rules, special


def _strongly_connected_components(
    adjacency: Mapping[Position, set[Position]],
) -> list[set[Position]]:
    """Tarjan's algorithm, iterative (position graphs of big topologies
    can be thousands of nodes deep)."""
    index_of: dict[Position, int] = {}
    lowlink: dict[Position, int] = {}
    on_stack: set[Position] = set()
    stack: list[Position] = []
    components: list[set[Position]] = []
    counter = 0

    for root in adjacency:
        if root in index_of:
            continue
        work: list[tuple[Position, Iterable[Position]]] = [
            (root, iter(adjacency[root]))
        ]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: set[Position] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def weak_acyclicity_pass(
    rules: Sequence[Rule], catalog: Catalog | None = None
) -> list[Diagnostic]:
    """RA201: one diagnostic per cycle class (SCC) that a special edge
    makes non-weakly-acyclic, naming the offending mappings and the
    labeled-null position."""
    adjacency, edge_rules, special = build_position_graph(rules)
    diagnostics: list[Diagnostic] = []
    for component in _strongly_connected_components(adjacency):
        internal_special = [
            (src, dst)
            for (src, dst) in special
            if src in component and dst in component
        ]
        if not internal_special:
            continue
        # Self-loop-free singleton SCCs can't carry a cycle.
        if len(component) == 1:
            node = next(iter(component))
            if node not in adjacency.get(node, set()):
                continue
        culprits = sorted(
            {
                name
                for edge in internal_special
                for name in edge_rules.get(edge, set())
            }
        )
        cycle_rules = sorted(
            {
                name
                for (src, dst), names in edge_rules.items()
                if src in component and dst in component
                for name in names
            }
        )
        null_positions = sorted(
            {_position_label(dst, catalog) for _, dst in internal_special}
        )
        diagnostics.append(
            Diagnostic(
                "RA201",
                "not weakly acyclic: mapping cycle "
                f"{cycle_rules} feeds labeled nulls created at "
                f"{null_positions} back into their own creation "
                f"(special edges from {culprits}); the exchange may "
                "not terminate",
                subject=",".join(culprits),
            )
        )
    return diagnostics


def topology_pass(
    peers: Mapping[str, Peer],
    mappings: Mapping[str, SchemaMapping],
) -> list[Diagnostic]:
    """RA202: peers no mapping reads or writes (isolated from the
    exchange).  Only meaningful once the system has both multiple
    peers and at least one mapping."""
    if len(peers) < 2 or not mappings:
        return []
    touched: set[str] = set()
    for mapping in mappings.values():
        for atom in mapping.body + mapping.head:
            touched.add(public_name(atom.relation))
    diagnostics: list[Diagnostic] = []
    for peer in peers.values():
        if not any(name in touched for name in peer.relation_names()):
            diagnostics.append(
                Diagnostic(
                    "RA202",
                    f"peer {peer.name}: no mapping reads or writes any "
                    "of its relations; it is isolated from the update "
                    "exchange",
                    subject=peer.name,
                )
            )
    return diagnostics
