"""Trust-policy lint (codes RA301–RA303).

A :class:`~repro.cdss.trust.TrustPolicy` is plain data — nothing stops
a condition from naming a relation that does not exist, or distrusting
a mapping nobody defined.  At annotation time such entries are simply
*ignored* (the condition never matches a leaf; the distrusted name
never matches a derivation), which silently yields the default-trust
verdict — the worst failure mode for a trust policy.  This pass makes
the dangling references loud.
"""

from __future__ import annotations

from typing import Collection

from repro.analysis.diagnostics import Diagnostic
from repro.cdss.trust import TrustPolicy
from repro.relational.instance import Catalog
from repro.relational.schema import is_local_name, public_name


def trust_pass(
    policy: TrustPolicy,
    catalog: Catalog,
    known_mappings: Collection[str],
    label: str = "policy",
) -> list[Diagnostic]:
    """Lint one trust policy against the system's catalog and mapping
    names.  ``known_mappings`` must include the auto-generated local
    rules (``L_R``), which are legal distrust targets (distrusting
    ``L_R`` distrusts every local contribution to ``R``)."""
    diagnostics: list[Diagnostic] = []
    for relation in sorted(policy.leaf_conditions):
        if relation not in catalog:
            diagnostics.append(
                Diagnostic(
                    "RA301",
                    f"trust policy {label}: leaf condition references "
                    f"unknown relation {relation}; it can never match a "
                    "tuple, so the default trust verdict applies "
                    "silently",
                    subject=relation,
                )
            )
        elif (
            is_local_name(relation)
            and public_name(relation) in policy.leaf_conditions
        ):
            diagnostics.append(
                Diagnostic(
                    "RA303",
                    f"trust policy {label}: condition on {relation} is "
                    "shadowed by the condition on "
                    f"{public_name(relation)} (the public name wins for "
                    "every leaf); drop one of the two",
                    subject=relation,
                )
            )
    known = set(known_mappings)
    for mapping in sorted(policy.distrusted_mappings):
        if mapping not in known:
            diagnostics.append(
                Diagnostic(
                    "RA302",
                    f"trust policy {label}: distrusts unknown mapping "
                    f"{mapping}; no derivation carries that name, so "
                    "the distrust has no effect",
                    subject=mapping,
                )
            )
    return diagnostics
