"""Collaborative data sharing system substrate (Sections 2 and 6.1)."""

from repro.cdss.mapping import (
    SchemaMapping,
    parse_mappings,
    provenance_relation_name,
)
from repro.cdss.peer import Peer
from repro.cdss.system import CDSS, local_rule_name
from repro.cdss.trust import TrustPolicy, attribute_condition

__all__ = [
    "CDSS",
    "Peer",
    "SchemaMapping",
    "TrustPolicy",
    "attribute_condition",
    "local_rule_name",
    "parse_mappings",
    "provenance_relation_name",
]
