"""Schema mappings between CDSS peers (Section 2).

A :class:`SchemaMapping` is a named GLAV rule — ``m`` source atoms
joined in the body, ``n`` target atoms in the head — plus the derived
metadata the storage layer needs:

* the schema of its *provenance relation* ``P_m`` (Section 4.1): one
  column per distinct variable occurring in a key position of any
  source or target atom, storing equated/copied attributes only once;
* whether that provenance relation is **superfluous** (a single-source
  projection mapping, like m2/m3/m4 of the running example, whose
  derivations are recoverable from the source relation itself — Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_rule
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, SkolemTerm, Variable
from repro.errors import SchemaError
from repro.relational.instance import Catalog
from repro.relational.schema import RelationSchema


def provenance_relation_name(mapping_name: str) -> str:
    """Name of the provenance relation for a mapping (paper: P^i)."""
    return f"P_{mapping_name}"


@dataclass(frozen=True)
class ProvenanceColumn:
    """One column of a provenance relation: a mapping variable plus the
    (atom index, side, attribute) occurrences it covers."""

    variable: Variable
    type: str

    @property
    def name(self) -> str:
        return self.variable.name


class SchemaMapping:
    """A named mapping rule with provenance-relation metadata."""

    def __init__(self, rule: Rule, catalog: Catalog):
        self.rule = rule.skolemize().check_safe()
        self.catalog = catalog
        if not self.rule.body:
            raise SchemaError(f"mapping {rule.name} must have a non-empty body")
        self._columns = self._compute_columns()

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.rule.name

    @property
    def head(self) -> tuple[Atom, ...]:
        return self.rule.head

    @property
    def body(self) -> tuple[Atom, ...]:
        return self.rule.body

    def __repr__(self) -> str:
        return f"<SchemaMapping {self.rule}>"

    # -- provenance relation schema (Section 4.1) ------------------------------

    def _key_variables(self, atoms: Sequence[Atom]) -> list[tuple[Variable, str]]:
        """(variable, type) for each key-position variable of *atoms*."""
        out: list[tuple[Variable, str]] = []
        for atom in atoms:
            schema = self.catalog[atom.relation]
            for position in schema.key_positions:
                term = atom.terms[position]
                if isinstance(term, Variable):
                    out.append((term, schema.attributes[position].type))
                elif isinstance(term, SkolemTerm):
                    # A labeled null in a key: store the frontier
                    # variables it is built from.
                    for var in term.args:
                        if isinstance(var, Variable):
                            out.append((var, "int"))
                # Constants need no storage: they are implied by the
                # mapping definition (Section 4.1's compaction).
        return out

    def _compute_columns(self) -> tuple[ProvenanceColumn, ...]:
        seen: dict[Variable, str] = {}
        for var, type_ in self._key_variables(self.body) + self._key_variables(
            self.head
        ):
            seen.setdefault(var, type_)
        return tuple(
            ProvenanceColumn(var, type_) for var, type_ in sorted(
                seen.items(), key=lambda item: item[0].name
            )
        )

    @property
    def provenance_columns(self) -> tuple[ProvenanceColumn, ...]:
        return self._columns

    def provenance_schema(self) -> RelationSchema:
        """Relational schema of P_m (one tuple per derivation node)."""
        return RelationSchema.of(
            provenance_relation_name(self.name),
            [(col.name, col.type) for col in self._columns],
        )

    @property
    def is_superfluous(self) -> bool:
        """True iff P_m need not be materialized (Section 4.1).

        A mapping with a single source atom is a projection/selection
        over that source: every provenance column is determined by the
        source tuple, so P_m can be a virtual view over the source
        relation (Fig. 2's P2, P3, P4).
        """
        return len(self.body) == 1

    # -- derivation-node encoding ----------------------------------------------

    def derivation_key(self, binding: dict[Variable, object]) -> tuple[object, ...]:
        """Project a rule-firing binding onto the provenance columns."""
        return tuple(binding[col.variable] for col in self._columns)

    def source_relations(self) -> tuple[str, ...]:
        return self.rule.source_relations()

    def target_relations(self) -> tuple[str, ...]:
        return self.rule.target_relations()

    @classmethod
    def parse(cls, text: str, catalog: Catalog, name: str = "m") -> "SchemaMapping":
        return cls(parse_rule(text, name), catalog)


def parse_mappings(
    texts: Iterable[str], catalog: Catalog
) -> list[SchemaMapping]:
    """Parse one mapping per string, auto-naming unnamed ones m1, m2, ..."""
    mappings = []
    for index, text in enumerate(texts, start=1):
        mappings.append(SchemaMapping.parse(text, catalog, name=f"m{index}"))
    return mappings
