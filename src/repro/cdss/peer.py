"""Peers of a collaborative data sharing system (Section 2).

A peer owns a *public schema* (a set of relations) plus, per relation,
a local-contribution table ``R_l`` holding the data it created locally.
The public relation is the union of local contributions and data
imported along incoming mappings — materialized by update exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import SchemaError
from repro.relational.schema import RelationSchema, local_name


@dataclass
class Peer:
    """A CDSS participant with its public relations."""

    name: str
    relations: list[RelationSchema] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("peer name must be non-empty")
        names = [r.name for r in self.relations]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate relation names at peer {self.name}")

    def add_relation(self, schema: RelationSchema) -> None:
        if any(r.name == schema.name for r in self.relations):
            raise SchemaError(
                f"peer {self.name} already has relation {schema.name}"
            )
        self.relations.append(schema)

    def relation_names(self) -> list[str]:
        return [r.name for r in self.relations]

    def local_relation_names(self) -> list[str]:
        return [local_name(r.name) for r in self.relations]

    @classmethod
    def of(
        cls,
        name: str,
        relations: Iterable[RelationSchema],
    ) -> "Peer":
        return cls(name, list(relations))
