"""The CDSS itself: peers + mappings + update exchange (Section 2).

:class:`CDSS` assembles the full data-exchange substrate the paper's
storage and query layers sit on:

* a catalog of every public relation and its local-contribution table;
* auto-generated local rules ``L_R: R(x̄) :- R_l(x̄)`` (Example 2.1's
  L1–L4), so base data appears in the provenance graph as leaf tuples;
* **update exchange**: (incremental) semi-naive materialization of all
  peers' instances, recording the provenance graph;
* **deletion propagation** (use case Q5): after local deletions,
  re-derive derivability from the remaining leaves and garbage-collect
  tuples (and derivations) that are no longer supported — provenance
  makes this a graph computation instead of a view recomputation.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.cdss.mapping import SchemaMapping
from repro.cdss.peer import Peer
from repro.cdss.trust import TrustPolicy
from repro.datalog.evaluation import EvaluationResult, evaluate
from repro.datalog.parser import parse_rule
from repro.datalog.rules import Program, Rule
from repro.errors import ExchangeError, SchemaError
from repro.exchange.cache import ProgramCache
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import as_tracer
from repro.provenance.annotate import annotate, derivability_partition
from repro.provenance.graph import ProvenanceGraph, TupleNode
from repro.relational.instance import Catalog, Instance, Row
from repro.relational.schema import RelationSchema, is_local_name, local_name
from repro.semirings.registry import get_semiring

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Callable

    from repro.analysis import Report
    from repro.exchange.cache import CompiledExchangeProgram
    from repro.exchange.graph_queries import StoreGraphQueries
    from repro.exchange.sql_executor import ExchangeStore
    from repro.obs.trace import NullTracer, Tracer
    from repro.proql.graph_engine import ProQLResult
    from repro.proql.pruning import UnfoldCache
    from repro.serve import ReaderSession, StoreServer

#: EvaluationResult fields mirrored into the metrics registry after
#: every lifecycle call (prefixed with the call kind: ``exchange.*``,
#: ``deletion.*``, ``graph_query.*``).
_METRIC_FIELDS = (
    "iterations",
    "firings",
    "inserted",
    "plans_compiled",
    "index_hits",
    "dedup_skipped",
    "rows_mirrored",
    "relations_synced",
    "rows_deleted",
    "pm_rows_collected",
    "pm_rows_scanned",
    "index_hit",
    "index_miss",
)


def local_rule_name(relation: str) -> str:
    """Name of the auto-generated local-contribution rule for *relation*."""
    return f"L_{relation}"


class CDSS:
    """A collaborative data sharing system instance."""

    def __init__(
        self,
        peers: Iterable[Peer] = (),
        trace: "Tracer | NullTracer | str | os.PathLike | None" = None,
    ):
        #: lifecycle tracer (:mod:`repro.obs`): ``None`` disables
        #: tracing (the zero-overhead default); pass a
        #: :class:`~repro.obs.trace.Tracer` or a JSONL path to opt in.
        self.tracer = as_tracer(trace)
        #: cumulative counters every lifecycle call reports into — the
        #: single source behind :attr:`exchange_seconds` and friends
        #: (``cdss.metrics.snapshot()`` for the full picture).
        self.metrics = MetricsRegistry()
        self.peers: dict[str, Peer] = {}
        self.mappings: dict[str, SchemaMapping] = {}
        self.catalog = Catalog()
        self._local_rules: dict[str, Rule] = {}
        self.instance = Instance(self.catalog)
        self.graph = ProvenanceGraph()
        self._pending: dict[str, set[Row]] = {}
        self._exchanged_once = False
        #: engine statistics of the most recent :meth:`exchange`.
        self.last_exchange: EvaluationResult | None = None
        #: statistics of the most recent :meth:`propagate_deletions`
        #: (``rows_deleted`` / ``pm_rows_collected`` / ``engine``).
        self.last_deletion: EvaluationResult | None = None
        #: statistics of the most recent graph query (:meth:`lineage`,
        #: :meth:`derivability`, :meth:`trusted`): which engine
        #: answered it, and — for the store engine — ``iterations`` and
        #: ``pm_rows_scanned`` of the relational walk.
        self.last_graph_query: EvaluationResult | None = None
        #: report of the most recent ``exchange(validate=...)``
        #: pre-flight (None until one runs).
        self.last_validation: "Report | None" = None
        #: compiled-program cache shared by both exchange engines;
        #: invalidated whenever the mapping program can change.
        self.plan_cache = ProgramCache()
        #: (invalidation counter, entry) memo over
        #: :meth:`_fetch_program`, so warm graph queries skip both the
        #: program rebuild and its fingerprint hash.
        self._program_memo: "tuple[int, CompiledExchangeProgram] | None" = None
        #: lazily created unfolded-ProQL-program cache (see
        #: :attr:`unfold_cache`); None until the first query needs it.
        self._unfold_cache: "UnfoldCache | None" = None
        #: lazily created SQLite mirror for ``engine="sqlite"``.
        self.exchange_store: "ExchangeStore | None" = None
        self._owns_store = False
        #: True once this system has run a store-resident exchange
        #: (``resident=True``); the mode is sticky for the CDSS's life.
        self._resident = False
        for peer in peers:
            self.add_peer(peer)

    @property
    def exchange_seconds(self) -> float:
        """Cumulative wall-clock seconds spent in update exchange.

        Reads the ``exchange.seconds`` metrics counter — the per-call
        complement is ``last_exchange.wall_seconds``.
        """
        return self.metrics.value("exchange.seconds")

    def _record_result(self, kind: str, result: EvaluationResult) -> None:
        """Mirror one lifecycle result into the metrics registry.

        Every non-zero stat field lands as a ``<kind>.<field>``
        counter, plus ``<kind>.calls`` and ``<kind>.seconds`` — the
        cumulative views (:attr:`exchange_seconds` included) all read
        from here.
        """
        metrics = self.metrics
        metrics.add(f"{kind}.calls")
        metrics.add(f"{kind}.seconds", result.wall_seconds)
        for field in _METRIC_FIELDS:
            value = getattr(result, field)
            if value:
                metrics.add(f"{kind}.{field}", value)

    # -- construction ------------------------------------------------------------

    def add_peer(self, peer: Peer) -> Peer:
        """Register a peer and its relations (plus their
        local-contribution twins and ``L_R`` rules).

        Engine-independent: works identically in store-resident mode —
        the new relations' tables are created in the store by the next
        exchange.  Invalidates the compiled-program cache.
        """
        if peer.name in self.peers:
            raise SchemaError(f"duplicate peer {peer.name}")
        self.peers[peer.name] = peer
        for schema in peer.relations:
            self._register_relation(schema)
        self.plan_cache.invalidate()
        if self._unfold_cache is not None:
            self._unfold_cache.invalidate()
        return peer

    def _register_relation(self, schema: RelationSchema) -> None:
        self.catalog.add(schema)
        self.catalog.add(schema.local_contribution())
        terms = ", ".join(schema.attribute_names)
        rule = parse_rule(
            f"{local_rule_name(schema.name)}: "
            f"{schema.name}({terms}) :- {local_name(schema.name)}({terms})"
        )
        self._local_rules[schema.name] = rule
        # The instance tracks catalog growth lazily; rebuild its view.
        self.instance.catalog = self.catalog

    def add_mapping(self, text_or_mapping: str | SchemaMapping, name: str | None = None) -> SchemaMapping:
        """Register a mapping given as rule text or a SchemaMapping.

        Engine-independent (works identically in store-resident mode);
        the mapping's ``P_m`` provenance relation is created by the
        next exchange.  Invalidates the compiled-program cache.
        """
        if isinstance(text_or_mapping, SchemaMapping):
            mapping = text_or_mapping
        else:
            default = name or f"m{len(self.mappings) + 1}"
            mapping = SchemaMapping.parse(text_or_mapping, self.catalog, default)
        if mapping.name in self.mappings:
            raise SchemaError(f"duplicate mapping name {mapping.name}")
        for atom in mapping.body + mapping.head:
            if atom.relation not in self.catalog:
                raise SchemaError(
                    f"mapping {mapping.name}: unknown relation "
                    f"{atom.relation}"
                )
            if atom.arity != self.catalog[atom.relation].arity:
                raise SchemaError(
                    f"mapping {mapping.name}: atom {atom} does not match the "
                    f"arity of {atom.relation}"
                )
        self.mappings[mapping.name] = mapping
        self.plan_cache.invalidate()
        if self._unfold_cache is not None:
            self._unfold_cache.invalidate()
        return mapping

    def add_mappings(self, texts: Iterable[str]) -> list[SchemaMapping]:
        """Register several mappings (see :meth:`add_mapping`;
        engine-independent, resident mode included)."""
        return [self.add_mapping(text) for text in texts]

    # -- programs ------------------------------------------------------------

    def local_rules(self) -> list[Rule]:
        """The auto-generated local-contribution rules ``L_R``
        (engine-independent metadata; safe in any mode)."""
        return list(self._local_rules.values())

    def program(self) -> Program:
        """Local-contribution rules + all schema mappings
        (engine-independent metadata; safe in any mode)."""
        return Program(self.local_rules() + [m.rule for m in self.mappings.values()])

    def _fetch_program(self) -> "CompiledExchangeProgram":
        """The compiled exchange program, memoized against the plan
        cache's invalidation counter: warm graph queries (the indexed
        sub-millisecond path) must not rebuild and re-hash the rule
        list on every call."""
        memo = self._program_memo
        if memo is not None and memo[0] == self.plan_cache.invalidations:
            return memo[1]
        entry, _ = self.plan_cache.fetch(self.program())
        self._program_memo = (self.plan_cache.invalidations, entry)
        return entry

    # -- data ------------------------------------------------------------

    def insert_local(self, relation: str, row: Sequence[object]) -> bool:
        """Queue a local insertion into *relation*'s contribution table.

        Works in every mode.  In store-resident mode the row lives in
        the Python instance (local contributions are the one thing the
        instance keeps) until the next exchange ships it to the
        authoritative store; until then it is invisible to graph
        queries, exactly as it would be absent from a non-resident
        system's graph.

        Float NaNs in *row* are canonicalized to the system's single
        NaN object (:data:`~repro.storage.encoding.CANONICAL_NAN`), so
        NaN joins identically on both engines — by value, not IEEE
        ``nan != nan`` (see ``docs/architecture.md``).
        """
        # Local import: repro.storage's package init imports CDSS back.
        from repro.storage.encoding import canonical_row

        if relation not in self.catalog:
            raise SchemaError(f"unknown relation {relation}")
        target = relation if is_local_name(relation) else local_name(relation)
        row = canonical_row(row)
        if self.instance.insert(target, row):
            self._pending.setdefault(target, set()).add(row)
            return True
        return False

    def insert_local_many(
        self, relation: str, rows: Iterable[Sequence[object]]
    ) -> int:
        """Queue a batch of local insertions (see :meth:`insert_local`;
        works in every mode, resident included)."""
        return sum(self.insert_local(relation, row) for row in rows)

    def exchange(
        self,
        engine: str = "memory",
        storage: "ExchangeStore | str | os.PathLike | None" = None,
        resident: bool = False,
        validate: str = "off",
    ) -> EvaluationResult:
        """Run (incremental) update exchange.

        The first call materializes everything; later calls seed the
        semi-naive evaluation with only the pending local insertions,
        so unchanged derivations are not re-fired.

        ``engine`` selects the evaluation substrate: ``"memory"`` runs
        compiled join plans over in-memory hash indexes; ``"sqlite"``
        runs whole delta batches as set-oriented SQL statements
        (:mod:`repro.exchange.sql_executor`) — the out-of-core mode.
        ``storage`` (sqlite engine only) names the
        :class:`~repro.exchange.sql_executor.ExchangeStore` to use, or
        a filesystem path for instances larger than memory; by default
        the CDSS owns one in-memory store, reused across incremental
        calls.  Both engines share the compiled-program cache
        (:attr:`plan_cache`): repeated exchanges over an unchanged
        program compile zero plans (``plans_compiled == 0``).

        **Sync protocol** (sqlite engine): the store mirrors the
        instance incrementally.  Each relation carries a change journal
        (:meth:`~repro.relational.instance.Instance.change_mark`), and
        the store keeps a per-relation high-water mark: rows appended
        since the mark ship as batched INSERTs, a relation that saw a
        deletion reloads in full, and an unchanged relation ships
        nothing.  The result reports the traffic as
        ``rows_mirrored``/``relations_synced`` — a repeat exchange over
        unchanged relations reports ``rows_mirrored == 0``.

        **Resident mode** (``resident=True``, sqlite engine with
        on-disk ``storage=`` only): the
        on-disk store is the *authoritative* instance.  Derived tuples
        and provenance derivations are never materialized in Python —
        the instance holds only local contributions, so working sets
        may exceed memory.  The mode is sticky: once a system has
        exchanged residently it must keep doing so, and
        :meth:`instance_size` counts store rows.  The full paper
        lifecycle stays available relationally: :meth:`delete_local`
        marks victims in SQL, :meth:`propagate_deletions` runs the
        DERIVABILITY test as an iterative SQL fixpoint over the stored
        firing history, and the graph queries (:meth:`lineage`,
        :meth:`derivability`, :meth:`trusted`) are answered by
        recursive joins over that same history
        (:mod:`repro.exchange.graph_queries`).  Every successful
        resident run also maintains the store's reachability index
        (under an ``index.maintain`` span): a full run replaces it, an
        incremental run over a *current* index extends it with just the
        new firings, and any other combination rebuilds it from the
        stored history — so the next graph query starts from a current
        index (``docs/graph-index.md``).  A run that dies mid-flight
        leaves the index marked stale; nothing is lost, the next graph
        query or run rebuilds it.

        **Pre-flight** (``validate=``): ``"warn"`` or ``"error"`` runs
        the static analyzer (:func:`repro.analysis.analyze`) over the
        mapping program before any engine work — reporting the result
        in :attr:`last_validation`, warning or raising
        :class:`~repro.errors.AnalysisError` on error diagnostics.
        The default ``"off"`` adds zero overhead.

        **Observability**: with a tracer installed (``CDSS(trace=...)``)
        the call emits an ``exchange`` span with validate/compile/round
        children (see ``docs/observability.md``).  The call's own
        duration lands on ``result.wall_seconds``; the cumulative
        :attr:`exchange_seconds` and the other ``exchange.*`` counters
        accumulate in :attr:`metrics`.
        """
        started = time.perf_counter()
        with self.tracer.span("exchange") as span:
            span.set("engine", engine).set("resident", resident)
            if validate != "off":
                with self.tracer.span("exchange.validate") as vspan:
                    vspan.set("mode", validate)
                    self._validate_program(validate)
            if resident and engine != "sqlite":
                raise ExchangeError(
                    'resident=True requires engine="sqlite"; only the store '
                    "can hold the authoritative instance"
                )
            if self._exchanged_once and resident != self._resident:
                raise ExchangeError(
                    "cannot switch store-resident mode mid-life: the "
                    f"{'store' if self._resident else 'Python instance'} "
                    "already holds the derived tuples; build a fresh CDSS"
                )
            if self._resident and self._exchanged_once:
                self._check_resident_store(storage)
            with self.tracer.span("exchange.compile") as cspan:
                rules = self.program()
                program, cache_hit = self.plan_cache.fetch(rules)
                cspan.set("cache_hit", cache_hit)
            initial_delta: Mapping[str, set[Row]] | None
            if self._exchanged_once:
                initial_delta = dict(self._pending)
            else:
                initial_delta = None
            span.set("incremental", initial_delta is not None)
            if engine == "memory":
                if storage is not None:
                    raise ExchangeError(
                        'storage= applies only to engine="sqlite"; the '
                        "memory engine has no store"
                    )
                result = evaluate(
                    rules,
                    self.instance,
                    graph=self.graph,
                    initial_delta=initial_delta,
                    compiled_program=program,
                    tracer=self.tracer,
                )
            elif engine == "sqlite":
                from repro.exchange.sql_executor import SQLiteExchangeEngine

                store = self._resolve_store(storage)
                if resident and store.path == ":memory:":
                    raise ExchangeError(
                        "store-resident exchange requires an on-disk store "
                        "(pass storage=<path>): an in-memory store would be "
                        "the only copy of the derived instance with neither "
                        "durability nor out-of-core capacity"
                    )
                result = SQLiteExchangeEngine(store, tracer=self.tracer).run(
                    program,
                    self.catalog,
                    self.mappings,
                    self.instance,
                    graph=self.graph,
                    initial_delta=initial_delta,
                    resident=resident,
                )
            else:
                raise ExchangeError(
                    f"unknown exchange engine {engine!r}; "
                    'expected "memory" or "sqlite"'
                )
            result.engine = engine
            result.plan_cache_hit = cache_hit
            result.plans_compiled = 0 if cache_hit else program.plan_count
            span.set("rounds", result.iterations).set("firings", result.firings)
        result.wall_seconds = time.perf_counter() - started
        self._record_result("exchange", result)
        self.last_exchange = result
        self._pending.clear()
        self._exchanged_once = True
        self._resident = resident
        return result

    def _validate_program(self, mode: str) -> None:
        """The ``validate=`` pre-flight: run the static analyzer over
        the mapping program before the exchange fires anything."""
        if mode == "off":
            return
        if mode not in ("warn", "error"):
            raise ExchangeError(
                f"unknown validate mode {mode!r}; "
                'expected "off", "warn", or "error"'
            )
        from repro.analysis import analyze

        report = analyze(self)
        self.last_validation = report
        if mode == "error":
            report.raise_for_errors()
        elif report.diagnostics:
            warnings.warn(
                f"exchange pre-flight:\n{report}", stacklevel=3
            )

    def _check_resident_store(
        self, storage: "ExchangeStore | str | os.PathLike | None"
    ) -> None:
        """A resident system's store holds the only copy of the derived
        tuples, so ``storage=`` must keep resolving to that same store —
        switching (or silently adopting a fresh empty store after the
        pinned one was closed) would abandon the authoritative
        instance.  A *closed on-disk* store may be reopened by naming
        its original path; its file still holds the data."""
        from repro.exchange.sql_executor import ExchangeStore, normalize_store_path

        store = self.exchange_store
        if store is None or store.closed:
            # Reopening the same on-disk file is fine — the data lives
            # in the file, not the connection.  Anything else has no
            # source to recover the derived instance from.
            if (
                store is not None
                and storage is not None
                and not isinstance(storage, ExchangeStore)
                and normalize_store_path(storage) == store.path
                and store.path != ":memory:"
                # The file must still be there — reopening a deleted
                # path would hand back a fresh empty database.
                and os.path.exists(store.path)
            ):
                return
            raise ExchangeError(
                "the resident store is closed and it held the only "
                "copy of the derived instance; reopen it by passing "
                "its original on-disk path as storage=, or build a "
                "fresh CDSS"
            )
        if storage is None:
            return
        same = (
            storage is store
            if isinstance(storage, ExchangeStore)
            else normalize_store_path(storage) == store.path
        )
        if not same:
            raise ExchangeError(
                "store-resident exchange is pinned to its store "
                f"({store.path!r}): it holds the only copy of the "
                "derived instance, so storage= cannot name a different "
                "store; build a fresh CDSS to start over"
            )

    def _resolve_store(
        self, storage: "ExchangeStore | str | os.PathLike | None"
    ) -> "ExchangeStore":
        """The ``storage=`` hook: an explicit store, a path, or the
        CDSS-owned default (kept for incremental reuse).

        Stores this CDSS created itself are closed when a different
        store replaces them; caller-provided stores are never closed
        here (the caller owns their lifecycle).
        """
        from repro.exchange.sql_executor import ExchangeStore, normalize_store_path

        def adopt(store: "ExchangeStore", owned: bool) -> "ExchangeStore":
            if (
                self._owns_store
                and self.exchange_store is not None
                and self.exchange_store is not store
            ):
                self.exchange_store.close()
            self.exchange_store = store
            self._owns_store = owned
            return store

        if isinstance(storage, ExchangeStore):
            return adopt(storage, owned=False)
        if storage is not None:
            path = normalize_store_path(storage)
            if (
                self.exchange_store is not None
                and not self.exchange_store.closed
                and self.exchange_store.path == path
            ):
                return self.exchange_store
            return adopt(ExchangeStore(path), owned=True)
        if self.exchange_store is None or self.exchange_store.closed:
            return adopt(ExchangeStore(), owned=True)
        return self.exchange_store

    # -- deletion propagation (Q5) --------------------------------------------

    def delete_local(self, relation: str, row: Sequence[object]) -> bool:
        """Delete a local contribution (no propagation until
        :meth:`propagate_deletions`).

        In store-resident mode the victim is additionally marked in
        SQL: the row is removed from the authoritative store's
        local-contribution table (with the sync high-water mark
        fast-forwarded when possible, so the deletion does not force a
        full reload of the relation on the next exchange).  When the
        maintained reachability index is current, the store-side
        victim marking also removes the victim's incident firings from
        the index in the same transaction, keeping it *current* — see
        ``docs/graph-index.md``.

        Float NaNs in *row* are canonicalized exactly as in
        :meth:`insert_local`, so a NaN-carrying row deletes the row it
        inserted.
        """
        # Local import: repro.storage's package init imports CDSS back.
        from repro.storage.encoding import canonical_row

        if relation not in self.catalog:
            raise SchemaError(f"unknown relation {relation}")
        target = relation if is_local_name(relation) else local_name(relation)
        row = canonical_row(row)
        if self._resident:
            return self._resident_delete(target, row)
        self._pending.get(target, set()).discard(row)
        return self.instance.delete(target, row)

    def _resident_delete(self, target: str, row: Row) -> bool:
        """Victim marking in the authoritative store: mirror the local
        deletion into the on-disk ``R_l`` table."""
        store = self._open_resident_store("local deletion")
        in_sync = store.relation_in_sync(self.instance, target)
        self._pending.get(target, set()).discard(row)
        present = self.instance.delete(target, row)
        if present and store.has_table(target):
            store.delete_relation_row(self.catalog[target], row)
            if in_sync:
                # Both sides saw the same mutation; without this the
                # deletion epoch would trigger a full reload of the
                # whole relation on the next sync.
                store.fast_forward_mark(self.instance, target)
        return present

    def delete_local_many(
        self, relation: str, rows: Iterable[Sequence[object]]
    ) -> int:
        """Delete a batch of local contributions (see
        :meth:`delete_local`; in store-resident mode each victim is
        marked in SQL, and the call raises if the resident store is
        closed)."""
        return sum(self.delete_local(relation, row) for row in rows)

    def propagate_deletions(self) -> int:
        """Garbage-collect underivable tuples after local deletions.

        Runs the DERIVABILITY test (the paper's Q5: "provenance can
        speed up this test"): a leaf is derivable iff its local tuple
        still exists, and a derived tuple survives only while some
        firing with all-derivable antecedents still produces it.  The
        two engines share this semantics
        (:func:`~repro.provenance.annotate.derivability_partition`)
        over different substrates — the in-memory provenance graph, or,
        in store-resident mode, an iterative SQL fixpoint over the
        ``P_m`` firing history that never materializes anything in
        Python.  Dead ``P_m`` rows are garbage-collected alongside (for
        a non-resident system with a SQLite mirror too), so the stored
        firing history tracks the surviving derivations.

        In resident mode a *current* reachability index survives the
        sweep: the kill transaction prunes exactly the dead firings
        from the index (the fixpoint already computed the live set).
        Only when the dead cone is a large fraction of the index does
        the call fall back to marking it stale (``index.invalidate``
        span) — the next graph query then rebuilds it once.  See
        ``docs/graph-index.md``.

        Returns the number of removed tuples; the full statistics
        (``rows_deleted``, ``pm_rows_collected``, ``iterations``,
        ``engine``) land in :attr:`last_deletion`.  With a tracer
        installed the call emits a ``deletion`` span (annotate children
        on the graph path, fixpoint/kill children on the store path).
        """
        started = time.perf_counter()
        with self.tracer.span("deletion") as span:
            if self._resident:
                result = self._propagate_deletions_resident()
            else:
                result = self._propagate_deletions_graph()
            span.set("engine", result.engine).set(
                "rows_deleted", result.rows_deleted
            )
        result.wall_seconds = time.perf_counter() - started
        self._record_result("deletion", result)
        self.last_deletion = result
        return result.rows_deleted

    def _propagate_deletions_graph(self) -> EvaluationResult:
        """Graph-path propagation (non-resident systems)."""
        with self.tracer.span("deletion.annotate"):
            dead_tuples, dead_derivations = derivability_partition(
                self.graph,
                leaf_assignment=lambda node: self.instance.contains(
                    node.relation, node.values
                ),
            )
        result = EvaluationResult(self.instance, self.graph, engine="memory")
        if not dead_tuples:
            return result
        collected = self._collected_provenance_rows(dead_derivations)
        for node in dead_tuples:
            if self.instance.delete(node.relation, node.values):
                result.rows_deleted += 1
        self.graph.remove_nodes(dead_tuples, dead_derivations)
        result.pm_rows_collected = sum(
            len(rows) for rows in collected.values()
        )
        store = self.exchange_store
        if store is not None and not store.closed:
            # Keep a non-resident mirror's firing history honest too:
            # drop the P_m rows whose every supporting firing died.
            for name, rows in collected.items():
                store.delete_provenance_rows(self.mappings[name], rows)
        return result

    def _collected_provenance_rows(
        self, dead_derivations: "set"
    ) -> dict[str, set[tuple]]:
        """P_m rows to garbage-collect, per mapping: the projections of
        dead derivations not kept alive by a surviving firing (distinct
        firings may share a P_m row when they agree on every key
        variable)."""
        from repro.storage.provrel import binding_of

        dead_by_mapping: dict[str, list] = {}
        for deriv in dead_derivations:
            dead_by_mapping.setdefault(deriv.mapping, []).append(deriv)
        tracked = {
            name: mapping
            for name in dead_by_mapping
            if (mapping := self.mappings.get(name)) is not None
            and not mapping.is_superfluous
            and mapping.provenance_columns
        }
        dead_keys = {
            name: {
                mapping.derivation_key(binding_of(mapping, d))
                for d in dead_by_mapping[name]
            }
            for name, mapping in tracked.items()
        }
        # One pass over the graph retracts every key a surviving firing
        # still supports (distinct firings share a key when they agree
        # on all key variables).
        for deriv in self.graph.derivations:
            mapping = tracked.get(deriv.mapping)
            if mapping is None or deriv in dead_derivations:
                continue
            keys = dead_keys[deriv.mapping]
            if keys:
                keys.discard(
                    mapping.derivation_key(binding_of(mapping, deriv))
                )
        return {name: keys for name, keys in dead_keys.items() if keys}

    def _propagate_deletions_resident(self) -> EvaluationResult:
        """Store-path propagation: the SQL derivability fixpoint."""
        from repro.exchange.sql_executor import SQLiteExchangeEngine

        store = self._open_resident_store("deletion propagation")
        program = self._fetch_program()
        return SQLiteExchangeEngine(
            store, tracer=self.tracer
        ).propagate_deletions(
            program, self.catalog, self.mappings, self.instance
        )

    def _open_resident_store(self, operation: str) -> "ExchangeStore":
        """The pinned resident store, required open: it holds the only
        copy of the derived instance this operation must consult."""
        store = self.exchange_store
        if store is None or store.closed:
            raise ExchangeError(
                f"{operation} needs the resident store (it holds the "
                "only copy of the derived relations), but the store is "
                "closed; reopen it via exchange(storage=<path>, "
                "resident=True)"
            )
        return store

    # -- queries over the graph ---------------------------------------------------

    def _store_graph_queries(self, operation: str) -> "StoreGraphQueries":
        """The relational query engine over the pinned resident store
        (every graph query dispatches here under ``resident=True``)."""
        from repro.exchange.graph_queries import StoreGraphQueries

        store = self._open_resident_store(operation)
        program = self._fetch_program()
        return StoreGraphQueries(
            store, program, self.catalog, self.mappings, tracer=self.tracer
        )

    def _run_graph_query(
        self,
        query: str,
        operation: str,
        resident_call: "Callable[[StoreGraphQueries], tuple[object, EvaluationResult]]",
        memory_call: "Callable[[], object]",
    ) -> object:
        """One graph query, either substrate — the shared tail of
        :meth:`derivability`/:meth:`lineage`/:meth:`trusted`.

        Dispatches to the resident store engine or the in-memory graph,
        wraps the call in a ``graph_query`` span, stamps the per-call
        duration on the stats, records them into :attr:`metrics`, and
        publishes :attr:`last_graph_query`.
        """
        started = time.perf_counter()
        with self.tracer.span("graph_query") as span:
            span.set("query", query)
            if self._resident:
                value, stats = resident_call(
                    self._store_graph_queries(operation)
                )
            else:
                stats = EvaluationResult(
                    self.instance, self.graph, engine="memory"
                )
                # Published before the call so a raising query (e.g.
                # lineage of an underived node) still reports its
                # engine, as the pre-helper code did.
                self.last_graph_query = stats
                value = memory_call()
            span.set("engine", stats.engine)
        stats.wall_seconds = time.perf_counter() - started
        self._record_result("graph_query", stats)
        self.last_graph_query = stats
        return value

    def derivability(self) -> dict[TupleNode, bool]:
        """Derivability annotation of every tuple (Q5).

        **Resident mode**: answered relationally — the stored firing
        history is annotated by the same SQL liveness fixpoint that
        drives :meth:`propagate_deletions`, with every stored tuple's
        verdict read off its membership in the live set; no
        :class:`ProvenanceGraph` is materialized.  When the store's
        maintained reachability index is current the fixpoint runs over
        the compact index tables and repeat calls answer from a cached
        verdict (``index_hit == 1`` on the stats); a stale index is
        rebuilt once at query time (``index_miss == 1``), after which
        it stays current until the next mutation.  Non-resident systems
        annotate the in-memory graph.  Both engines answer over the
        state of the last exchange/propagation.
        """
        return self._run_graph_query(  # type: ignore[return-value]
            "derivability",
            "derivability annotation",
            lambda queries: queries.derivability(),
            lambda: annotate(self.graph, get_semiring("DERIVABILITY")),
        )

    def lineage(self, node: TupleNode) -> frozenset:
        """Set of local base tuples *node* derives from (Q6).

        **Resident mode**: answered relationally — an iterative
        backward transitive-closure walk over the stored firing
        history's join columns
        (:meth:`repro.exchange.graph_queries.StoreGraphQueries.lineage`);
        no :class:`ProvenanceGraph` is materialized.  With a current
        maintained reachability index the walk collapses to an indexed
        ancestor-closure probe — an interval containment test when the
        DAG is tree-shaped, one recursive CTE otherwise — reported as
        ``index_hit == 1`` on the stats; a stale index is rebuilt once
        at query time first (``index_miss == 1``).  Non-resident
        systems annotate *node*'s ancestor closure of the in-memory
        graph in the LINEAGE semiring.  Both raise :class:`KeyError`
        for a node the last exchange never derived.
        """
        from repro.provenance.annotate import lineage_of

        return self._run_graph_query(  # type: ignore[return-value]
            "lineage",
            "lineage",
            lambda queries: queries.lineage(node),
            lambda: lineage_of(self.graph, node),
        )

    def _validate_trust_policy(self, policy: TrustPolicy) -> None:
        """Reference check shared with the static analyzer's trust
        lint: a policy naming an unknown relation or mapping would be
        silently ignored at annotation time — fail loudly instead, with
        the same :class:`SchemaError` message shape as
        :meth:`insert_local`/:meth:`add_mapping`."""
        for relation in policy.leaf_conditions:
            if relation not in self.catalog:
                raise SchemaError(
                    f"trust policy: unknown relation {relation}"
                )
        known = set(self.mappings) | {r.name for r in self.local_rules()}
        for mapping in policy.distrusted_mappings:
            if mapping not in known:
                raise SchemaError(f"trust policy: unknown mapping {mapping}")

    def trusted(self, policy: TrustPolicy) -> dict[TupleNode, bool]:
        """Trust annotation of every tuple under *policy* (Q7).

        **Resident mode**: answered relationally — the policy is
        pushed into the liveness fixpoint semiring-style (leaf
        conditions select which local rows seed the live set,
        distrusted mappings are excluded from the firing joins), so
        trust never materializes a :class:`ProvenanceGraph` either.
        With a current maintained reachability index the fixpoint runs
        over the index tables, and repeat calls under the same policy
        answer from a cached verdict (``index_hit == 1`` on the
        stats); a stale index is rebuilt once at query time
        (``index_miss == 1``).  Non-resident systems annotate the
        in-memory graph in the TRUST semiring.
        """
        if isinstance(policy, TrustPolicy):
            self._validate_trust_policy(policy)
        return self._run_graph_query(  # type: ignore[return-value]
            "trusted",
            "trust annotation",
            lambda queries: queries.trusted(policy),
            lambda: annotate(
                self.graph,
                get_semiring("TRUST"),
                leaf_assignment=policy.leaf_assignment(),
                mapping_functions=policy.mapping_functions(),
            ),
        )

    # -- concurrent serving ------------------------------------------------

    def _serving_path(self, operation: str) -> str:
        """The on-disk path read-only serving connections attach to."""
        if not self._resident:
            raise ExchangeError(
                f"{operation} needs a store-resident system "
                "(exchange(resident=True) on an on-disk path); a "
                "mirrored store may be rebuilt mid-query and is not "
                "safe to serve from"
            )
        store = self.exchange_store
        if store is None or store.path == ":memory:":
            raise ExchangeError(
                f"{operation} needs an on-disk resident store; an "
                "in-memory store is private to the writer's connection"
            )
        return store.path

    def serving_session(self) -> "ReaderSession":
        """A read-only query session over the resident store's file.

        The session opens its own ``mode=ro`` WAL connection to the
        store path and answers :meth:`lineage` / :meth:`derivability` /
        :meth:`trusted` from the persisted reachability index at the
        epoch its snapshot observes — concurrently with this system's
        writer connection, which keeps exchanging and propagating
        deletions undisturbed (see docs/serving.md).  The session
        shares this system's :attr:`metrics` registry and tracer; for
        many concurrent clients use :meth:`serve`, which hands out one
        session per worker instead.  Requires a completed
        ``exchange(resident=True)`` on an on-disk path; close the
        session when done (it is a context manager).
        """
        from repro.serve import ReaderSession

        path = self._serving_path("serving_session")
        return ReaderSession(
            path, self.catalog, metrics=self.metrics, tracer=self.tracer
        )

    def serve(self, readers: int = 4) -> "StoreServer":
        """A started :class:`~repro.serve.StoreServer` over this store.

        Builds a :class:`~repro.serve.ReaderPool` of *readers*
        read-only sessions against the resident store's path and
        returns the server handle, already started: submit queries
        from any thread and receive futures; the single writer (this
        system) keeps running exchanges concurrently.  The caller owns
        the handle — close it (or use it as a context manager) to
        drain in-flight queries and release the connections.  Pool
        counters land in this system's :attr:`metrics` registry
        (approximate under concurrency; see ``serve.*`` in
        docs/serving.md).
        """
        from repro.serve import ReaderPool, StoreServer

        path = self._serving_path("serve")
        pool = ReaderPool(
            path, self.catalog, size=readers, metrics=self.metrics
        )
        server = StoreServer(pool)
        server.start()
        return server

    # -- ProQL ------------------------------------------------------------

    @property
    def unfold_cache(self) -> "UnfoldCache":
        """Memoized unfolded ProQL programs (created on first use).

        Shared by every :class:`~repro.proql.sql_engine.SQLEngine` over
        this system, keyed per (query fingerprint, order-normalized
        mapping fingerprint, data-bearing relations) the same way
        :attr:`plan_cache` keys compiled exchange plans; invalidated
        whenever the mapping program can change.  Hit/miss totals also
        land in :attr:`metrics` as ``unfold.cache_hits`` /
        ``unfold.cache_misses``.
        """
        cache = self._unfold_cache
        if cache is None:
            from repro.proql.pruning import UnfoldCache

            cache = self._unfold_cache = UnfoldCache()
        return cache

    def query(
        self,
        query: str,
        engine: str = "memory",
        storage: "object | None" = None,
        validate: str = "off",
    ) -> "ProQLResult":
        """Run one ProQL query over the exchanged instance.

        ``engine="memory"`` evaluates against the in-memory provenance
        graph; ``engine="sqlite"`` runs the SQL pipeline (unfold +
        joins) over *storage* — an already-loaded
        :class:`~repro.storage.sqlite_backend.SQLiteStorage` — or over
        a temporary one mirrored from this system when omitted.

        ``validate`` pre-flights the query through the static analyzer
        (:func:`repro.analysis.analyze_query`): ``"warn"`` reports
        RA5xx findings as a warning, ``"error"`` raises
        :class:`~repro.errors.AnalysisError` on errors (e.g. RA502
        unsatisfiable condition); the report lands in
        :attr:`last_validation` either way.  Store-resident systems
        must query through the resident graph-query API instead.
        """
        if validate != "off":
            if validate not in ("warn", "error"):
                raise ExchangeError(
                    f"unknown validate mode {validate!r}; "
                    'expected "off", "warn", or "error"'
                )
            from repro.analysis import analyze_query

            report = analyze_query(self, query)
            self.last_validation = report
            if validate == "error":
                report.raise_for_errors()
            elif report.diagnostics:
                warnings.warn(
                    f"query pre-flight:\n{report}", stacklevel=2
                )
        if self._resident:
            raise ExchangeError(
                "ProQL queries need the materialized instance/graph, "
                "which a store-resident system does not keep in "
                "Python; use the resident graph-query API "
                "(lineage/derivability/trusted) instead"
            )
        if engine == "memory":
            from repro.proql.graph_engine import GraphEngine

            return GraphEngine(self.graph, self.catalog).run(query)
        if engine != "sqlite":
            raise ExchangeError(
                f"unknown query engine {engine!r}; "
                'expected "memory" or "sqlite"'
            )
        from repro.proql.sql_engine import SQLEngine
        from repro.storage.sqlite_backend import SQLiteStorage

        owned = storage is None
        if owned:
            storage = SQLiteStorage(self)
            storage.load()
        assert isinstance(storage, SQLiteStorage)
        try:
            return SQLEngine(storage).run(query)
        finally:
            if owned:
                storage.close()

    # -- stats ------------------------------------------------------------

    def instance_size(self, public_only: bool = True) -> int:
        """Total number of materialized tuples.

        In store-resident mode derived relations live only in the
        exchange store, so their rows are counted there — from the
        store's maintained count cache, never a COUNT(*) rescan —
        while local contributions still count from the Python
        instance, which may run ahead of the store by the pending
        batch.  With the resident store closed there is nothing
        truthful to report (the Python side is deliberately empty), so
        the call fails loudly rather than answering ~0.
        """
        store = self.exchange_store
        if self._resident and (store is None or store.closed):
            raise ExchangeError(
                "instance_size needs the resident store (it holds the "
                "only copy of the derived relations), but the store is "
                "closed; reopen it via exchange(storage=<path>, "
                "resident=True)"
            )
        count_from_store = self._resident
        total = 0
        for relation in self.catalog.names():
            if public_only and is_local_name(relation):
                continue
            if (
                count_from_store
                and not is_local_name(relation)
                and store.has_table(relation)
            ):
                total += store.cached_count(relation)
            else:
                total += self.instance.size(relation)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        try:
            size: object = self.instance_size()
        except ExchangeError:
            # Resident store closed: a diagnostic aid must not raise.
            size = "?"
        return (
            f"<CDSS peers={len(self.peers)} mappings={len(self.mappings)} "
            f"tuples={size}>"
        )
