"""Trust policies for CDSS peers (use case Q7, Section 2.1).

A :class:`TrustPolicy` collects the two kinds of assignments the
TRUST semiring needs:

* **leaf conditions** — per-relation predicates deciding whether a
  local/base tuple is trusted (the paper: "we must check each EDB
  tuple to see whether it is trusted");
* **distrusted mappings** — mappings associated with the distrust
  function Dm (false on all inputs) instead of the neutral Nm.

The policy compiles into the ``leaf_assignment`` and
``mapping_functions`` arguments of :func:`repro.provenance.annotate`,
and is also what ProQL's ``ASSIGNING EACH`` clauses build internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.provenance.graph import TupleNode
from repro.relational.schema import RelationSchema, public_name
from repro.semirings.base import MappingFunction
from repro.semirings.standard import TrustSemiring

#: Predicate over the attribute values of one tuple.
TupleCondition = Callable[[tuple], bool]


@dataclass
class TrustPolicy:
    """Declarative trust configuration for one evaluating peer."""

    #: relation name -> predicate on tuple values; applies to leaves of
    #: that relation's local-contribution table.
    leaf_conditions: dict[str, TupleCondition] = field(default_factory=dict)
    #: mappings whose derivations are never trusted.
    distrusted_mappings: set[str] = field(default_factory=set)
    #: trust verdict for leaves of relations without a condition.
    default_trust: bool = True

    def trust_relation(self, relation: str) -> None:
        self.leaf_conditions[relation] = lambda values: True

    def distrust_relation(self, relation: str) -> None:
        self.leaf_conditions[relation] = lambda values: False

    def trust_if(self, relation: str, condition: TupleCondition) -> None:
        self.leaf_conditions[relation] = condition

    def distrust_mapping(self, mapping: str) -> None:
        self.distrusted_mappings.add(mapping)

    # -- compilation ---------------------------------------------------------

    def condition_for(self, relation: str) -> TupleCondition | None:
        """The leaf condition governing *relation*'s tuples: the public
        name's condition wins, then the relation's own, else ``None``
        (meaning :attr:`default_trust` applies).  The single lookup
        rule both query engines share — the graph engine through
        :meth:`leaf_assignment`, the relational engine when choosing
        which stored rows seed its trust fixpoint."""
        return self.leaf_conditions.get(
            public_name(relation)
        ) or self.leaf_conditions.get(relation)

    def leaf_assignment(self) -> Callable[[TupleNode], bool]:
        """Leaf-node trust assignment for the TRUST semiring."""

        def assign(node: TupleNode) -> bool:
            condition = self.condition_for(node.relation)
            if condition is None:
                return self.default_trust
            return bool(condition(node.values))

        return assign

    def mapping_functions(self) -> Mapping[str, MappingFunction]:
        semiring = TrustSemiring()
        distrust = semiring.distrust_function()
        return {name: distrust for name in self.distrusted_mappings}


def attribute_condition(
    schema: RelationSchema,
    attribute: str,
    predicate: Callable[[object], bool],
) -> TupleCondition:
    """Build a tuple condition testing one named attribute.

    >>> schema = RelationSchema.of("A", ["id", "h"], key=["id"])
    >>> cond = attribute_condition(schema, "h", lambda h: h < 6)
    >>> cond((1, 5)), cond((1, 7))
    (True, False)
    """
    position = schema.position_of(attribute)
    return lambda values: predicate(values[position])
