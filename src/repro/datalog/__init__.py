"""Datalog-with-mappings substrate: terms, atoms, rules, parsing,
homomorphisms, and provenance-recording evaluation."""

from repro.datalog.atoms import Atom
from repro.datalog.evaluation import (
    EvaluationResult,
    evaluate,
    evaluate_naive,
)
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.planner import (
    CompiledRule,
    RulePlan,
    compile_program,
    compile_rule,
)
from repro.datalog.rules import Program, Rule
from repro.datalog.terms import (
    Constant,
    SkolemTerm,
    SkolemValue,
    Term,
    Variable,
    fresh_wildcard,
)
from repro.datalog.unification import (
    Homomorphism,
    find_homomorphism,
    find_homomorphisms,
)

__all__ = [
    "Atom",
    "CompiledRule",
    "Constant",
    "EvaluationResult",
    "Homomorphism",
    "Program",
    "Rule",
    "RulePlan",
    "compile_program",
    "compile_rule",
    "SkolemTerm",
    "SkolemValue",
    "Term",
    "Variable",
    "evaluate",
    "evaluate_naive",
    "find_homomorphism",
    "find_homomorphisms",
    "fresh_wildcard",
    "parse_program",
    "parse_rule",
]
