"""Atoms: relation symbols applied to terms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.datalog.terms import (
    Constant,
    SkolemTerm,
    Term,
    Variable,
    ground,
    substitute,
    variables_of,
)


@dataclass(frozen=True)
class Atom:
    """``relation(t1, ..., tn)``."""

    relation: str
    terms: tuple[Term, ...]

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> Iterator[Variable]:
        for term in self.terms:
            yield from variables_of(term)

    def has_skolems(self) -> bool:
        return any(isinstance(t, SkolemTerm) for t in self.terms)

    def ground(self, subst: Mapping[Variable, object]) -> tuple[object, ...]:
        """Instantiate into a concrete tuple of values."""
        return tuple(ground(t, subst) for t in self.terms)

    def substitute(self, subst: Mapping[Variable, Term]) -> "Atom":
        """Apply a term-to-term substitution (rule unfolding).

        Returns ``self`` when no variable of the atom is bound, so
        whole-rule substitutions with narrow domains (spec merging
        during unfolding) skip the rebuild for untouched atoms.
        """
        if not any(v in subst for v in self.variables()):
            return self
        return Atom(self.relation, tuple(substitute(t, subst) for t in self.terms))

    def rename(self, suffix: str) -> "Atom":
        """Rename every variable by appending *suffix* (for freshening)."""
        mapping = {v: Variable(v.name + suffix) for v in self.variables()}
        return self.substitute(mapping)

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({inner})"


def match_tuple(
    atom: Atom,
    row: Sequence[object],
    binding: dict[Variable, object],
) -> dict[Variable, object] | None:
    """Try to extend *binding* so that *atom* matches *row*.

    Returns the extended binding, or None on mismatch.  Skolem terms
    match :class:`SkolemValue` rows positionally by unifying argument
    values; in practice mapping bodies contain only constants and
    variables, and Skolems appear in heads.
    """
    if len(row) != atom.arity:
        return None
    out = dict(binding)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            # Identity first: the canonical NaN must match itself, the
            # same semantics tuple comparison gives it in hash joins.
            if term.value is not value and term.value != value:
                return None
        elif isinstance(term, Variable):
            if term in out:
                bound = out[term]
                if bound is not value and bound != value:
                    return None
            else:
                out[term] = value
        else:  # SkolemTerm in a body: match structurally
            from repro.datalog.terms import SkolemValue

            if not isinstance(value, SkolemValue) or value.function != term.function:
                return None
            if len(value.args) != len(term.args):
                return None
            sub = match_tuple(
                Atom("__skolem__", term.args), value.args, out
            )
            if sub is None:
                return None
            out = sub
    return out
