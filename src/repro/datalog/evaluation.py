"""Provenance-recording fixpoint evaluation of mapping programs.

Executing the set of extended-Datalog rules is an instance of *data
exchange* (Section 2): it materializes a canonical universal solution
and, alongside it, the provenance graph relating every derived tuple
to the rule firings that produced it.

Two strategies are provided:

* :func:`evaluate_naive` — textbook bottom-up iteration, used as a
  correctness oracle in tests;
* :func:`evaluate` — semi-naive evaluation with incremental hash
  indexes, the engine used by the CDSS substrate and benchmarks.

Both record one :class:`~repro.provenance.graph.DerivationNode` per
distinct rule firing (set semantics deduplicates repeat firings), so
the resulting graph contains **all** derivations of every tuple, not
just a witness each — required for how-provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.datalog.atoms import Atom, match_tuple
from repro.datalog.rules import Program, Rule
from repro.datalog.terms import Constant, Variable
from repro.errors import EvaluationError
from repro.provenance.graph import DerivationNode, ProvenanceGraph, TupleNode
from repro.relational.instance import Instance, Row


class _IndexPool:
    """Incremental hash indexes over an evolving instance.

    An index for ``(relation, positions)`` maps the projection of each
    row onto *positions* to the list of matching rows.  Indexes are
    built lazily on first use and kept current through :meth:`add`.
    """

    def __init__(self) -> None:
        self._indexes: dict[tuple[str, tuple[int, ...]], dict[tuple, list[Row]]] = {}
        self._rows: dict[str, list[Row]] = {}

    def add(self, relation: str, row: Row) -> None:
        self._rows.setdefault(relation, []).append(row)
        for (rel, positions), index in self._indexes.items():
            if rel == relation:
                key = tuple(row[p] for p in positions)
                index.setdefault(key, []).append(row)

    def lookup(
        self, relation: str, positions: tuple[int, ...], key: tuple
    ) -> Sequence[Row]:
        if not positions:
            return self._rows.get(relation, ())
        index = self._indexes.get((relation, positions))
        if index is None:
            index = {}
            for row in self._rows.get(relation, ()):
                row_key = tuple(row[p] for p in positions)
                index.setdefault(row_key, []).append(row)
            self._indexes[(relation, positions)] = index
        return index.get(key, ())


@dataclass
class EvaluationResult:
    """Outcome of a fixpoint run."""

    instance: Instance
    graph: ProvenanceGraph
    iterations: int = 0
    firings: int = 0
    inserted: int = 0

    def derived_size(self) -> int:
        return self.instance.size()


def _join_bindings(
    body: Sequence[Atom],
    start_index: int,
    start_rows: Iterable[Row],
    pool: _IndexPool,
) -> Iterator[tuple[dict[Variable, object], tuple[Row, ...]]]:
    """Enumerate bindings of *body* where atom *start_index* ranges over
    *start_rows* and every other atom over the indexed instance.

    Yields (binding, matched rows in body order).
    """
    order = [start_index] + [i for i in range(len(body)) if i != start_index]

    def extend(
        step: int, binding: dict[Variable, object], rows: dict[int, Row]
    ) -> Iterator[tuple[dict[Variable, object], tuple[Row, ...]]]:
        if step == len(order):
            yield binding, tuple(rows[i] for i in range(len(body)))
            return
        atom_index = order[step]
        atom = body[atom_index]
        if step == 0:
            candidates: Iterable[Row] = start_rows
        else:
            bound_positions = []
            key_parts = []
            for pos, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    bound_positions.append(pos)
                    key_parts.append(term.value)
                elif isinstance(term, Variable) and term in binding:
                    bound_positions.append(pos)
                    key_parts.append(binding[term])
            candidates = pool.lookup(
                atom.relation, tuple(bound_positions), tuple(key_parts)
            )
        for row in candidates:
            extended = match_tuple(atom, row, binding)
            if extended is not None:
                rows[atom_index] = row
                yield from extend(step + 1, extended, rows)
                del rows[atom_index]

    yield from extend(0, {}, {})


def _fire(
    rule: Rule,
    binding: dict[Variable, object],
    body_rows: tuple[Row, ...],
    instance: Instance,
    graph: ProvenanceGraph | None,
) -> list[tuple[str, Row]]:
    """Apply one rule firing; returns newly inserted (relation, row) pairs."""
    targets = []
    new: list[tuple[str, Row]] = []
    for head_atom in rule.head:
        row = head_atom.ground(binding)
        if instance.insert(head_atom.relation, row):
            new.append((head_atom.relation, row))
        targets.append(TupleNode(head_atom.relation, row))
    if graph is not None:
        sources = tuple(
            TupleNode(atom.relation, row) for atom, row in zip(rule.body, body_rows)
        )
        graph.add_derivation(DerivationNode(rule.name, sources, tuple(targets)))
    return new


def _prepare(program: Program) -> list[Rule]:
    rules = [rule.skolemize().check_safe() for rule in program]
    for rule in rules:
        if not rule.body:
            raise EvaluationError(
                f"rule {rule.name} has an empty body; insert facts via the "
                "instance, not body-less rules"
            )
    return rules


def evaluate(
    program: Program,
    instance: Instance,
    graph: ProvenanceGraph | None = None,
    record_provenance: bool = True,
    max_iterations: int | None = None,
    initial_delta: Mapping[str, Iterable[Row]] | None = None,
) -> EvaluationResult:
    """Semi-naive fixpoint evaluation with provenance recording.

    Mutates *instance* in place (adding derived tuples) and returns an
    :class:`EvaluationResult` whose graph holds every derivation.
    EDB tuples do not get nodes of their own here; local-contribution
    rules (``R(x̄) :- R_l(x̄)``) make base facts appear as leaf tuples
    of the ``R_l`` relations, matching Figure 1's ``+`` nodes.

    ``initial_delta`` seeds the first semi-naive round; passing only the
    *newly inserted* tuples yields incremental update exchange (every
    new firing must use at least one new tuple).  The default seeds
    with the whole instance (full exchange from scratch).
    """
    rules = _prepare(program)
    if graph is None:
        graph = ProvenanceGraph() if record_provenance else None

    pool = _IndexPool()
    for relation in instance.relations():
        for row in instance[relation]:
            pool.add(relation, row)

    # Iteration 0: every rule over the seed delta (default: full EDB).
    if initial_delta is None:
        delta: dict[str, set[Row]] = {
            rel: set(instance[rel]) for rel in instance.non_empty_relations()
        }
    else:
        delta = {
            rel: set(map(tuple, rows)) for rel, rows in initial_delta.items() if rows
        }
    result = EvaluationResult(instance, graph or ProvenanceGraph())
    iteration = 0
    while delta:
        iteration += 1
        if max_iterations is not None and iteration > max_iterations:
            raise EvaluationError(
                f"fixpoint did not converge within {max_iterations} iterations"
            )
        new_delta: dict[str, set[Row]] = {}
        for rule in rules:
            for index, atom in enumerate(rule.body):
                rows = delta.get(atom.relation)
                if not rows:
                    continue
                for binding, body_rows in _join_bindings(rule.body, index, rows, pool):
                    result.firings += 1
                    for relation, row in _fire(
                        rule, binding, body_rows, instance, graph
                    ):
                        new_delta.setdefault(relation, set()).add(row)
                        pool.add(relation, row)
                        result.inserted += 1
        delta = new_delta
    result.iterations = iteration
    return result


def evaluate_naive(
    program: Program,
    instance: Instance,
    record_provenance: bool = True,
    max_iterations: int | None = None,
) -> EvaluationResult:
    """Naive bottom-up evaluation (correctness oracle for tests).

    Re-derives everything each round until neither the instance nor the
    provenance graph changes.
    """
    rules = _prepare(program)
    graph = ProvenanceGraph() if record_provenance else None
    result = EvaluationResult(instance, graph or ProvenanceGraph())
    iteration = 0
    while True:
        iteration += 1
        if max_iterations is not None and iteration > max_iterations:
            raise EvaluationError(
                f"fixpoint did not converge within {max_iterations} iterations"
            )
        pool = _IndexPool()
        for relation in instance.relations():
            for row in instance[relation]:
                pool.add(relation, row)
        changed = False
        before = graph.size() if graph is not None else (0, 0)
        for rule in rules:
            first = rule.body[0]
            rows = list(instance[first.relation])
            for binding, body_rows in _join_bindings(rule.body, 0, rows, pool):
                result.firings += 1
                if _fire(rule, binding, body_rows, instance, graph):
                    changed = True
                    result.inserted += 1
        if graph is not None and graph.size() != before:
            changed = True
        if not changed:
            break
    result.iterations = iteration
    return result
