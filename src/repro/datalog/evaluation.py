"""Provenance-recording fixpoint evaluation of mapping programs.

Executing the set of extended-Datalog rules is an instance of *data
exchange* (Section 2): it materializes a canonical universal solution
and, alongside it, the provenance graph relating every derived tuple
to the rule firings that produced it.

Two strategies are provided:

* :func:`evaluate_naive` — textbook bottom-up iteration that re-plans
  every join per row; kept as the correctness oracle in tests;
* :func:`evaluate` — semi-naive evaluation over **compiled join
  plans**.  Each rule is compiled once by
  :mod:`repro.datalog.planner` into one plan per delta atom: atoms
  ordered greedily by bound-variable coverage, index positions and
  key/bind slots precomputed, heads compiled into row extractors.  The
  inner loop therefore does no per-row introspection of
  ``Constant``/``Variable`` terms — it is tuple indexing over a slot
  array.  Rules whose bodies the planner cannot model (Skolem terms in
  a body) fall back to the generic matcher.

Semi-naive rounds are exact: the index pool is frozen for the duration
of a round (insertions join in the *next* round, via the delta), and a
firing whose body contains several delta rows is enumerated only from
its first delta atom.  Each distinct rule firing is thus counted once
and recorded as one :class:`~repro.provenance.graph.DerivationNode`,
so the resulting graph contains **all** derivations of every tuple,
not just a witness each — required for how-provenance.

The incremental hash indexes of :class:`_IndexPool` are bucketed per
relation: inserting a row only maintains that relation's indexes, and
the indexes a plan will probe are registered up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

from repro.datalog.atoms import Atom, match_tuple
from repro.datalog.planner import (
    CompiledRule,
    RulePlan,
    compile_program,
    ground_extractors,
)
from repro.datalog.rules import Program, Rule
from repro.datalog.terms import Constant, Variable
from repro.errors import EvaluationError
from repro.obs.trace import NULL_TRACER
from repro.provenance.graph import DerivationNode, ProvenanceGraph, TupleNode
from repro.relational.instance import Instance, Row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exchange.cache import CompiledExchangeProgram
    from repro.obs.trace import NullTracer, Tracer

_EMPTY_DELTA: frozenset[Row] = frozenset()


class _IndexPool:
    """Incremental hash indexes over an evolving instance.

    An index for ``(relation, positions)`` maps the projection of each
    row onto *positions* to the list of matching rows.  Indexes are
    bucketed by relation, so :meth:`add` touches only the inserted
    relation's indexes.  They are built on first use — either eagerly
    through :meth:`register` (plans declare their probes up front) or
    lazily on :meth:`lookup` — and kept current through :meth:`add`.
    """

    def __init__(self) -> None:
        self._by_relation: dict[
            str, dict[tuple[int, ...], dict[tuple, list[Row]]]
        ] = {}
        self._rows: dict[str, list[Row]] = {}
        self.hits = 0

    def add(self, relation: str, row: Row) -> None:
        self._rows.setdefault(relation, []).append(row)
        indexes = self._by_relation.get(relation)
        if indexes:
            for positions, index in indexes.items():
                key = tuple(row[p] for p in positions)
                index.setdefault(key, []).append(row)

    def register(self, relation: str, positions: tuple[int, ...]) -> None:
        """Ensure the ``(relation, positions)`` index exists."""
        if positions:
            self._build(relation, positions)

    def _build(
        self, relation: str, positions: tuple[int, ...]
    ) -> dict[tuple, list[Row]]:
        indexes = self._by_relation.setdefault(relation, {})
        index = indexes.get(positions)
        if index is None:
            index = {}
            for row in self._rows.get(relation, ()):
                key = tuple(row[p] for p in positions)
                index.setdefault(key, []).append(row)
            indexes[positions] = index
        return index

    def count(self, relation: str) -> int:
        """Number of rows stored for *relation*."""
        return len(self._rows.get(relation, ()))

    def lookup(
        self, relation: str, positions: tuple[int, ...], key: tuple
    ) -> Sequence[Row]:
        if not positions:
            return self._rows.get(relation, ())
        index = self._by_relation.get(relation, {}).get(positions)
        if index is None:
            index = self._build(relation, positions)
        self.hits += 1
        return index.get(key, ())


@dataclass
class EvaluationResult:
    """Outcome of a fixpoint run."""

    instance: Instance
    graph: ProvenanceGraph
    iterations: int = 0
    firings: int = 0
    inserted: int = 0
    #: join plans compiled for this run (one per rule body atom).
    plans_compiled: int = 0
    #: hash-index probes answered by the pool.
    index_hits: int = 0
    #: guard rejections: candidate rows discarded at guarded join
    #: steps because they are still in the current delta (enumerating
    #: them would re-seed a firing at a later body atom).  A partial
    #: diagnostic, not a count of avoided duplicate firings: rejected
    #: rows might have failed later join steps anyway, and plans
    #: skipped wholesale (every stored row of a guarded relation in
    #: the delta — e.g. all of round 1 of a full exchange) contribute
    #: nothing.
    dedup_skipped: int = 0
    #: which engine produced this result ("memory" | "sqlite").
    engine: str = "memory"
    #: True when the plans came from a :class:`ProgramCache` hit (the
    #: run compiled nothing; ``plans_compiled`` is then 0).
    plan_cache_hit: bool = False
    #: rows shipped into the SQLite mirror by this run's incremental
    #: instance sync (0 for the memory engine, and 0 again on a repeat
    #: exchange over unchanged relations).
    rows_mirrored: int = 0
    #: relations the sync had to touch (changed since the store's
    #: high-water mark).
    relations_synced: int = 0
    #: tuples removed by deletion propagation (Q5) — the unsupported
    #: rows killed after the DERIVABILITY test; 0 for plain exchanges.
    rows_deleted: int = 0
    #: P_m firing-history rows garbage-collected alongside a deletion
    #: propagation (store rows for the sqlite engine, their graph-side
    #: projections for the memory engine — comparable counts).
    pm_rows_collected: int = 0
    #: firing-history rows a relational graph query (or the deletion
    #: propagation's liveness fixpoint) enumerated while traversing the
    #: stored ``P_m`` join columns; 0 on the memory engine, whose graph
    #: walks count nothing relational.
    pm_rows_scanned: int = 0
    #: 1 when a resident graph query was answered from the *maintained*
    #: reachability index (``docs/graph-index.md``) without a rebuild;
    #: 0 for the memory engine and for unindexed store queries.
    #: Distinct from :attr:`index_hits` (the memory engine's hash-index
    #: probe counter).
    index_hit: int = 0
    #: 1 when a resident graph query found the reachability index
    #: stale/absent and had to rebuild it from the store before
    #: answering (the ``index.rebuild`` span brackets that work).
    index_miss: int = 0
    #: wall-clock duration of the CDSS call that produced this result
    #: (set by :class:`~repro.cdss.system.CDSS`, not by the engines) —
    #: the per-call complement of the cumulative metrics counters.
    wall_seconds: float = 0.0

    def derived_size(self) -> int:
        return self.instance.size()


def _join_bindings(
    body: Sequence[Atom],
    start_index: int,
    start_rows: Iterable[Row],
    pool: _IndexPool,
) -> Iterator[tuple[dict[Variable, object], tuple[Row, ...]]]:
    """Enumerate bindings of *body* where atom *start_index* ranges over
    *start_rows* and every other atom over the indexed instance.

    Generic (term-introspecting) matcher — the naive oracle and the
    fallback for bodies the planner cannot compile.

    Yields (binding, matched rows in body order).
    """
    order = [start_index] + [i for i in range(len(body)) if i != start_index]

    def extend(
        step: int, binding: dict[Variable, object], rows: dict[int, Row]
    ) -> Iterator[tuple[dict[Variable, object], tuple[Row, ...]]]:
        if step == len(order):
            yield binding, tuple(rows[i] for i in range(len(body)))
            return
        atom_index = order[step]
        atom = body[atom_index]
        if step == 0:
            candidates: Iterable[Row] = start_rows
        else:
            bound_positions = []
            key_parts = []
            for pos, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    bound_positions.append(pos)
                    key_parts.append(term.value)
                elif isinstance(term, Variable) and term in binding:
                    bound_positions.append(pos)
                    key_parts.append(binding[term])
            candidates = pool.lookup(
                atom.relation, tuple(bound_positions), tuple(key_parts)
            )
        for row in candidates:
            extended = match_tuple(atom, row, binding)
            if extended is not None:
                rows[atom_index] = row
                yield from extend(step + 1, extended, rows)
                del rows[atom_index]

    yield from extend(0, {}, {})


def _run_plan(
    crule: CompiledRule,
    plan: RulePlan,
    seed_rows: Iterable[Row],
    delta: Mapping[str, frozenset[Row] | set[Row]],
    pool: _IndexPool,
    result: EvaluationResult,
) -> Iterator[tuple[list[object], tuple[Row, ...]]]:
    """Execute one compiled plan; yields (slots, matched body rows).

    The yielded slot list is reused between firings — consumers must
    extract head rows before advancing the iterator (the engine fires
    each match immediately).
    """
    slots: list[object] = [None] * crule.num_slots
    rows: list[Row] = [None] * len(crule.body_relations)  # type: ignore[list-item]
    steps = plan.steps
    nsteps = len(steps)
    lookup = pool.lookup

    def descend(depth: int) -> Iterator[tuple[list[object], tuple[Row, ...]]]:
        if depth == nsteps:
            yield slots, tuple(rows)
            return
        step = steps[depth]
        key = tuple(
            slots[payload] if kind else payload
            for kind, payload in step.key_parts
        )
        candidates = lookup(step.relation, step.positions, key)
        if not candidates:
            return
        guard_rows = delta.get(step.relation) if step.guard else None
        binds = step.binds
        checks = step.checks
        body_index = step.body_index
        next_depth = depth + 1
        for row in candidates:
            if guard_rows is not None and row in guard_rows:
                result.dedup_skipped += 1
                continue
            for pos, slot in binds:
                slots[slot] = row[pos]
            if checks:
                ok = True
                for pos, slot in checks:
                    bound = slots[slot]
                    # Identity first: the canonical NaN must match
                    # itself, as it does inside tuple comparisons.
                    if row[pos] is not bound and row[pos] != bound:
                        ok = False
                        break
                if not ok:
                    continue
            rows[body_index] = row
            yield from descend(next_depth)

    seed = plan.seed
    const_checks = seed.const_checks
    binds = seed.binds
    checks = seed.checks
    body_index = seed.body_index
    arity = seed.arity
    for row in seed_rows:
        if len(row) != arity:
            continue
        if const_checks:
            ok = True
            for pos, value in const_checks:
                if row[pos] != value:
                    ok = False
                    break
            if not ok:
                continue
        for pos, slot in binds:
            slots[slot] = row[pos]
        if checks:
            ok = True
            for pos, slot in checks:
                bound = slots[slot]
                # Identity first, for the canonical NaN (see above).
                if row[pos] is not bound and row[pos] != bound:
                    ok = False
                    break
            if not ok:
                continue
        rows[body_index] = row
        yield from descend(0)


def _fire_compiled(
    crule: CompiledRule,
    slots: list[object],
    body_rows: tuple[Row, ...],
    instance: Instance,
    graph: ProvenanceGraph | None,
) -> list[tuple[str, Row]]:
    """Apply one compiled firing; returns newly inserted (relation, row)."""
    targets = []
    new: list[tuple[str, Row]] = []
    for relation, extractors in crule.head:
        row = ground_extractors(extractors, slots)
        if instance.insert(relation, row):
            new.append((relation, row))
        targets.append(TupleNode(relation, row))
    if graph is not None:
        sources = tuple(
            TupleNode(relation, row)
            for relation, row in zip(crule.body_relations, body_rows)
        )
        graph.add_derivation(
            DerivationNode(crule.rule.name, sources, tuple(targets))
        )
    return new


def _fire(
    rule: Rule,
    binding: dict[Variable, object],
    body_rows: tuple[Row, ...],
    instance: Instance,
    graph: ProvenanceGraph | None,
) -> list[tuple[str, Row]]:
    """Apply one rule firing; returns newly inserted (relation, row) pairs."""
    targets = []
    new: list[tuple[str, Row]] = []
    for head_atom in rule.head:
        row = head_atom.ground(binding)
        if instance.insert(head_atom.relation, row):
            new.append((head_atom.relation, row))
        targets.append(TupleNode(head_atom.relation, row))
    if graph is not None:
        sources = tuple(
            TupleNode(atom.relation, row) for atom, row in zip(rule.body, body_rows)
        )
        graph.add_derivation(DerivationNode(rule.name, sources, tuple(targets)))
    return new


def _prepare(program: Program) -> list[Rule]:
    rules = [rule.skolemize().check_safe() for rule in program]
    for rule in rules:
        if not rule.body:
            raise EvaluationError(
                f"rule {rule.name} has an empty body; insert facts via the "
                "instance, not body-less rules"
            )
    return rules


def evaluate(
    program: Program,
    instance: Instance,
    graph: ProvenanceGraph | None = None,
    record_provenance: bool = True,
    max_iterations: int | None = None,
    initial_delta: Mapping[str, Iterable[Row]] | None = None,
    compiled_program: "CompiledExchangeProgram | None" = None,
    tracer: "Tracer | NullTracer" = NULL_TRACER,
) -> EvaluationResult:
    """Semi-naive fixpoint evaluation over compiled join plans.

    Mutates *instance* in place (adding derived tuples) and returns an
    :class:`EvaluationResult` whose graph holds every derivation.
    EDB tuples do not get nodes of their own here; local-contribution
    rules (``R(x̄) :- R_l(x̄)``) make base facts appear as leaf tuples
    of the ``R_l`` relations, matching Figure 1's ``+`` nodes.

    ``initial_delta`` seeds the first semi-naive round; passing only the
    *newly inserted* tuples yields incremental update exchange (every
    new firing must use at least one new tuple).  The default seeds
    with the whole instance (full exchange from scratch).

    Within a round the index pool is a frozen snapshot: rows inserted
    during the round become next round's delta, and a firing is only
    enumerated from the first of its body atoms whose row is in the
    current delta — each distinct firing counts exactly once.

    ``compiled_program`` supplies an already-prepared-and-compiled
    program (a :class:`~repro.exchange.cache.CompiledExchangeProgram`,
    typically from a :class:`~repro.exchange.cache.ProgramCache`); the
    run then compiles nothing and reports ``plans_compiled == 0``.

    ``tracer`` emits one ``exchange.round`` span per semi-naive round
    with one ``exchange.rule`` child per executed plan.  The default
    :data:`~repro.obs.trace.NULL_TRACER` allocates no span objects —
    the hot loops pay only a no-op context-manager entry per plan per
    round, never anything per row.
    """
    if compiled_program is not None:
        rules = list(compiled_program.rules)
        compiled = list(compiled_program.compiled)
    else:
        rules = _prepare(program)
        compiled = compile_program(rules)
    if graph is None:
        graph = ProvenanceGraph() if record_provenance else None

    pool = _IndexPool()
    for relation in instance.relations():
        for row in instance[relation]:
            pool.add(relation, row)

    result = EvaluationResult(instance, graph or ProvenanceGraph())
    if compiled_program is None:
        for crule in compiled:
            result.plans_compiled += len(crule.plans)
    if initial_delta is None:
        # Full exchange probes essentially every plan index; build them
        # up front in one pass.  Incremental runs leave registration to
        # the lazy build in lookup() so a small delta only pays for the
        # indexes it actually probes.
        for crule in compiled:
            for relation, positions in crule.index_requirements():
                pool.register(relation, positions)

    # Iteration 0: every rule over the seed delta (default: full EDB).
    if initial_delta is None:
        delta: dict[str, set[Row]] = {
            rel: set(instance[rel]) for rel in instance.non_empty_relations()
        }
    else:
        delta = {
            rel: set(map(tuple, rows)) for rel, rows in initial_delta.items() if rows
        }
        # The once-per-firing guard assumes delta rows are joinable
        # through the indexes; a delta row missing from the instance
        # would silently lose firings, so reject it up front.
        for rel, rows in delta.items():
            missing = [row for row in rows if not instance.contains(rel, row)]
            if missing:
                raise EvaluationError(
                    f"initial_delta rows not in the instance for {rel}: "
                    f"{missing[:3]}; insert them before evaluating"
                )
    def blocked(guarded_relations) -> bool:
        # Delta rows are always a subset of the pool, so when every
        # stored row of a guarded relation is in the delta the guard
        # would reject every candidate — the plan cannot fire.  (In
        # round 1 of a full exchange this holds for every relation.)
        for rel in guarded_relations:
            rows = delta.get(rel)
            if rows and len(rows) == pool.count(rel):
                return True
        return False

    iteration = 0
    while delta:
        iteration += 1
        if max_iterations is not None and iteration > max_iterations:
            raise EvaluationError(
                f"fixpoint did not converge within {max_iterations} iterations"
            )
        new_delta: dict[str, set[Row]] = {}
        with tracer.span("exchange.round") as round_span:
            for crule in compiled:
                if crule.plans:
                    for plan in crule.plans:
                        seed_rows = delta.get(plan.seed.relation)
                        if not seed_rows or blocked(plan.guarded_relations):
                            continue
                        with tracer.span("exchange.rule") as rule_span:
                            fired_before = result.firings
                            for slots, body_rows in _run_plan(
                                crule, plan, seed_rows, delta, pool, result
                            ):
                                result.firings += 1
                                for relation, row in _fire_compiled(
                                    crule, slots, body_rows, instance, graph
                                ):
                                    new_delta.setdefault(relation, set()).add(row)
                                    result.inserted += 1
                            rule_span.set("rule", crule.rule.name).set(
                                "firings", result.firings - fired_before
                            )
                else:
                    rule = crule.rule
                    for index, atom in enumerate(rule.body):
                        seed_rows = delta.get(atom.relation)
                        if not seed_rows or blocked(
                            {a.relation for a in rule.body[:index]}
                        ):
                            continue
                        with tracer.span("exchange.rule") as rule_span:
                            fired_before = result.firings
                            for binding, body_rows in _join_bindings(
                                rule.body, index, seed_rows, pool
                            ):
                                if any(
                                    body_rows[j]
                                    in delta.get(
                                        rule.body[j].relation, _EMPTY_DELTA
                                    )
                                    for j in range(index)
                                ):
                                    result.dedup_skipped += 1
                                    continue
                                result.firings += 1
                                for relation, row in _fire(
                                    rule, binding, body_rows, instance, graph
                                ):
                                    new_delta.setdefault(relation, set()).add(row)
                                    result.inserted += 1
                            rule_span.set("rule", rule.name).set(
                                "firings", result.firings - fired_before
                            )
            # Publish this round's insertions to the indexes only now, so
            # every round joins against a consistent snapshot.
            for relation, rows in new_delta.items():
                for row in rows:
                    pool.add(relation, row)
            round_span.set("round", iteration).set(
                "inserted", sum(len(rows) for rows in new_delta.values())
            )
        delta = new_delta
    result.iterations = iteration
    result.index_hits = pool.hits
    return result


def evaluate_naive(
    program: Program,
    instance: Instance,
    record_provenance: bool = True,
    max_iterations: int | None = None,
) -> EvaluationResult:
    """Naive bottom-up evaluation (correctness oracle for tests).

    Re-derives everything each round until neither the instance nor the
    provenance graph changes.
    """
    rules = _prepare(program)
    graph = ProvenanceGraph() if record_provenance else None
    result = EvaluationResult(instance, graph or ProvenanceGraph())
    iteration = 0
    while True:
        iteration += 1
        if max_iterations is not None and iteration > max_iterations:
            raise EvaluationError(
                f"fixpoint did not converge within {max_iterations} iterations"
            )
        pool = _IndexPool()
        for relation in instance.relations():
            for row in instance[relation]:
                pool.add(relation, row)
        changed = False
        before = graph.size() if graph is not None else (0, 0)
        for rule in rules:
            first = rule.body[0]
            rows = list(instance[first.relation])
            for binding, body_rows in _join_bindings(rule.body, 0, rows, pool):
                result.firings += 1
                if _fire(rule, binding, body_rows, instance, graph):
                    changed = True
                    result.inserted += 1
        if graph is not None and graph.size() != before:
            changed = True
        if not changed:
            break
    result.iterations = iteration
    return result
