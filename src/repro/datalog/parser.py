"""Parser for textual Datalog mappings.

Accepts the paper's notation (Example 2.1), e.g.::

    m1: C(i, n) :- A(i, s, _), N(i, n, false)
    m5: O(n, h, true) :- A(i, _, h), C(i, n)
    L1: A(i, s, l) :- A_l(i, s, l)

Conventions:

* a rule is ``name: head-atoms :- body-atoms`` (the ``name:`` prefix and
  body are optional — a body-less rule is a fact template);
* identifiers in term position are **variables**;
* ``_`` is an anonymous wildcard (each occurrence a fresh variable);
* numbers, single-quoted strings, ``true``/``false`` are constants;
* ``f(x, y)`` in term position is a Skolem term;
* ``%`` starts a comment; rules are separated by newlines.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.datalog.atoms import Atom
from repro.datalog.rules import Program, Rule
from repro.datalog.terms import Constant, SkolemTerm, Term, fresh_wildcard
from repro.datalog.terms import Variable
from repro.errors import DatalogParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>:-)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<punct>[():,._])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise DatalogParseError(f"unexpected character {text[pos]!r} at {pos}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind or "", match.group()))
    return tokens


class _RuleParser:
    """Recursive-descent parser over one rule's token list."""

    def __init__(self, tokens: list[tuple[str, str]], text: str):
        self.tokens = tokens
        self.text = text
        self.pos = 0

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise DatalogParseError(f"unexpected end of rule: {self.text!r}")
        self.pos += 1
        return token

    def expect(self, value: str) -> None:
        kind, tok = self.next()
        if tok != value:
            raise DatalogParseError(
                f"expected {value!r}, found {tok!r} in rule {self.text!r}"
            )

    def at(self, value: str) -> bool:
        token = self.peek()
        return token is not None and token[1] == value

    # -- grammar -------------------------------------------------------------

    def parse_rule(self, default_name: str) -> Rule:
        name = default_name
        # Optional "name:" prefix — a name token followed by ':' that is
        # not immediately part of an atom (atoms are name '(' ...).
        if (
            self.pos + 1 < len(self.tokens)
            and self.tokens[self.pos][0] == "name"
            and self.tokens[self.pos + 1][1] == ":"
        ):
            name = self.next()[1]
            self.next()  # ':'
        head = self.parse_atoms()
        body: tuple[Atom, ...] = ()
        if self.at(":-"):
            self.next()
            body = self.parse_atoms()
        if self.peek() is not None:
            raise DatalogParseError(
                f"trailing tokens after rule {self.text!r}: {self.peek()!r}"
            )
        return Rule(name, head, body)

    def parse_atoms(self) -> tuple[Atom, ...]:
        atoms = [self.parse_atom()]
        while self.at(","):
            self.next()
            atoms.append(self.parse_atom())
        return tuple(atoms)

    def parse_atom(self) -> Atom:
        kind, relation = self.next()
        if kind != "name":
            raise DatalogParseError(
                f"expected relation name, found {relation!r} in {self.text!r}"
            )
        self.expect("(")
        terms: list[Term] = []
        if not self.at(")"):
            terms.append(self.parse_term())
            while self.at(","):
                self.next()
                terms.append(self.parse_term())
        self.expect(")")
        return Atom(relation, tuple(terms))

    def parse_term(self) -> Term:
        kind, tok = self.next()
        if kind == "number":
            return Constant(float(tok) if "." in tok else int(tok))
        if kind == "string":
            return Constant(tok[1:-1].replace("\\'", "'"))
        if tok == "_":
            return fresh_wildcard()
        if kind == "name":
            if tok == "true":
                return Constant(True)
            if tok == "false":
                return Constant(False)
            if tok == "null":
                return Constant(None)
            if self.at("("):  # Skolem term
                self.next()
                args: list[Term] = []
                if not self.at(")"):
                    args.append(self.parse_term())
                    while self.at(","):
                        self.next()
                        args.append(self.parse_term())
                self.expect(")")
                return SkolemTerm(tok, tuple(args))
            return Variable(tok)
        raise DatalogParseError(f"unexpected token {tok!r} in {self.text!r}")


def _rule_lines(text: str) -> Iterator[str]:
    for raw in text.splitlines():
        line = raw.split("%", 1)[0].strip()
        if line:
            yield line


def parse_rule(text: str, name: str = "rule") -> Rule:
    """Parse a single rule.  *name* is used if the text has no prefix.

    >>> rule = parse_rule("m1: C(i, n) :- A(i, s, _), N(i, n, false)")
    >>> rule.name, len(rule.head), len(rule.body)
    ('m1', 1, 2)
    """
    return _RuleParser(_tokenize(text), text).parse_rule(name)


def parse_program(text: str) -> Program:
    """Parse one rule per non-empty line into a :class:`Program`.

    Unnamed rules are auto-named ``r1, r2, ...`` by position.
    """
    rules = []
    for index, line in enumerate(_rule_lines(text), start=1):
        rules.append(parse_rule(line, name=f"r{index}"))
    return Program(rules)
