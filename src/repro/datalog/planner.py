"""Join-plan compilation for semi-naive rule evaluation.

Semi-naive evaluation fires each rule once per *delta atom* — the body
atom whose rows range over the tuples discovered in the previous round.
The naive engine re-discovers the join strategy for every candidate row
(introspecting :class:`~repro.datalog.terms.Constant` /
:class:`~repro.datalog.terms.Variable` terms, rebuilding key tuples,
copying binding dicts).  This module lifts all of that to *compile
time*:

* each rule is compiled once into a :class:`CompiledRule` holding one
  :class:`RulePlan` per body atom (the plan used when that atom is the
  delta seed);
* within a plan, the remaining atoms are ordered greedily by **bound
  coverage** — at every step the atom with the most already-bound
  positions (constants or variables bound by earlier steps) is joined
  next, a standard selectivity heuristic for conjunctive queries;
* every step pre-computes its index positions, key extractors, and
  variable-binding slots, so executing a step is tuple indexing and
  list writes — no per-row term introspection;
* rule heads compile into extractor programs that build output rows
  (including Skolem values for labeled nulls) straight from the slot
  array.

Variables are mapped to integer *slots*; an executing plan carries one
mutable slot list instead of per-row binding dicts.  Bodies containing
Skolem terms (never produced by :meth:`Rule.skolemize`, but legal in
hand-built rules) are not compiled — :data:`CompiledRule.plans` is then
empty and the engine falls back to the generic matcher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.datalog.atoms import Atom
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, SkolemTerm, SkolemValue, Variable

#: Extractor / key-part kinds.  ``K_SLOT`` is truthy and ``K_CONST``
#: falsy on purpose: hot loops test ``if kind`` instead of comparing.
K_CONST = 0
K_SLOT = 1
K_SKOLEM = 2


@dataclass(frozen=True)
class SeedStep:
    """Matching the delta (seed) atom against a delta row.

    No variables are bound yet, so constants are checked directly,
    first variable occurrences bind slots, and repeated occurrences
    within the atom are equality-checked against the freshly bound
    slot.
    """

    relation: str
    body_index: int
    arity: int
    #: ``row[pos] == value`` prerequisites (constant terms).
    const_checks: tuple[tuple[int, object], ...]
    #: ``slots[slot] = row[pos]`` writes (first variable occurrences).
    binds: tuple[tuple[int, int], ...]
    #: ``row[pos] == slots[slot]`` checks (repeated variables).
    checks: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class JoinStep:
    """One indexed join against the evolving instance.

    ``positions``/``key_parts`` describe the index probe: the key is
    built from constants and slots bound by earlier steps.  Unbound
    positions split into ``binds`` (first occurrence) and ``checks``
    (repeated occurrence inside this atom).  ``guard`` marks atoms that
    precede the seed atom in body order: rows still in the current
    delta are skipped there, so a firing is enumerated exactly once —
    seeded at the *first* delta row of its body.
    """

    relation: str
    body_index: int
    positions: tuple[int, ...]
    #: ``(kind, payload)`` per position: constant value or slot index.
    key_parts: tuple[tuple[int, object], ...]
    binds: tuple[tuple[int, int], ...]
    checks: tuple[tuple[int, int], ...]
    guard: bool


@dataclass(frozen=True)
class RulePlan:
    """Execution plan for one rule with one body atom as delta seed."""

    seed: SeedStep
    steps: tuple[JoinStep, ...]
    #: relations of guarded steps; when every stored row of one of
    #: them is in the current delta the plan cannot fire at all (the
    #: guard would reject every candidate) and is skipped wholesale.
    guarded_relations: tuple[str, ...]


@dataclass(frozen=True)
class CompiledRule:
    """A rule plus everything precomputed for executing it."""

    rule: Rule
    num_slots: int
    body_relations: tuple[str, ...]
    #: per head atom: ``(relation, extractors)``.
    head: tuple[tuple[str, tuple[tuple[int, object], ...]], ...]
    #: one plan per body atom; empty when the body is not compilable.
    plans: tuple[RulePlan, ...]

    def index_requirements(self) -> set[tuple[str, tuple[int, ...]]]:
        """Every ``(relation, positions)`` index the plans will probe."""
        return {
            (step.relation, step.positions)
            for plan in self.plans
            for step in plan.steps
            if step.positions
        }


class _Uncompilable(Exception):
    """Body contains a term the fast path does not model."""


def _compile_term(term, slot_of: dict[Variable, int]) -> tuple[int, object]:
    if isinstance(term, Constant):
        return (K_CONST, term.value)
    if isinstance(term, Variable):
        return (K_SLOT, slot_of[term])
    if isinstance(term, SkolemTerm):
        args = tuple(_compile_term(a, slot_of) for a in term.args)
        return (K_SKOLEM, (term.function, args))
    raise TypeError(f"not a term: {term!r}")


def ground_extractors(
    extractors: tuple[tuple[int, object], ...], slots: Sequence[object]
) -> tuple[object, ...]:
    """Build an output row from compiled extractors and a slot array."""
    return tuple(
        payload
        if kind == K_CONST
        else slots[payload]
        if kind == K_SLOT
        else SkolemValue(payload[0], ground_extractors(payload[1], slots))
        for kind, payload in extractors
    )


def _assign_slots(rule: Rule) -> dict[Variable, int]:
    """Slot per variable, in order of first appearance in the body.

    Descends into Skolem-term arguments so that a safe rule's head
    always compiles, even when its body needs the generic fallback.
    """
    slot_of: dict[Variable, int] = {}
    for atom in rule.body:
        for var in atom.variables():
            if var not in slot_of:
                slot_of[var] = len(slot_of)
    return slot_of


def _bound_coverage(atom: Atom, bound: set[Variable]) -> tuple[int, int]:
    """(number of bound positions, number of distinct unbound variables)."""
    bound_positions = 0
    free: set[Variable] = set()
    for term in atom.terms:
        if isinstance(term, Constant):
            bound_positions += 1
        elif isinstance(term, Variable):
            if term in bound:
                bound_positions += 1
            else:
                free.add(term)
    return bound_positions, len(free)


def order_atoms(body: Sequence[Atom], seed_index: int) -> list[int]:
    """Greedy join order: seed first, then max bound coverage.

    Ties prefer fewer fresh variables (more selective), then original
    body order — deterministic so plans are stable across runs.
    """
    bound = {v for v in body[seed_index].variables()}
    remaining = [i for i in range(len(body)) if i != seed_index]
    order = [seed_index]
    while remaining:
        best = min(
            remaining,
            key=lambda i: (
                -_bound_coverage(body[i], bound)[0],
                _bound_coverage(body[i], bound)[1],
                i,
            ),
        )
        remaining.remove(best)
        order.append(best)
        bound.update(body[best].variables())
    return order


def _compile_seed(
    atom: Atom, body_index: int, slot_of: dict[Variable, int]
) -> tuple[SeedStep, set[Variable]]:
    const_checks: list[tuple[int, object]] = []
    binds: list[tuple[int, int]] = []
    checks: list[tuple[int, int]] = []
    seen: set[Variable] = set()
    for pos, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            const_checks.append((pos, term.value))
        elif isinstance(term, Variable):
            if term in seen:
                checks.append((pos, slot_of[term]))
            else:
                seen.add(term)
                binds.append((pos, slot_of[term]))
        else:
            raise _Uncompilable(f"Skolem term in body atom {atom}")
    return (
        SeedStep(
            atom.relation,
            body_index,
            atom.arity,
            tuple(const_checks),
            tuple(binds),
            tuple(checks),
        ),
        seen,
    )


def _compile_join(
    atom: Atom,
    body_index: int,
    slot_of: dict[Variable, int],
    bound: set[Variable],
    guard: bool,
) -> tuple[JoinStep, set[Variable]]:
    positions: list[int] = []
    key_parts: list[tuple[int, object]] = []
    binds: list[tuple[int, int]] = []
    checks: list[tuple[int, int]] = []
    fresh: set[Variable] = set()
    for pos, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            positions.append(pos)
            key_parts.append((K_CONST, term.value))
        elif isinstance(term, Variable):
            if term in bound:
                positions.append(pos)
                key_parts.append((K_SLOT, slot_of[term]))
            elif term in fresh:
                checks.append((pos, slot_of[term]))
            else:
                fresh.add(term)
                binds.append((pos, slot_of[term]))
        else:
            raise _Uncompilable(f"Skolem term in body atom {atom}")
    return (
        JoinStep(
            atom.relation,
            body_index,
            tuple(positions),
            tuple(key_parts),
            tuple(binds),
            tuple(checks),
            guard,
        ),
        fresh,
    )


def compile_rule(rule: Rule) -> CompiledRule:
    """Compile *rule* into per-delta-atom join plans.

    The rule is skolemized and safety-checked first (idempotent for
    already-prepared rules), so head variables always resolve to body
    slots.  Returns a :class:`CompiledRule` with one plan per body
    atom, or with no plans when the body cannot be compiled (the
    engine then uses its generic matcher for this rule).
    """
    return _compile_prepared(rule.skolemize().check_safe())


def _compile_prepared(rule: Rule) -> CompiledRule:
    slot_of = _assign_slots(rule)
    head = tuple(
        (atom.relation, tuple(_compile_term(t, slot_of) for t in atom.terms))
        for atom in rule.head
    )
    body = rule.body
    plans: list[RulePlan] = []
    try:
        for seed_index in range(len(body)):
            order = order_atoms(body, seed_index)
            seed, bound = _compile_seed(body[seed_index], seed_index, slot_of)
            steps: list[JoinStep] = []
            for body_index in order[1:]:
                step, fresh = _compile_join(
                    body[body_index],
                    body_index,
                    slot_of,
                    bound,
                    guard=body_index < seed_index,
                )
                steps.append(step)
                bound |= fresh
            guarded = tuple(
                dict.fromkeys(step.relation for step in steps if step.guard)
            )
            plans.append(RulePlan(seed, tuple(steps), guarded))
    except _Uncompilable:
        plans = []
    return CompiledRule(
        rule,
        len(slot_of),
        tuple(atom.relation for atom in body),
        head,
        tuple(plans),
    )


def compile_program(rules: Sequence[Rule]) -> list[CompiledRule]:
    """Compile every rule of an already-prepared (skolemized and
    safety-checked) program without re-preparing each rule."""
    return [_compile_prepared(rule) for rule in rules]
