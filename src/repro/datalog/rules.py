"""Rules and programs of the mapping Datalog dialect.

A :class:`Rule` generalizes plain Datalog in two paper-mandated ways:

* the head may contain *several* atoms (a GLAV schema mapping with
  ``n`` target atoms, Section 2: "a schema mapping M in general may
  have m source atoms and n target atoms"), and
* head-only (existential) variables are Skolemized into labeled nulls
  (footnote 1 of the paper).

Every rule carries a ``name`` (``m1``, ``L1``, ...) because derivation
nodes in the provenance graph are labeled with the mapping that
produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.datalog.atoms import Atom
from repro.datalog.terms import SkolemTerm, Term, Variable
from repro.errors import DatalogError


@dataclass(frozen=True)
class Rule:
    """``name : head1, ..., headn :- body1, ..., bodym``."""

    name: str
    head: tuple[Atom, ...]
    body: tuple[Atom, ...]

    def __post_init__(self) -> None:
        if not self.head:
            raise DatalogError(f"rule {self.name} has an empty head")

    # -- variable bookkeeping ----------------------------------------------

    def body_variables(self) -> set[Variable]:
        return {v for atom in self.body for v in atom.variables()}

    def head_variables(self) -> set[Variable]:
        return {v for atom in self.head for v in atom.variables()}

    def variables(self) -> set[Variable]:
        return self.body_variables() | self.head_variables()

    def is_safe(self) -> bool:
        """Safe iff every head variable occurs in the body.

        (After :meth:`skolemize`, existential variables have been folded
        into Skolem terms whose arguments are body variables, so a
        skolemized mapping is safe.)
        """
        return self.head_variables() <= self.body_variables()

    def check_safe(self) -> "Rule":
        if not self.is_safe():
            loose = {v.name for v in self.head_variables() - self.body_variables()}
            raise DatalogError(
                f"rule {self.name} is unsafe: head variables {sorted(loose)} "
                "do not occur in the body (skolemize() existentials first)"
            )
        return self

    # -- Skolemization -------------------------------------------------------

    def skolemize(self) -> "Rule":
        """Replace head-only variables with Skolem terms.

        Each existential head variable ``x`` becomes
        ``f_<name>_<x>(v1, ..., vk)`` over the rule's *frontier*
        variables (body variables that also appear in the head), the
        standard construction for data exchange with TGDs.
        """
        body_vars = self.body_variables()
        existential = [v for v in self.head_variables() if v not in body_vars]
        if not existential:
            return self
        frontier = tuple(
            sorted(
                (v for v in self.head_variables() if v in body_vars),
                key=lambda v: v.name,
            )
        )
        mapping: dict[Variable, Term] = {
            v: SkolemTerm(f"f_{self.name}_{v.name}", frontier) for v in existential
        }
        new_head = tuple(atom.substitute(mapping) for atom in self.head)
        return Rule(self.name, new_head, self.body)

    # -- structural helpers ---------------------------------------------------

    def source_relations(self) -> tuple[str, ...]:
        return tuple(atom.relation for atom in self.body)

    def target_relations(self) -> tuple[str, ...]:
        return tuple(atom.relation for atom in self.head)

    def rename_variables(self, suffix: str) -> "Rule":
        mapping = {v: Variable(v.name + suffix) for v in self.variables()}
        return Rule(
            self.name,
            tuple(a.substitute(mapping) for a in self.head),
            tuple(a.substitute(mapping) for a in self.body),
        )

    def __str__(self) -> str:
        head = ", ".join(str(a) for a in self.head)
        if not self.body:
            return f"{self.name}: {head}."
        body = ", ".join(str(a) for a in self.body)
        return f"{self.name}: {head} :- {body}"


@dataclass
class Program:
    """An ordered, name-indexed collection of rules."""

    rules: list[Rule] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise DatalogError(f"duplicate rule names in program: {names}")

    def add(self, rule: Rule) -> None:
        if any(r.name == rule.name for r in self.rules):
            raise DatalogError(f"duplicate rule name {rule.name}")
        self.rules.append(rule)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __getitem__(self, name: str) -> Rule:
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise DatalogError(f"no rule named {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(r.name == name for r in self.rules)

    def rules_defining(self, relation: str) -> list[Rule]:
        """Rules with *relation* in their head."""
        return [r for r in self.rules if relation in r.target_relations()]

    def rules_using(self, relation: str) -> list[Rule]:
        """Rules with *relation* in their body."""
        return [r for r in self.rules if relation in r.source_relations()]

    def relations(self) -> set[str]:
        out: set[str] = set()
        for rule in self.rules:
            out.update(rule.source_relations())
            out.update(rule.target_relations())
        return out

    def idb_relations(self) -> set[str]:
        return {rel for rule in self.rules for rel in rule.target_relations()}

    def edb_relations(self) -> set[str]:
        return self.relations() - self.idb_relations()

    def is_recursive(self) -> bool:
        """True iff the relation dependency graph has a cycle."""
        deps: dict[str, set[str]] = {}
        for rule in self.rules:
            for head_rel in rule.target_relations():
                deps.setdefault(head_rel, set()).update(rule.source_relations())
        seen: dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(rel: str) -> bool:
            state = seen.get(rel)
            if state == 0:
                return True
            if state == 1:
                return False
            seen[rel] = 0
            for dep in deps.get(rel, ()):
                if visit(dep):
                    return True
            seen[rel] = 1
            return False

        return any(visit(rel) for rel in deps)

    @classmethod
    def from_rules(cls, rules: Iterable[Rule]) -> "Program":
        return cls(list(rules))
