"""Terms of the Datalog dialect used for schema mappings.

The paper (Example 2.1, footnote 1) uses Datalog extended with:

* multi-atom heads (GLAV / tuple-generating-dependency mappings), and
* Skolem functions that stand for labeled nulls created by existential
  variables in mapping heads.

Terms are therefore constants, variables, the anonymous wildcard ``_``
(each occurrence distinct), and Skolem terms ``f(t1, ..., tn)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Union

Term = Union["Constant", "Variable", "SkolemTerm"]

_wildcard_counter = itertools.count()


class Constant:
    """A ground value (int, str, float, or bool).

    A plain slotted class with a cached hash: terms are hashed millions
    of times during unfolding, where dataclass-generated hashing was a
    measured bottleneck.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: object):
        self.value = value
        self._hash = hash(("Constant", value))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Constant(value={self.value!r})"

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return str(self.value)


class Variable:
    """A named logic variable (slotted, cached hash — see Constant)."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        self.name = name
        self._hash = hash(("Variable", name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __lt__(self, other: "Variable") -> bool:
        return self.name < other.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable(name={self.name!r})"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SkolemTerm:
    """``function(args...)`` — a labeled null parameterized by terms.

    During evaluation, a ground Skolem term is represented by a
    :class:`SkolemValue`, which compares equal iff function and
    arguments match (the standard canonical-universal-solution
    treatment of labeled nulls in data exchange).
    """

    function: str
    args: tuple[Term, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.function}({inner})"


@dataclass(frozen=True)
class SkolemValue:
    """The *value* of a ground Skolem term (a labeled null)."""

    function: str
    args: tuple[object, ...]

    def __str__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.function}({inner})"


def fresh_wildcard() -> Variable:
    """A fresh variable for one occurrence of ``_``."""
    return Variable(f"__w{next(_wildcard_counter)}")


def is_wildcard(term: Term) -> bool:
    return isinstance(term, Variable) and term.name.startswith("__w")


Substitution = Mapping[Variable, object]


def variables_of(term: Term) -> Iterator[Variable]:
    """Yield every variable occurring in *term* (depth-first)."""
    if isinstance(term, Variable):
        yield term
    elif isinstance(term, SkolemTerm):
        for arg in term.args:
            yield from variables_of(arg)


def ground(term: Term, subst: Substitution) -> object:
    """Apply *subst* to *term*, producing a concrete value.

    Raises KeyError if a variable is unbound — callers are expected to
    only ground terms whose variables are all bound (safe rules).
    """
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Variable):
        return subst[term]
    if isinstance(term, SkolemTerm):
        return SkolemValue(term.function, tuple(ground(a, subst) for a in term.args))
    raise TypeError(f"not a term: {term!r}")


def substitute(term: Term, subst: Mapping[Variable, Term]) -> Term:
    """Apply a *term-to-term* substitution (used by rule unfolding)."""
    if isinstance(term, Constant):
        return term
    if isinstance(term, Variable):
        return subst.get(term, term)
    if isinstance(term, SkolemTerm):
        return SkolemTerm(term.function, tuple(substitute(a, subst) for a in term.args))
    raise TypeError(f"not a term: {term!r}")
