"""Homomorphisms between conjunctions of atoms.

Used by the ASR rewriting algorithm of Figure 4 (``findHomomorphism``):
a homomorphism from a path rule *p* into a rule *r* maps variables of
*p* to variables/constants of *r* so that every atom of ``body(p)`` is
mapped onto some atom of ``body(r)``.  We additionally return *which*
atoms of *r* were covered, so the rewriter can remove them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, SkolemTerm, Term, Variable


@dataclass(frozen=True)
class Homomorphism:
    """A variable mapping plus the indices of target atoms used.

    ``mapping`` sends variables of the source conjunction to *terms* of
    the target conjunction.  ``covered`` gives, per source atom, the
    index of the target atom it maps onto.
    """

    mapping: dict[Variable, Term]
    covered: tuple[int, ...]

    def apply(self, term: Term) -> Term:
        if isinstance(term, Variable):
            return self.mapping.get(term, term)
        if isinstance(term, SkolemTerm):
            return SkolemTerm(term.function, tuple(self.apply(a) for a in term.args))
        return term

    def apply_atom(self, atom: Atom) -> Atom:
        return Atom(atom.relation, tuple(self.apply(t) for t in atom.terms))


def _match_terms(
    src: Term, dst: Term, mapping: dict[Variable, Term]
) -> dict[Variable, Term] | None:
    """Extend *mapping* so that src maps to dst; None on failure."""
    if isinstance(src, Constant):
        return mapping if src == dst else None
    if isinstance(src, Variable):
        bound = mapping.get(src)
        if bound is None:
            out = dict(mapping)
            out[src] = dst
            return out
        return mapping if bound == dst else None
    if isinstance(src, SkolemTerm):
        if not isinstance(dst, SkolemTerm) or src.function != dst.function:
            return None
        if len(src.args) != len(dst.args):
            return None
        current: dict[Variable, Term] | None = mapping
        for s_arg, d_arg in zip(src.args, dst.args):
            current = _match_terms(s_arg, d_arg, current)
            if current is None:
                return None
        return current
    raise TypeError(f"not a term: {src!r}")


def _match_atom(
    src: Atom, dst: Atom, mapping: dict[Variable, Term]
) -> dict[Variable, Term] | None:
    if src.relation != dst.relation or src.arity != dst.arity:
        return None
    current: dict[Variable, Term] | None = mapping
    for s_term, d_term in zip(src.terms, dst.terms):
        current = _match_terms(s_term, d_term, current)
        if current is None:
            return None
    return current


def find_homomorphisms(
    source: Sequence[Atom],
    target: Sequence[Atom],
    distinct_targets: bool = True,
) -> Iterator[Homomorphism]:
    """Enumerate homomorphisms from *source* atoms into *target* atoms.

    With ``distinct_targets`` (the default, matching the rewriting
    algorithm's intent of replacing a set of joined atoms by one ASR
    atom) no two source atoms may map onto the same target atom.
    """

    def search(
        index: int, mapping: dict[Variable, Term], used: tuple[int, ...]
    ) -> Iterator[Homomorphism]:
        if index == len(source):
            yield Homomorphism(dict(mapping), used)
            return
        for t_index, t_atom in enumerate(target):
            if distinct_targets and t_index in used:
                continue
            extended = _match_atom(source[index], t_atom, mapping)
            if extended is not None:
                yield from search(index + 1, extended, used + (t_index,))

    yield from search(0, {}, ())


def find_homomorphism(
    source: Sequence[Atom],
    target: Sequence[Atom],
    distinct_targets: bool = True,
) -> Homomorphism | None:
    """First homomorphism from *source* into *target*, or None."""
    return next(find_homomorphisms(source, target, distinct_targets), None)


def _resolve(term: Term, subst: dict[Variable, Term]) -> Term:
    """Follow variable bindings to a representative term."""
    while isinstance(term, Variable) and term in subst:
        term = subst[term]
    return term


def _occurs(variable: Variable, term: Term, subst: dict[Variable, Term]) -> bool:
    term = _resolve(term, subst)
    if term == variable:
        return True
    if isinstance(term, SkolemTerm):
        return any(_occurs(variable, arg, subst) for arg in term.args)
    return False


def _unify_terms(
    left: Term, right: Term, subst: dict[Variable, Term]
) -> dict[Variable, Term] | None:
    left, right = _resolve(left, subst), _resolve(right, subst)
    if left == right:
        return subst
    if isinstance(left, Variable):
        if _occurs(left, right, subst):
            return None
        out = dict(subst)
        out[left] = right
        return out
    if isinstance(right, Variable):
        return _unify_terms(right, left, subst)
    if isinstance(left, Constant) or isinstance(right, Constant):
        return None  # distinct constants, or constant vs Skolem
    if isinstance(left, SkolemTerm) and isinstance(right, SkolemTerm):
        if left.function != right.function or len(left.args) != len(right.args):
            return None
        current: dict[Variable, Term] | None = subst
        for l_arg, r_arg in zip(left.args, right.args):
            current = _unify_terms(l_arg, r_arg, current)
            if current is None:
                return None
        return current
    return None


def _flatten(subst: dict[Variable, Term]) -> dict[Variable, Term]:
    """Resolve chains so every binding maps to a representative."""

    def deep(term: Term) -> Term:
        term = _resolve(term, subst)
        if isinstance(term, SkolemTerm):
            return SkolemTerm(term.function, tuple(deep(a) for a in term.args))
        return term

    return {var: deep(var) for var in subst}


def unify_atoms(left: Atom, right: Atom) -> dict[Variable, Term] | None:
    """Most general unifier of two atoms (both may contain variables).

    Returns a substitution (variable -> term) or None.  Used by rule
    unfolding (Section 4.2.4) to match a body atom against a mapping's
    head atom.

    >>> from repro.datalog.parser import parse_rule
    >>> r = parse_rule("X(i, n) :- Y(i, s, n)")
    >>> theta = unify_atoms(r.head[0], Atom("X", (Variable("a"), Variable("a"))))
    >>> theta is not None
    True
    """
    if left.relation != right.relation or left.arity != right.arity:
        return None
    subst: dict[Variable, Term] | None = {}
    for l_term, r_term in zip(left.terms, right.terms):
        subst = _unify_terms(l_term, r_term, subst)
        if subst is None:
            return None
    return _flatten(subst)
