"""Exception hierarchy for the ProQL reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single type at API boundaries.  Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """Invalid relation schema, unknown attribute, or arity mismatch."""


class DatalogError(ReproError):
    """Malformed Datalog rule or program."""

class DatalogParseError(DatalogError):
    """Syntax error while parsing Datalog rule text."""


class EvaluationError(ReproError):
    """Failure during fixpoint evaluation or data exchange."""


class SemiringError(ReproError):
    """Invalid semiring value or unsupported semiring operation."""


class ProvenanceError(ReproError):
    """Inconsistent provenance graph (dangling node, bad derivation)."""


class CycleError(ProvenanceError):
    """An operation requiring acyclic provenance met a cyclic graph."""


class ProQLError(ReproError):
    """Base class for ProQL language errors."""

class ProQLSyntaxError(ProQLError):
    """Syntax error in ProQL query text; carries position information."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class ProQLSemanticError(ProQLError):
    """Well-formed but meaningless query (unbound variable, unknown
    relation or mapping, invalid ASSIGNING clause, ...)."""


class StorageError(ReproError):
    """Relational storage layer failure (SQLite, encoding, views)."""


class ExchangeError(ReproError):
    """Update-exchange engine failure (unknown engine, SQL lowering of
    an uncompilable rule, store misuse)."""


class IndexingError(ReproError):
    """Invalid ASR definition (e.g. overlapping ASRs) or rewrite failure."""


class ServeError(ReproError):
    """Concurrent serving tier failure (:mod:`repro.serve`): reader
    misuse (e.g. attaching to an in-memory path) or a store that is not
    servable."""


class StaleSnapshotError(ServeError):
    """A reader snapshot observed a stale or in-flight index state.

    Internal retry signal: the reader releases the snapshot, backs off,
    and pins a fresh one.  Only surfaces (wrapped in
    :class:`ServeUnavailable`) when the retry budget runs out."""


class ServeUnavailable(ServeError):
    """A reader exhausted its retry budget without pinning a servable
    snapshot (the writer held the index stale for too long, or the
    store file could not be opened read-only)."""


class AnalysisError(ReproError):
    """Static analysis rejected a mapping program (``validate="error"``
    pre-flight or :meth:`repro.analysis.Report.raise_for_errors`)."""
