"""``repro.exchange`` — SQL-backed, out-of-core update exchange.

The paper (Section 4) runs the CDSS storage and maintenance layers
*inside an RDBMS*: relations, local-contribution tables, and one
provenance relation ``P_m`` per mapping live as tables (Section 4.1),
and update exchange executes as set-oriented SQL over them (Section
4.2's translated queries).  This subsystem brings the reproduction to
that architecture, component by component:

================  ==========================================================
component          role (paper anchor)
================  ==========================================================
``cache``          Compiled-program cache keyed by a program fingerprint,
                   so incremental exchanges (Section 4.2's incremental
                   update policies) stop recompiling join plans; shared by
                   the in-memory and SQLite engines.
``sql_plans``      Lowers each per-delta-atom join plan of
                   :mod:`repro.datalog.planner` into a parameterized SQL
                   statement — the rule-to-SQL translation of Section 4's
                   "update exchange ... performed within the DBMS",
                   including Skolem (labeled-null, footnote 1) value
                   construction in SQL and ``P_m`` maintenance
                   (Section 4.1's provenance encoding).
``sql_executor``   Set-oriented semi-naive fixpoint: one SQL statement per
                   plan per round over delta tables, transactional
                   instance + ``P_m`` maintenance, lazy write-back of the
                   provenance graph (Figure 1) after convergence.
``graph_queries``  Relational graph queries over the stored firing
                   history: ``lineage``/``derivability``/``trusted``
                   answered by recursive joins over ``P_m`` (backward
                   transitive-closure walk + the deletion propagation's
                   liveness fixpoint), so store-resident mode covers
                   the full paper lifecycle without ever materializing
                   a provenance graph in Python.
================  ==========================================================

Engine selection happens at the API surface:
``CDSS.exchange(engine="memory"|"sqlite", storage=..., resident=...)``,
where ``storage`` names an
:class:`~repro.exchange.sql_executor.ExchangeStore` (or a filesystem
path for out-of-core workloads whose working set exceeds memory) and
``resident=True`` makes that store the *authoritative* instance —
derived tuples and provenance stay relational, never materialized in
Python.  The store mirror is synced incrementally from each relation's
change journal (``rows_mirrored == 0`` over unchanged relations).
Both engines are verified property-test-identical on instances and
provenance graphs.

Submodules that depend on :mod:`repro.cdss` are imported lazily so that
``repro.cdss.system`` can import the cache without a cycle.
"""

from __future__ import annotations

from repro.exchange.cache import (
    CompiledExchangeProgram,
    ProgramCache,
    compile_exchange_program,
    program_fingerprint,
)

__all__ = [
    "CompiledExchangeProgram",
    "ExchangeStore",
    "ProgramCache",
    "SQLiteExchangeEngine",
    "StoreGraphQueries",
    "compile_exchange_program",
    "lower_program",
    "program_fingerprint",
]


def __getattr__(name: str):
    if name in ("ExchangeStore", "SQLiteExchangeEngine"):
        from repro.exchange import sql_executor

        return getattr(sql_executor, name)
    if name == "StoreGraphQueries":
        from repro.exchange.graph_queries import StoreGraphQueries

        return StoreGraphQueries
    if name == "lower_program":
        from repro.exchange.sql_plans import lower_program

        return lower_program
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
