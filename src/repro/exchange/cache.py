"""Compiled-program cache for incremental update exchange.

``CDSS.exchange()`` evaluates the same mapping program over and over —
once per batch of local updates.  Compiling the program (skolemization,
safety checks, one join plan per rule body atom) is pure function of
the rule text, so this module memoizes it:

* :func:`program_fingerprint` — a stable digest of a program's rules
  (names, heads, bodies; order-normalized, since rule order cannot
  change a semi-naive fixpoint).  Two programs with the same
  fingerprint compile to equivalent plans.
* :class:`CompiledExchangeProgram` — the prepared rules plus their
  compiled join plans, and a slot for the lazily attached SQL lowering
  (:mod:`repro.exchange.sql_plans`) so the SQLite engine shares the
  same cache entry.
* :class:`ProgramCache` — a fingerprint-keyed store with hit/miss
  counters.  :class:`~repro.cdss.system.CDSS` owns one and invalidates
  it whenever the program can change (``add_mapping`` / ``add_peer``);
  the fingerprint key makes even a missed invalidation safe, never
  stale.

On a cache hit, the engines report ``plans_compiled == 0`` in their
:class:`~repro.datalog.evaluation.EvaluationResult`, which is how the
benchmarks account for recompilation savings across incremental
exchanges.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.datalog.evaluation import _prepare
from repro.datalog.planner import CompiledRule, compile_program
from repro.datalog.rules import Program, Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exchange.graph_queries import LineageSQL
    from repro.exchange.reach_index import ReachSQL
    from repro.exchange.sql_plans import DerivabilitySQL, ProgramSQL


def program_fingerprint(program: Program | Iterable[Rule]) -> str:
    """Stable digest of a mapping program.

    Hashes the canonical text of every rule — name, head, and body
    (constants rendered with ``repr``) — so any change that could alter
    a compiled plan changes the fingerprint.  Rule texts are sorted
    before hashing: semi-naive evaluation is insensitive to rule order
    (every round runs all rules over the same delta snapshot), so a
    logically identical program with reordered mappings shares the
    fingerprint and reuses the cached plans instead of recompiling.
    """
    digest = hashlib.sha256()
    for text in sorted(str(rule) for rule in program):
        digest.update(text.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class CompiledExchangeProgram:
    """A prepared program plus everything both engines precompute."""

    fingerprint: str
    #: skolemized, safety-checked rules (in program order).
    rules: tuple[Rule, ...]
    #: one :class:`CompiledRule` per rule.
    compiled: tuple[CompiledRule, ...]
    #: SQL lowering, attached lazily by the SQLite engine so a
    #: memory-only workload never pays for it.
    sql: "ProgramSQL | None" = field(default=None, repr=False)
    #: SQL lowering of the relational DERIVABILITY test, attached
    #: lazily by the first store-resident deletion propagation (or
    #: ``derivability``/``trusted`` graph query).
    derivability: "DerivabilitySQL | None" = field(default=None, repr=False)
    #: SQL lowering of the backward lineage walk, attached lazily by
    #: the first store-resident ``lineage`` query.
    lineage: "LineageSQL | None" = field(default=None, repr=False)
    #: SQL lowering of the maintained reachability index
    #: (:mod:`repro.exchange.reach_index`), attached lazily by the
    #: first store-resident exchange or indexed graph query.
    reach: "ReachSQL | None" = field(default=None, repr=False)

    @property
    def plan_count(self) -> int:
        """Join plans held by this program (one per rule body atom)."""
        return sum(len(crule.plans) for crule in self.compiled)


def compile_exchange_program(
    program: Program, fingerprint: str | None = None
) -> CompiledExchangeProgram:
    """Prepare and compile *program* into a cacheable unit."""
    if fingerprint is None:
        fingerprint = program_fingerprint(program)
    rules = tuple(_prepare(program))
    return CompiledExchangeProgram(fingerprint, rules, compile_program(rules))


class ProgramCache:
    """Fingerprint-keyed cache of :class:`CompiledExchangeProgram`.

    >>> cache = ProgramCache()
    >>> from repro.datalog.parser import parse_program
    >>> program = parse_program("r: T(x) :- R(x)")
    >>> _, hit = cache.fetch(program)
    >>> hit
    False
    >>> _, hit = cache.fetch(program)
    >>> hit
    True
    """

    def __init__(self) -> None:
        self._entries: dict[str, CompiledExchangeProgram] = {}
        #: fetches answered from the cache.
        self.hits = 0
        #: fetches that had to compile.
        self.misses = 0
        #: explicit invalidations (``add_mapping`` / ``add_peer``).
        self.invalidations = 0

    def fetch(self, program: Program) -> tuple[CompiledExchangeProgram, bool]:
        """Return (compiled program, was it a cache hit)."""
        fingerprint = program_fingerprint(program)
        entry = self._entries.get(fingerprint)
        if entry is not None:
            self.hits += 1
            return entry, True
        self.misses += 1
        entry = compile_exchange_program(program, fingerprint)
        self._entries[fingerprint] = entry
        return entry, False

    def get(self, fingerprint: str) -> CompiledExchangeProgram | None:
        return self._entries.get(fingerprint)

    def put(self, entry: CompiledExchangeProgram) -> CompiledExchangeProgram:
        self._entries[entry.fingerprint] = entry
        return entry

    def invalidate(self) -> None:
        """Drop every entry (the owning CDSS's program changed)."""
        if self._entries:
            self._entries.clear()
        self.invalidations += 1

    def __len__(self) -> int:
        return len(self._entries)
