"""Relational provenance-graph queries over the stored firing history.

The paper's central storage claim (Section 4.1) is that the provenance
graph need not exist as a graph at all: the ``P_m`` firing history *is*
the graph, stored relationally, and the graph-shaped use cases can be
answered by recursive joins over it.  This module closes store-resident
mode's last gap by answering the three :class:`~repro.cdss.system.CDSS`
graph queries entirely in SQL — no
:class:`~repro.provenance.graph.ProvenanceGraph` is ever materialized:

* **derivability** (Q5) — the forward liveness fixpoint of PR 4's
  deletion propagation, re-used verbatim: every stored
  local-contribution row seeds the ``__live_*`` tables and the lowered
  rule bodies grow them semi-naively; a tuple's annotation is its
  membership in the resulting live set (the least fixpoint of the
  DERIVABILITY semiring, so cyclically self-supporting derivations
  annotate ``False`` exactly as under the graph engine's Kleene
  iteration);
* **trust** (Q7) — the same fixpoint with the trust policy pushed
  *into* it, semiring-style: leaf conditions filter which
  local-contribution rows seed the live set (the TRUST semiring's leaf
  assignment), and distrusted mappings are excluded from the firing
  joins wholesale (the paper's ``Dm`` function annotates every firing
  of the mapping ``false``, which is the same as never enumerating it);
* **lineage** (Q6) — an iterative *backward* transitive-closure walk:
  per-relation ``__anc_*`` ancestor closures grow from the query row,
  and each round enumerates — via the shared
  :func:`~repro.exchange.sql_plans._plan_firing_sql` lowering with a
  :class:`~repro.exchange.sql_plans.HeadProbe` — exactly the firings
  whose head row entered the closure last round, inserting their body
  rows back into the closure; the answer is the closure's intersection
  with the EDB (local-contribution) relations, i.e. the leaf set of
  the LINEAGE semiring annotation.

Because the store holds an exchange fixpoint, joining stored rows
through a rule body enumerates exactly the recorded historical firings
(each one a ``P_m`` row, widened to all variable slots), so these
walks traverse the same derivation structure the graph engine would —
the Gottlob–Orsi–Pieris move of rewriting a graph/ontological query
into plain SQL over the underlying relations.

**Consistency window.**  The store answers as of the last
``exchange``/``propagate_deletions``: local insertions not yet
exchanged are invisible (exactly like the graph engine, whose graph
also only grows at exchange time).  Local *deletions* differ during
the in-between state: resident ``delete_local`` removes the victim row
from the store immediately, so queries issued before
``propagate_deletions`` already exclude it, while the graph engine
keeps the leaf node until propagation runs.  After propagation the two
engines agree node-for-node again (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping as TMapping, Sequence

from repro.cdss.mapping import SchemaMapping
from repro.datalog.evaluation import EvaluationResult
from repro.datalog.planner import CompiledRule
from repro.errors import EvaluationError, ExchangeError
from repro.exchange.cache import CompiledExchangeProgram
from repro.exchange.sql_plans import (
    DerivabilityRuleSQL,
    DerivabilitySQL,
    HeadProbe,
    Statement,
    _ParamAllocator,
    _assign_slots,
    _compile_term,
    _lower_head_insert,
    _plan_firing_sql,
    _slot_types,
    anc_cand_table,
    anc_delta_table,
    anc_new_table,
    anc_table,
    live_cand_table,
    live_delta_table,
    live_new_table,
    live_table,
    lower_derivability_program,
    lower_program,
    query_fired_table,
    stage_ancestor_sql,
    stage_live_sql,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.provenance.graph import ProvenanceGraph, TupleNode
from repro.relational.instance import Catalog, Instance, Row
from repro.storage.encoding import quote_identifier as _q

#: seed spec: this relation contributes no seed rows at all (e.g. its
#: leaves default to distrusted).
SEED_NOTHING = object()

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cdss.trust import TrustPolicy
    from repro.exchange.sql_executor import ExchangeStore


@dataclass(frozen=True)
class LineageRuleSQL:
    """One rule of the backward lineage walk."""

    rule_name: str
    num_slots: int
    #: ``__qfired_<rule>``: every firing the walk has visited.
    firing_table: str
    #: per head atom: (head relation, backward firing enumeration
    #: seeded from that relation's ancestor delta).
    head_probes: tuple[tuple[str, Statement], ...]
    #: per body atom: fresh visited firings -> ``__acand_<relation>``.
    body_inserts: tuple[Statement, ...]


@dataclass(frozen=True)
class LineageSQL:
    """SQL lowering of the backward lineage walk over a program."""

    rules: tuple[LineageRuleSQL, ...]
    #: every relation the walk may place in an ancestor closure.
    relations: tuple[str, ...]
    #: the leaf relations (local contributions): the closure's
    #: intersection with these is the lineage answer.
    edb_relations: tuple[str, ...]


def lower_lineage_program(
    compiled: Sequence[CompiledRule],
    catalog: Catalog,
    codec,
) -> LineageSQL:
    """Lower the whole program's backward lineage walk.

    Shares the leaf model of the derivability lowering: every
    local-contribution relation must be a pure EDB leaf (a mapping
    deriving *into* one is rejected loudly there, and this lowering is
    only reachable after that one succeeded at exchange time).
    """
    relations: dict[str, None] = {}
    heads: set[str] = set()
    for crule in compiled:
        for rel in crule.body_relations:
            relations.setdefault(rel, None)
        for rel, _extractors in crule.head:
            relations.setdefault(rel, None)
            heads.add(rel)
    rules = []
    for crule in compiled:
        if not crule.plans:
            raise ExchangeError(
                f"rule {crule.rule.name} cannot run on the sqlite engine "
                "(its body contains terms the planner does not compile); "
                'use exchange(engine="memory")'
            )
        name = crule.rule.name
        fired = query_fired_table(name)
        slot_types = _slot_types(crule, catalog)
        # Any one plan gives a valid join order for the body — the walk
        # enumerates *all* firings matching the head probe, not firings
        # seeded from a particular delta atom — so take the first.
        plan = crule.plans[0]
        head_probes = []
        for relation, extractors in crule.head:
            alloc = _ParamAllocator(codec)
            sql = _plan_firing_sql(
                crule,
                plan,
                catalog,
                alloc,
                seed_from=plan.seed.relation,
                join_of=lambda rel: rel,
                guards=False,
                target=fired,
                probe=HeadProbe(
                    anc_delta_table(relation),
                    catalog[relation].attribute_names,
                    tuple(extractors),
                    slot_types,
                ),
                dedup=True,
            )
            head_probes.append((relation, Statement(sql, alloc.params)))
        slot_of = _assign_slots(crule.rule)
        body_inserts = tuple(
            _lower_head_insert(
                crule,
                atom.relation,
                tuple(_compile_term(term, slot_of) for term in atom.terms),
                slot_types,
                codec,
                target=anc_cand_table(atom.relation),
                fired=fired,
            )
            for atom in crule.rule.body
        )
        rules.append(
            LineageRuleSQL(
                name, crule.num_slots, fired, tuple(head_probes), body_inserts
            )
        )
    return LineageSQL(
        tuple(rules),
        tuple(relations),
        tuple(r for r in relations if r not in heads),
    )


def run_liveness_fixpoint(
    store: "ExchangeStore",
    dsql: DerivabilitySQL,
    catalog: Catalog,
    delta_counts: dict[str, int],
    max_iterations: int | None = None,
    rules: Sequence[DerivabilityRuleSQL] | None = None,
    record_pm: bool = True,
    tracer: "Tracer | NullTracer" = NULL_TRACER,
) -> tuple[int, int]:
    """Grow the seeded ``__live_*`` sets to their least fixpoint.

    The caller has already staged the seed rows into the live and
    live-delta tables and passes their per-relation counts.  ``rules``
    optionally restricts the fixpoint to a subset of the program (trust
    excludes distrusted mappings); ``record_pm`` controls whether the
    surviving-``P_m`` projections are maintained (deletion propagation
    needs them for garbage collection, queries do not).

    Returns ``(iterations, firing_rows)`` where ``firing_rows`` counts
    every live firing enumerated — the relational analogue of the
    derivation nodes a graph walk would visit.

    This single loop is the substrate under deletion propagation
    (:meth:`~repro.exchange.sql_executor.SQLiteExchangeEngine.propagate_deletions`)
    and the ``derivability``/``trusted`` queries, which is what keeps
    the two semantics mechanically identical.

    ``tracer`` emits one ``fixpoint.round`` span per iteration (round
    number + live firings enumerated); the default no-op tracer costs
    one no-op context entry per round.
    """
    conn = store.connection
    if rules is None:
        rules = dsql.rules
    stage_sql = {
        relation: stage_live_sql(catalog, relation)
        for relation in dsql.derived_relations
    }
    iteration = 0
    firing_rows = 0
    while any(
        delta_counts.get(plan.seed_relation)
        for rule in rules
        for plan in rule.plans
    ):
        iteration += 1
        if max_iterations is not None and iteration > max_iterations:
            raise EvaluationError(
                f"derivability fixpoint did not converge within "
                f"{max_iterations} iterations"
            )
        with tracer.span("fixpoint.round") as round_span, conn:
            fired_before = firing_rows
            watermarks = {
                rule.rule_name: store.max_rowid(rule.firing_table)
                for rule in rules
            }
            for rule in rules:
                for plan in rule.plans:
                    if delta_counts.get(plan.seed_relation):
                        conn.execute(
                            plan.statement.sql, dict(plan.statement.params)
                        )
            for rule in rules:
                watermark = watermarks[rule.rule_name]
                fired = store.max_rowid(rule.firing_table) - watermark
                if fired <= 0:
                    continue
                firing_rows += fired
                runtime = {"wm": watermark}
                for statement in rule.head_inserts:
                    conn.execute(statement.sql, {**statement.params, **runtime})
                if record_pm and rule.pm_insert is not None:
                    conn.execute(
                        rule.pm_insert.sql,
                        {**rule.pm_insert.params, **runtime},
                    )
            for relation in dsql.derived_relations:
                conn.execute(stage_sql[relation])
            for relation in dsql.relations:
                conn.execute(f"DELETE FROM {_q(live_delta_table(relation))}")
            new_counts: dict[str, int] = {}
            for relation in dsql.derived_relations:
                fresh = store.count(live_new_table(relation))
                if fresh:
                    conn.execute(
                        f"INSERT INTO {_q(live_table(relation))} "
                        f"SELECT * FROM {_q(live_new_table(relation))}"
                    )
                    conn.execute(
                        f"INSERT INTO {_q(live_delta_table(relation))} "
                        f"SELECT * FROM {_q(live_new_table(relation))}"
                    )
                    conn.execute(
                        f"DELETE FROM {_q(live_new_table(relation))}"
                    )
                    new_counts[relation] = fresh
                conn.execute(f"DELETE FROM {_q(live_cand_table(relation))}")
            round_span.set("round", iteration).set(
                "firings", firing_rows - fired_before
            )
        delta_counts.clear()
        delta_counts.update(new_counts)
    return iteration, firing_rows


class StoreGraphQueries:
    """Answers the CDSS graph queries over a (resident) exchange store.

    One instance is built per query from the compiled program cache
    entry; the lowered SQL (``program.derivability`` /
    ``program.lineage`` / ``program.reach``) is attached to that entry,
    so repeated queries over an unchanged program lower nothing.

    With ``use_index=True`` (the default) queries answer from the
    store's maintained reachability index
    (:mod:`repro.exchange.reach_index`): a current index is used
    directly (``index_hit``), a stale or absent one is rebuilt first
    under an ``index.rebuild`` span (``index_miss``) — either way the
    answers equal the unindexed paths', which ``use_index=False`` keeps
    available verbatim as the testing oracle.
    """

    def __init__(
        self,
        store: "ExchangeStore",
        program: CompiledExchangeProgram,
        catalog: Catalog,
        mappings: TMapping[str, SchemaMapping],
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        use_index: bool = True,
    ):
        if store.closed:
            raise ExchangeError("exchange store is closed")
        self.store = store
        self.program = program
        self.catalog = catalog
        self.mappings = mappings
        self.use_index = use_index
        #: lifecycle tracer (:mod:`repro.obs`): the fixpoint and walk
        #: loops emit per-round spans through it.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if program.sql is None:
            program.sql = lower_program(
                program.compiled, catalog, mappings, store.codec
            )
        # Peers/mappings may have been added since the last exchange;
        # their (empty) tables must exist before the walks join them —
        # the same idempotent guarantee propagate_deletions relies on.
        store.ensure_schema(catalog, mappings, program.sql, program.fingerprint)

    # -- shared plumbing ----------------------------------------------------

    def _result(
        self, iterations: int, scanned: int, hit: int = 0, miss: int = 0
    ) -> EvaluationResult:
        result = EvaluationResult(
            Instance(self.catalog), ProvenanceGraph(), engine="sqlite"
        )
        result.iterations = iterations
        result.pm_rows_scanned = scanned
        result.index_hit = hit
        result.index_miss = miss
        return result

    def _ready_index(self):
        """The (index, lowering, miss-flag) triple for an indexed
        query, rebuilding a stale/absent index first; None when this
        instance runs unindexed."""
        if not self.use_index:
            return None
        from repro.exchange.reach_index import lower_reach_program

        program = self.program
        if program.reach is None:
            program.reach = lower_reach_program(
                program.compiled, self.catalog, self.store.codec
            )
        rsql = program.reach
        index = self.store.reach_index
        index.ensure_schema(rsql)
        miss = 0
        if not index.current:
            index.rebuild(rsql, self.tracer)
            miss = 1
        return index, rsql, miss

    def _derivability_sql(self) -> DerivabilitySQL:
        program = self.program
        if program.derivability is None:
            program.derivability = lower_derivability_program(
                program.compiled, self.catalog, self.mappings, self.store.codec
            )
        dsql = program.derivability
        self.store.ensure_derivability_schema(self.catalog, dsql)
        return dsql

    def _lineage_sql(self) -> LineageSQL:
        program = self.program
        if program.lineage is None:
            program.lineage = lower_lineage_program(
                program.compiled, self.catalog, self.store.codec
            )
        lsql = program.lineage
        self.store.ensure_graph_query_schema(self.catalog, lsql)
        return lsql

    #: batch size of the streamed (leaf-condition-filtered) seeding.
    SEED_BATCH = 10_000

    def _seed_live(self, relation: str, spec: object = None) -> int:
        """Stage seed rows into a relation's live + live-delta tables.

        ``spec`` selects the rows: ``None`` seeds the full stored
        extension in SQL (no decode round-trip), :data:`SEED_NOTHING`
        seeds none, and a callable is a predicate over *decoded* rows
        — applied streaming, in :attr:`SEED_BATCH`-row insert batches,
        so a conditioned relation never materializes its extension in
        Python (resident working sets may exceed memory).
        """
        conn = self.store.connection
        if spec is None:
            for table in (live_table(relation), live_delta_table(relation)):
                conn.execute(
                    f"INSERT INTO {_q(table)} SELECT * FROM {_q(relation)}"
                )
            return self.store.cached_count(relation)
        if spec is SEED_NOTHING:
            return 0
        schema = self.catalog[relation]
        codec = self.store.codec
        placeholders = ", ".join("?" for _ in schema.attribute_names)
        inserts = [
            f"INSERT INTO {_q(table)} VALUES ({placeholders})"
            for table in (live_table(relation), live_delta_table(relation))
        ]
        count = 0
        batch: list[Row] = []

        def flush() -> None:
            for insert in inserts:
                conn.executemany(insert, batch)
            batch.clear()

        for raw in conn.execute(f"SELECT * FROM {_q(relation)}"):
            if spec(codec.decode_row(raw, schema)):
                batch.append(raw)
                count += 1
                if len(batch) >= self.SEED_BATCH:
                    flush()
        if batch:
            flush()
        return count

    def _membership(self, relation: str) -> "list[tuple[Row, bool]]":
        """Every stored row of *relation*, decoded, with its membership
        in the relation's live set."""
        schema = self.catalog[relation]
        cols = schema.attribute_names
        match = " AND ".join(f'l.{_q(c)} IS r.{_q(c)}' for c in cols)
        select = ", ".join(f'r.{_q(c)}' for c in cols)
        cursor = self.store.connection.execute(
            f"SELECT {select}, EXISTS(SELECT 1 FROM "
            f"{_q(live_table(relation))} AS l WHERE {match}) "
            f"FROM {_q(relation)} AS r"
        )
        codec = self.store.codec
        return [
            (codec.decode_row(raw[:-1], schema), bool(raw[-1]))
            for raw in cursor
        ]

    def _annotate_by_liveness(
        self,
        seeds: dict[str, object],
        rules: Sequence[DerivabilityRuleSQL] | None,
        max_iterations: int | None,
    ) -> tuple[dict[TupleNode, bool], EvaluationResult]:
        """Shared derivability/trust body: seed (per-relation spec, see
        :meth:`_seed_live`; absent = full extension), run the liveness
        fixpoint, and read every stored row's verdict."""
        dsql = self._derivability_sql()
        store = self.store
        store.reset_derivability(dsql)
        try:
            delta_counts: dict[str, int] = {}
            with store.connection:
                for relation in dsql.edb_relations:
                    count = self._seed_live(relation, seeds.get(relation))
                    if count:
                        delta_counts[relation] = count
            iterations, scanned = run_liveness_fixpoint(
                store,
                dsql,
                self.catalog,
                delta_counts,
                max_iterations,
                rules=rules,
                record_pm=False,
                tracer=self.tracer,
            )
            values = {
                TupleNode(relation, row): live
                for relation in dsql.relations
                for row, live in self._membership(relation)
            }
        finally:
            store.reset_derivability(dsql)
        return values, self._result(iterations, scanned)

    def _annotate_indexed(
        self,
        index,
        rsql,
        seeds: dict[str, object],
        distrusted: "frozenset[str]",
        max_iterations: int | None,
    ) -> tuple[dict[TupleNode, bool], int, int]:
        """Indexed derivability/trust body: integer fixpoint over the
        fire/body tables, verdicts via the per-epoch node cache."""
        conn = self.store.connection
        catalog = self.catalog

        def seed(relation: str, base: int) -> int:
            spec = seeds.get(relation)
            if spec is SEED_NOTHING:
                return 0
            if spec is None:
                for table in ("__rq_live", "__rq_delta"):
                    conn.execute(
                        f'INSERT INTO "{table}" '
                        f"SELECT rowid + ? FROM {_q(relation)}",
                        (base,),
                    )
                return self.store.cached_count(relation)
            ids = [
                (node_id,)
                for node_id, node in index.nodes_with_ids(relation, catalog)
                if spec(node.values)
            ]
            for table in ("__rq_live", "__rq_delta"):
                conn.executemany(
                    f'INSERT OR IGNORE INTO "{table}" VALUES (?)', ids
                )
            return len(ids)

        try:
            iterations, scanned = index.annotate_fixpoint(
                seed, rsql.edb_relations, distrusted, max_iterations
            )
            values: dict[TupleNode, bool] = {}
            for relation in rsql.relations:
                live = index.live_ids(relation)
                for node_id, node in index.nodes_with_ids(relation, catalog):
                    values[node] = node_id in live
        finally:
            index.reset_temp_state()
        return values, iterations, scanned

    # -- the three queries --------------------------------------------------

    def derivability(
        self, max_iterations: int | None = None
    ) -> tuple[dict[TupleNode, bool], EvaluationResult]:
        """Derivability annotation of every stored tuple (Q5).

        Leaves follow the graph engine's default assignment (every
        stored local-contribution row is derivable), so the answer is
        the DERIVABILITY-semiring annotation of the firing history as
        it stands — on a consistent store every tuple annotates
        ``True``, and after un-propagated deletions the verdicts
        reflect the already-shrunk leaf tables.
        """
        ready = self._ready_index()
        if ready is None:
            return self._annotate_by_liveness({}, None, max_iterations)
        index, rsql, miss = ready
        key = ("derivability",)
        cached = index.cached_result(key)
        if cached is not None:
            values, iterations, scanned = cached
            return dict(values), self._result(iterations, scanned, hit=1)
        values, iterations, scanned = self._annotate_indexed(
            index, rsql, {}, frozenset(), max_iterations
        )
        index.cache_result(key, values, iterations, scanned)
        return dict(values), self._result(
            iterations, scanned, hit=0 if miss else 1, miss=miss
        )

    def trusted(
        self, policy: "TrustPolicy", max_iterations: int | None = None
    ) -> tuple[dict[TupleNode, bool], EvaluationResult]:
        """Trust annotation of every stored tuple under *policy* (Q7).

        The policy is pushed into the fixpoint rather than applied to
        an annotated graph: leaf conditions select the seed rows
        (decoding only the relations that actually carry a condition)
        and distrusted mappings' rules never join at all.
        """
        ready = self._ready_index()
        if ready is not None:
            index, rsql, miss = ready
            seeds: dict[str, object] = {}
            conditions = []
            for relation in rsql.edb_relations:
                condition = policy.condition_for(relation)
                if condition is None:
                    if not policy.default_trust:
                        seeds[relation] = SEED_NOTHING
                    continue
                seeds[relation] = condition
                conditions.append((relation, condition))
            distrusted = frozenset(policy.distrusted_mappings)
            # Conditions key by object identity, and the cache entry
            # holds strong references to them (below) so a collected
            # callable's id cannot alias a new one.  Conditions are
            # assumed pure — a closure over mutated state must not be
            # reused across calls anyway.
            key = (
                "trusted",
                policy.default_trust,
                distrusted,
                tuple(sorted((rel, id(cond)) for rel, cond in conditions)),
            )
            cached = index.cached_result(key)
            if cached is not None:
                values, iterations, scanned, _refs = cached
                return dict(values), self._result(iterations, scanned, hit=1)
            values, iterations, scanned = self._annotate_indexed(
                index, rsql, seeds, distrusted, max_iterations
            )
            index.cache_result(
                key, values, iterations, scanned,
                tuple(cond for _rel, cond in conditions),
            )
            return dict(values), self._result(
                iterations, scanned, hit=0 if miss else 1, miss=miss
            )
        dsql = self._derivability_sql()
        seeds = {}
        for relation in dsql.edb_relations:
            condition = policy.condition_for(relation)
            if condition is None:
                if not policy.default_trust:
                    seeds[relation] = SEED_NOTHING
                continue  # no condition + default trust: full extension
            seeds[relation] = condition
        rules = tuple(
            rule
            for rule in dsql.rules
            if rule.rule_name not in policy.distrusted_mappings
        )
        return self._annotate_by_liveness(seeds, rules, max_iterations)

    def lineage(
        self, node: TupleNode, max_iterations: int | None = None
    ) -> tuple[frozenset[TupleNode], EvaluationResult]:
        """Set of local base tuples *node* derives from (Q6).

        Raises :class:`KeyError` when *node* is not a stored tuple,
        matching the graph engine's behavior on a node absent from the
        graph.
        """
        catalog = self.catalog
        if node.relation not in catalog:
            raise KeyError(node)
        ready = self._ready_index()
        if ready is not None:
            return self._lineage_indexed(node, *ready)
        lsql = self._lineage_sql()
        if node.relation not in lsql.relations:
            raise KeyError(node)
        store = self.store
        schema = catalog[node.relation]
        encoded = store.codec.encode_row(tuple(node.values))
        condition = " AND ".join(
            f"{_q(c)} IS ?" for c in schema.attribute_names
        )
        stored = store.connection.execute(
            f"SELECT 1 FROM {_q(node.relation)} WHERE {condition}", encoded
        ).fetchone()
        if stored is None:
            raise KeyError(node)

        store.reset_graph_query(lsql)
        try:
            iterations, scanned = self._walk_lineage(
                lsql, node.relation, encoded, max_iterations
            )
            leaves = frozenset(
                TupleNode(relation, row)
                for relation in lsql.edb_relations
                for row in self._closure_rows(relation)
            )
        finally:
            store.reset_graph_query(lsql)
        return leaves, self._result(iterations, scanned)

    def _lineage_indexed(
        self, node: TupleNode, index, rsql, miss: int
    ) -> tuple[frozenset[TupleNode], EvaluationResult]:
        """Indexed lineage: resolve the query row to its node id, fill
        the ancestor closure (interval predicate or one recursive CTE),
        and decode the leaf-relation slice of the closure."""
        if node.relation not in rsql.relations:
            raise KeyError(node)
        store = self.store
        schema = self.catalog[node.relation]
        encoded = store.codec.encode_row(tuple(node.values))
        condition = " AND ".join(
            f"{_q(c)} IS ?" for c in schema.attribute_names
        )
        found = store.connection.execute(
            store.prepared(
                ("rowid", node.relation),
                lambda: (
                    f"SELECT rowid FROM {_q(node.relation)} "
                    f"WHERE {condition}"
                ),
            ),
            encoded,
        ).fetchone()
        if found is None:
            raise KeyError(node)
        key = ("lineage", node.relation, tuple(node.values))
        cached = index.cached_result(key)
        if cached is not None:
            leaves, iterations, scanned = cached
            return leaves, self._result(iterations, scanned, hit=1)
        qid = index.id_base(node.relation) + int(found[0])
        try:
            index.fill_ancestors(qid)
            scanned = index.closure_scanned()
            leaves = frozenset(
                TupleNode(relation, row)
                for relation in rsql.edb_relations
                for row in index.closure_leaf_rows(relation, self.catalog)
            )
        finally:
            index.reset_temp_state()
        index.cache_result(key, leaves, 1, scanned)
        return leaves, self._result(
            1, scanned, hit=0 if miss else 1, miss=miss
        )

    def _walk_lineage(
        self,
        lsql: LineageSQL,
        seed_relation: str,
        encoded_seed: Row,
        max_iterations: int | None,
    ) -> tuple[int, int]:
        """The backward transitive-closure loop."""
        store = self.store
        conn = store.connection
        placeholders = ", ".join("?" for _ in encoded_seed)
        with conn:
            for table in (anc_table, anc_delta_table):
                conn.execute(
                    f"INSERT INTO {_q(table(seed_relation))} "
                    f"VALUES ({placeholders})",
                    encoded_seed,
                )
        delta_counts: dict[str, int] = {seed_relation: 1}
        stage_sql = {
            relation: stage_ancestor_sql(self.catalog, relation)
            for relation in lsql.relations
        }
        iteration = 0
        firing_rows = 0
        while any(
            delta_counts.get(head_relation)
            for rule in lsql.rules
            for head_relation, _stmt in rule.head_probes
        ):
            iteration += 1
            if max_iterations is not None and iteration > max_iterations:
                raise EvaluationError(
                    f"lineage walk did not converge within "
                    f"{max_iterations} iterations"
                )
            with self.tracer.span("walk.round") as round_span, conn:
                fired_before = firing_rows
                watermarks = {
                    rule.rule_name: store.max_rowid(rule.firing_table)
                    for rule in lsql.rules
                }
                for rule in lsql.rules:
                    for head_relation, statement in rule.head_probes:
                        if delta_counts.get(head_relation):
                            conn.execute(
                                statement.sql, dict(statement.params)
                            )
                for rule in lsql.rules:
                    watermark = watermarks[rule.rule_name]
                    fired = (
                        store.max_rowid(rule.firing_table) - watermark
                    )
                    if fired <= 0:
                        continue
                    firing_rows += fired
                    runtime = {"wm": watermark}
                    for statement in rule.body_inserts:
                        conn.execute(
                            statement.sql, {**statement.params, **runtime}
                        )
                for relation in lsql.relations:
                    conn.execute(stage_sql[relation])
                    conn.execute(
                        f"DELETE FROM {_q(anc_delta_table(relation))}"
                    )
                new_counts: dict[str, int] = {}
                for relation in lsql.relations:
                    fresh = store.count(anc_new_table(relation))
                    if fresh:
                        conn.execute(
                            f"INSERT INTO {_q(anc_table(relation))} "
                            f"SELECT * FROM {_q(anc_new_table(relation))}"
                        )
                        conn.execute(
                            f"INSERT INTO {_q(anc_delta_table(relation))} "
                            f"SELECT * FROM {_q(anc_new_table(relation))}"
                        )
                        conn.execute(
                            f"DELETE FROM {_q(anc_new_table(relation))}"
                        )
                        new_counts[relation] = fresh
                    conn.execute(
                        f"DELETE FROM {_q(anc_cand_table(relation))}"
                    )
                round_span.set("round", iteration).set(
                    "firings", firing_rows - fired_before
                )
                delta_counts = new_counts
        return iteration, firing_rows

    def _closure_rows(self, relation: str) -> "list[Row]":
        schema = self.catalog[relation]
        codec = self.store.codec
        cursor = self.store.connection.execute(
            f"SELECT * FROM {_q(anc_table(relation))}"
        )
        return [codec.decode_row(raw, schema) for raw in cursor]
