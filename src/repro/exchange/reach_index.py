"""The maintained reachability index over the stored provenance graph.

The per-call graph queries of :mod:`repro.exchange.graph_queries`
recompute an ancestor (lineage) or liveness (derivability/trust)
closure from scratch on every call — correct, but a fixed ~tens-of-ms
cost per resident query that dwarfs the memory engine.  This module
maintains the closure *substrate* instead: a compact, integer-keyed
copy of the firing hypergraph that is kept current across
``exchange``/``propagate_deletions`` and answered from directly.

Design (documented in full in ``docs/graph-index.md``):

* every stored tuple gets a stable integer **node id**
  ``relno * REL_SHIFT + rowid`` (``relno`` is a small per-relation
  number persisted in ``__ridx_rel``; ``rowid`` is the row's SQLite
  rowid in its relation table);
* every recorded firing becomes one ``__ridx_fire`` row
  ``(fid, rule, head)`` plus one ``__ridx_body`` row per distinct body
  tuple — the hypergraph edge set, one integer row per endpoint
  instead of one wide slot-row join per traversal step;
* **maintenance** is incremental: after a resident exchange the fresh
  ``__fired_*`` log rows are translated into new fire/body rows
  (:meth:`ReachabilityIndex.extend_from_log`); a targeted deletion
  removes exactly the incident fires; deletion propagation prunes the
  dead cone set-at-a-time, falling back to a stale-mark (and a later
  query-time rebuild) when the cone exceeds
  :data:`PRUNE_FALLBACK_RATIO` of the index;
* the index **epoch** and state live in the store's ``__meta`` table,
  so a store reopened by path knows whether its index is current;
* a per-epoch **interval encoding** (``__ridx_info``: pre/post-order
  windows + topological layer, XPath-accelerator style) turns the
  ancestor test into a range predicate whenever the provenance DAG is
  a forest (every tuple derived by at most one single-body firing);
  general DAGs use a recursive-CTE closure over the integer edge
  set — still orders of magnitude cheaper than the slot-row walk.

Queries over the index run as integer fixpoints/lookups in
:class:`ReachabilityIndex` and are wired into
:class:`~repro.exchange.graph_queries.StoreGraphQueries`; the unindexed
paths survive untouched as the testing oracle (``use_index=False``).
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.datalog.planner import CompiledRule, _assign_slots, _compile_term
from repro.errors import EvaluationError
from repro.exchange.sql_plans import (
    _ParamAllocator,
    _extractor_sql,
    _plan_firing_sql,
    _slot_types,
    Statement,
    fired_table,
    live_table,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.relational.instance import Catalog
from repro.storage.encoding import ValueCodec, quote_identifier as _q

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exchange.sql_executor import ExchangeStore

#: node-id stride between relations: id = relno * REL_SHIFT + rowid.
#: 2^40 rowids per relation — far beyond any resident working set —
#: while products stay well inside SQLite's signed 64-bit integers.
REL_SHIFT = 1 << 40

#: deletion-propagation fallback: when more than 1/PRUNE_FALLBACK_RATIO
#: of all stored tuples died, targeted pruning would touch most of the
#: index anyway — mark it stale and let the next query rebuild.
PRUNE_FALLBACK_RATIO = 4

#: interval encodings are skipped above this edge count (the DFS is
#: a Python-side pass; the CTE path stays available regardless).
ENCODING_CAP = 2_000_000

#: per-relation cap on the decoded-node cache (ids + TupleNodes).
NODE_CACHE_CAP = 200_000

#: entries kept in the per-epoch query-result cache (FIFO).
RESULT_CACHE_CAP = 64

#: permanent index tables.
REL_TABLE = "__ridx_rel"
FIRE_TABLE = "__ridx_fire"
BODY_TABLE = "__ridx_body"
INFO_TABLE = "__ridx_info"

#: TEMP work tables (connection-local, cleared between uses).
_ID_TEMPS = ("__rq_live", "__rq_delta", "__rq_new", "__rq_anc", "__rq_dead")


# -- read-path substrate -----------------------------------------------------
#
# Pure-SELECT shapes over the permanent index tables, shared between the
# writer-side :class:`ReachabilityIndex` and the read-only sessions in
# :mod:`repro.serve`.  Read-only (``mode=ro``) connections cannot create
# the TEMP work tables above, so everything here must run as plain
# SELECTs on an arbitrary connection.

#: ancestor-or-self closure of one node as a recursive CTE.
ANCESTOR_CTE_SQL = (
    "WITH RECURSIVE anc(id) AS (VALUES(?) UNION "
    f"SELECT b.body FROM {_q(FIRE_TABLE)} AS f "
    f"JOIN {_q(BODY_TABLE)} AS b ON b.fid = f.fid "
    "JOIN anc AS a ON f.head = a.id) "
    "SELECT id FROM anc"
)

#: ``tin`` probe for one node in the interval encoding.
INTERVAL_PROBE_SQL = f"SELECT tin FROM {_q(INFO_TABLE)} WHERE id = ?"

#: ancestor-or-self window of a probe time in a tree-exact encoding.
INTERVAL_WINDOW_SQL = (
    f"SELECT id FROM {_q(INFO_TABLE)} WHERE tin <= ? AND tout >= ?"
)


def load_relnos(connection: sqlite3.Connection) -> dict[str, int]:
    """Relation-name -> relno map from ``__ridx_rel`` on any connection."""
    return {
        str(name): int(relno)
        for name, relno in connection.execute(
            f"SELECT name, relno FROM {_q(REL_TABLE)}"
        )
    }


def load_edges(
    connection: sqlite3.Connection,
) -> tuple[dict[int, tuple[str, int]], dict[int, tuple[int, ...]]]:
    """The full integer edge set from any connection.

    Returns ``(fires, bodies)`` where ``fires[fid] = (rule, head_id)``
    and ``bodies[fid]`` is the tuple of body node ids.  This is the
    read-only counterpart of the TEMP-table fixpoint machinery: small
    enough to hold in Python for resident working sets, and usable on
    ``mode=ro`` connections that cannot write TEMP tables.
    """
    fires: dict[int, tuple[str, int]] = {}
    for fid, rule, head in connection.execute(
        f"SELECT fid, rule, head FROM {_q(FIRE_TABLE)}"
    ):
        fires[int(fid)] = (str(rule), int(head))
    grouped: dict[int, list[int]] = {}
    for fid, body in connection.execute(
        f"SELECT fid, body FROM {_q(BODY_TABLE)}"
    ):
        grouped.setdefault(int(fid), []).append(int(body))
    bodies = {fid: tuple(ids) for fid, ids in grouped.items()}
    return fires, bodies


def liveness_over_edges(
    fires: dict[int, tuple[str, int]],
    bodies: dict[int, tuple[int, ...]],
    seed_ids: Iterable[int],
    distrusted: Iterable[str] = (),
) -> set[int]:
    """Least liveness fixpoint over an in-memory edge set.

    A node is live iff it is a seed or some fire (whose rule is not
    distrusted) has it as head with every body node live — the same
    semantics as :meth:`ReachabilityIndex.annotate_fixpoint`, computed
    in Python so read-only sessions can run it without TEMP tables.
    """
    skip = set(distrusted)
    incident: dict[int, list[int]] = {}
    need: dict[int, int] = {}
    live = set(seed_ids)
    queue = list(live)
    for fid, (rule, head) in fires.items():
        if rule in skip:
            continue
        body = bodies.get(fid, ())
        if not body:
            # A fire with no recorded body is vacuously supported.
            if head not in live:
                live.add(head)
                queue.append(head)
            continue
        need[fid] = len(body)
        for node in body:
            incident.setdefault(node, []).append(fid)
    while queue:
        node = queue.pop()
        for fid in incident.get(node, ()):
            need[fid] -= 1
            if need[fid] == 0:
                head = fires[fid][1]
                if head not in live:
                    live.add(head)
                    queue.append(head)
    return live


# -- lowering ----------------------------------------------------------------


@dataclass(frozen=True)
class ReachHeadSQL:
    """Index maintenance for one (rule, head atom) pair."""

    relation: str
    #: fresh ``__fired_*`` rows -> ``__ridx_fire`` (runtime: wm, base,
    #: hbase — the head relation's id base).
    fire_insert: Statement
    #: per body atom: (relation, fresh fires -> ``__ridx_body``;
    #: runtime: wm, base, bbase).
    body_inserts: tuple[tuple[str, Statement], ...]


@dataclass(frozen=True)
class ReachRuleSQL:
    """Index maintenance for one rule of the program."""

    rule_name: str
    firing_table: str
    #: re-enumerates the rule's *entire* firing history into its firing
    #: table (index rebuild; seeds from the full stored relation).
    enumerate_all: Statement
    heads: tuple[ReachHeadSQL, ...]


@dataclass(frozen=True)
class ReachSQL:
    """SQL lowering of the whole program's index maintenance."""

    rules: tuple[ReachRuleSQL, ...]
    #: every relation whose rows get node ids.
    relations: tuple[str, ...]
    #: the leaf (local-contribution) relations — lineage answers are
    #: the closure's intersection with these.
    edb_relations: tuple[str, ...]


def _endpoint_insert(
    crule: CompiledRule,
    target: str,
    id_column: str,
    base_param: str,
    relation: str,
    extractors: Sequence[tuple[int, object]],
    slot_types: Sequence[str],
    catalog: Catalog,
    codec: ValueCodec,
    rule_param: str | None = None,
    or_ignore: bool = False,
) -> Statement:
    """Fresh firings -> one endpoint row per firing.

    Joins the firing log against *relation* on the atom's extractor
    expressions (Skolems rebuilt in SQL, so equal labeled nulls match)
    to resolve each firing's endpoint tuple to its rowid, then shifts
    it into the relation's id range.  ``rule_param`` additionally emits
    the fire row's rule-name column (head endpoints only).
    """
    alloc = _ParamAllocator(codec)
    exprs = _extractor_sql(extractors, alloc, slot_types)
    cols = catalog[relation].attribute_names
    on = " AND ".join(
        f'r.{_q(c)} IS {e}' for c, e in zip(cols, exprs)
    ) or "1"
    select = [":base + f.rowid"]
    columns = ["fid"]
    if rule_param is not None:
        select.append(alloc.bind(rule_param))
        columns.append("rule")
    select.append(f"r.rowid + :{base_param}")
    columns.append(id_column)
    verb = "INSERT OR IGNORE" if or_ignore else "INSERT"
    sql = (
        f"{verb} INTO {_q(target)} ({', '.join(columns)})\n"
        f"SELECT {', '.join(select)}\n"
        f"FROM {_q(fired_table(crule.rule.name))} AS f\n"
        f"JOIN {_q(relation)} AS r ON {on}\n"
        f"WHERE f.rowid > :wm"
    )
    return Statement(sql, alloc.params, runtime=("wm", "base", base_param))


def lower_reach_program(
    compiled: Sequence[CompiledRule],
    catalog: Catalog,
    codec: ValueCodec,
) -> ReachSQL:
    """Lower every rule's index-maintenance statements.

    Only reachable after :func:`~repro.exchange.sql_plans.lower_program`
    succeeded for the same program, so every rule has at least one plan
    and the shared leaf model (local relations are pure EDB leaves)
    already holds.
    """
    relations: dict[str, None] = {}
    heads: set[str] = set()
    for crule in compiled:
        for rel in crule.body_relations:
            relations.setdefault(rel, None)
        for rel, _extractors in crule.head:
            relations.setdefault(rel, None)
            heads.add(rel)
    rules = []
    for crule in compiled:
        name = crule.rule.name
        slot_types = _slot_types(crule, catalog)
        slot_of = _assign_slots(crule.rule)
        body_atoms = tuple(
            (
                atom.relation,
                tuple(_compile_term(term, slot_of) for term in atom.terms),
            )
            for atom in crule.rule.body
        )
        head_sqls = []
        for relation, extractors in crule.head:
            fire = _endpoint_insert(
                crule, FIRE_TABLE, "head", "hbase", relation,
                tuple(extractors), slot_types, catalog, codec,
                rule_param=name,
            )
            body_inserts = tuple(
                (
                    body_rel,
                    # OR IGNORE: two body atoms of one rule may match
                    # the same stored row — one hyperedge endpoint.
                    _endpoint_insert(
                        crule, BODY_TABLE, "body", "bbase", body_rel,
                        body_extractors, slot_types, catalog, codec,
                        or_ignore=True,
                    ),
                )
                for body_rel, body_extractors in body_atoms
            )
            head_sqls.append(ReachHeadSQL(relation, fire, body_inserts))
        # Any one plan gives a valid join order for re-enumerating the
        # complete firing history: seeded from the full stored seed
        # relation with no guards, the joins recover every recorded
        # firing (the store holds an exchange fixpoint).
        plan = crule.plans[0]
        alloc = _ParamAllocator(codec)
        enum_sql = _plan_firing_sql(
            crule,
            plan,
            catalog,
            alloc,
            seed_from=plan.seed.relation,
            join_of=lambda rel: rel,
            guards=False,
            target=fired_table(name),
        )
        rules.append(
            ReachRuleSQL(
                name,
                fired_table(name),
                Statement(enum_sql, alloc.params),
                tuple(head_sqls),
            )
        )
    return ReachSQL(
        tuple(rules),
        tuple(relations),
        tuple(r for r in relations if r not in heads),
    )


# -- the index ---------------------------------------------------------------


class ReachabilityIndex:
    """Maintains and answers the integer reachability index of a store.

    One instance per :class:`~repro.exchange.sql_executor.ExchangeStore`
    (``store.reach_index``).  All persistent state — the fire/body
    tables, relation-number registry, interval encoding, epoch, and
    current/stale flag — lives in the store file, so a store reopened
    by path resumes with a usable (or correctly stale-marked) index.
    """

    def __init__(self, store: "ExchangeStore"):
        self.store = store
        self._relnos: dict[str, int] = {}
        self._schema_ready = False
        self._temps_ready = False
        #: set when the store renumbered rowids under the index (full
        #: relation reload): node ids are invalid even though the run
        #: itself would otherwise have been incremental.
        self._renumbered = False
        #: per-relation decoded nodes [(id, TupleNode)], valid for
        #: :attr:`_node_cache_epoch` only.
        self._node_cache: dict[str, list] = {}
        self._node_cache_epoch = -1
        #: FIFO query-result cache: key -> (epoch, payload...).
        self._result_cache: dict[object, tuple] = {}

    # -- persistent state ----------------------------------------------------

    @property
    def state(self) -> str | None:
        """``'current'``, ``'stale'``, or ``None`` (never built)."""
        value = self.store.meta_get("index_state")
        return str(value) if value is not None else None

    @property
    def epoch(self) -> int:
        """Monotone content version; bumped by every maintenance event
        that may change the index (caches key on it)."""
        value = self.store.meta_get("index_epoch")
        return int(value) if value is not None else 0

    @property
    def current(self) -> bool:
        return self.state == "current" and not self._renumbered

    def mark_stale(self) -> None:
        """Persist that the index no longer matches the store."""
        if self.store.meta_get("index_state") != "stale":
            self.store.meta_set("index_state", "stale")

    def note_content_shipped(self) -> None:
        """Rows were mirrored into the store outside a maintained run
        (e.g. the sync inside a deletion propagation).  New base rows
        carry no firings, so the index structure stays valid — but the
        epoch must bump so cached query results (which enumerate
        stored rows) go cold."""
        if self.state is not None:
            self._bump_epoch()

    def note_renumbered(self) -> None:
        """A relation table was reloaded in full (rowids renumbered):
        every node id may now point at a different tuple.  Marks the
        index stale; the flag also defeats the incremental path of the
        surrounding run's :meth:`on_run_complete`."""
        if self.state is not None:
            self._renumbered = True
            self.mark_stale()

    def _bump_epoch(self) -> int:
        epoch = self.epoch + 1
        self.store.meta_set("index_epoch", epoch)
        return epoch

    # -- schema --------------------------------------------------------------

    def ensure_schema(self, rsql: ReachSQL) -> None:
        """Create (idempotently) the permanent index tables and
        register a relation number for every relation of *rsql*."""
        conn = self.store.connection
        if not self._schema_ready:
            conn.execute(
                f"CREATE TABLE IF NOT EXISTS {_q(REL_TABLE)} "
                "(name TEXT PRIMARY KEY, relno INTEGER NOT NULL)"
            )
            conn.execute(
                f"CREATE TABLE IF NOT EXISTS {_q(FIRE_TABLE)} "
                "(fid INTEGER PRIMARY KEY, rule TEXT NOT NULL, "
                "head INTEGER NOT NULL)"
            )
            conn.execute(
                f"CREATE INDEX IF NOT EXISTS {_q('__ix_' + FIRE_TABLE + '_head')} "
                f"ON {_q(FIRE_TABLE)} (head)"
            )
            conn.execute(
                f"CREATE TABLE IF NOT EXISTS {_q(BODY_TABLE)} "
                "(fid INTEGER NOT NULL, body INTEGER NOT NULL, "
                "PRIMARY KEY (fid, body)) WITHOUT ROWID"
            )
            conn.execute(
                f"CREATE INDEX IF NOT EXISTS {_q('__ix_' + BODY_TABLE + '_body')} "
                f"ON {_q(BODY_TABLE)} (body)"
            )
            conn.execute(
                f"CREATE TABLE IF NOT EXISTS {_q(INFO_TABLE)} "
                "(id INTEGER PRIMARY KEY, layer INTEGER NOT NULL, "
                "tin INTEGER NOT NULL, tout INTEGER NOT NULL)"
            )
            conn.execute(
                f"CREATE INDEX IF NOT EXISTS {_q('__ix_' + INFO_TABLE + '_tin')} "
                f"ON {_q(INFO_TABLE)} (tin)"
            )
            conn.commit()
            self._schema_ready = True
        missing = [r for r in rsql.relations if r not in self._relnos]
        if missing:
            self._load_relnos()
            missing = [r for r in rsql.relations if r not in self._relnos]
        if missing:
            with conn:
                next_no = (
                    max(self._relnos.values()) + 1 if self._relnos else 0
                )
                for name in missing:
                    conn.execute(
                        f"INSERT INTO {_q(REL_TABLE)} (name, relno) "
                        "VALUES (?, ?)",
                        (name, next_no),
                    )
                    self._relnos[name] = next_no
                    next_no += 1

    def _load_relnos(self) -> None:
        self._relnos.update(load_relnos(self.store.connection))

    def _ensure_temps(self) -> None:
        if self._temps_ready:
            return
        conn = self.store.connection
        for name in _ID_TEMPS:
            conn.execute(
                f"CREATE TEMP TABLE IF NOT EXISTS {_q(name)} "
                "(id INTEGER PRIMARY KEY)"
            )
        conn.execute(
            'CREATE TEMP TABLE IF NOT EXISTS "__rq_distrust" '
            "(rule TEXT PRIMARY KEY)"
        )
        conn.execute(
            'CREATE TEMP TABLE IF NOT EXISTS "__rq_deadfid" '
            "(fid INTEGER PRIMARY KEY)"
        )
        self._temps_ready = True

    def relno(self, relation: str) -> int | None:
        """The relation's persistent number, or None if unregistered."""
        if relation not in self._relnos:
            self._load_relnos()
        return self._relnos.get(relation)

    def id_base(self, relation: str) -> int | None:
        relno = self.relno(relation)
        return None if relno is None else relno * REL_SHIFT

    def maintains(self, relation: str) -> bool:
        """True iff the index is current and covers *relation* — i.e.
        a targeted mutation of that relation must (and can) keep the
        index in lockstep."""
        return (
            self.current
            and self.store.has_table(FIRE_TABLE)
            and self.relno(relation) is not None
        )

    # -- maintenance ---------------------------------------------------------

    def on_run_complete(
        self,
        rsql: ReachSQL,
        full_log: bool,
        was_current: bool,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
    ) -> None:
        """Bring the index up to date after a successful resident run.

        *full_log* says the run was seeded from the whole store (its
        ``__fired_*`` logs are the complete firing history — the run
        re-enumerated everything); *was_current* says the index matched
        the store when the run started (so the incremental logs are
        exactly the genuinely new firings).  Chooses, in order: replace
        content from the full log / extend from the incremental log /
        rebuild by re-enumerating the history.  Always bumps the epoch
        and finishes ``'current'``.
        """
        if self._renumbered:
            was_current = False
        with tracer.span("index.maintain") as span:
            if full_log:
                mode = "replace"
                with self.store.connection:
                    self._clear_content()
                    fires = self._extend_from_log(rsql)
            elif was_current:
                mode = "extend"
                with self.store.connection:
                    fires = self._extend_from_log(rsql)
            else:
                mode = "rebuild"
                fires = self.rebuild_from_store(rsql)
            self._finalize_epoch()
            span.set("mode", mode).set("fires", fires)

    def _finalize_epoch(self) -> None:
        self._bump_epoch()
        self.store.meta_set("index_state", "current")
        self._renumbered = False

    def _clear_content(self) -> None:
        conn = self.store.connection
        conn.execute(f"DELETE FROM {_q(FIRE_TABLE)}")
        conn.execute(f"DELETE FROM {_q(BODY_TABLE)}")

    def _extend_from_log(self, rsql: ReachSQL) -> int:
        """Translate every ``__fired_*`` log row into fire/body rows.

        Caller supplies the transaction.  Allocates one fid block per
        (rule, head atom): fid = block base + firing rowid, so the fire
        insert and every body insert of the pair correlate without any
        join-back.  Returns the number of fire rows added.
        """
        conn = self.store.connection
        next_fid = int(self.store.meta_get("index_next_fid") or 0)
        added = 0
        for rule in rsql.rules:
            top = self.store.max_rowid(rule.firing_table)
            if top <= 0:
                continue
            for head in rule.heads:
                hbase = self.id_base(head.relation)
                runtime = {"wm": 0, "base": next_fid, "hbase": hbase}
                cursor = conn.execute(
                    head.fire_insert.sql,
                    {**head.fire_insert.params, **runtime},
                )
                added += max(cursor.rowcount, 0)
                for body_rel, statement in head.body_inserts:
                    runtime = {
                        "wm": 0,
                        "base": next_fid,
                        "bbase": self.id_base(body_rel),
                    }
                    conn.execute(
                        statement.sql, {**statement.params, **runtime}
                    )
                next_fid += top
        self.store.meta_set("index_next_fid", next_fid)
        return added

    def rebuild_from_store(self, rsql: ReachSQL) -> int:
        """Rebuild the whole index by re-enumerating the firing history
        from the stored relations (one transaction).  The ``__fired_*``
        logs are borrowed as scratch and left empty."""
        conn = self.store.connection
        with conn:
            for rule in rsql.rules:
                conn.execute(f"DELETE FROM {_q(rule.firing_table)}")
                conn.execute(
                    rule.enumerate_all.sql, dict(rule.enumerate_all.params)
                )
            self._clear_content()
            fires = self._extend_from_log(rsql)
            for rule in rsql.rules:
                conn.execute(f"DELETE FROM {_q(rule.firing_table)}")
        return fires

    def rebuild(
        self, rsql: ReachSQL, tracer: "Tracer | NullTracer" = NULL_TRACER
    ) -> int:
        """Query-time recovery: rebuild a stale/absent index from the
        stored firing history and mark it current (the ``index.rebuild``
        span brackets the work).  Queries answer over the store as it
        stands — the same window the unindexed paths see — so this is
        always safe, even over a dirty (aborted-run) store."""
        with tracer.span("index.rebuild") as span:
            fires = self.rebuild_from_store(rsql)
            self._finalize_epoch()
            span.set("fires", fires)
        return fires

    def reset_temp_state(self) -> None:
        """Clear the TEMP work tables after a query's verdict read."""
        if self._temps_ready:
            self._clear_ids(*_ID_TEMPS, "__rq_distrust", "__rq_deadfid")

    def on_row_deleted(self, relation: str, rowid: int) -> None:
        """Targeted maintenance for one deleted stored row (caller
        supplies the transaction and has checked :meth:`maintains`).
        Removes the fires incident to the node — they reference a tuple
        that no longer exists, so the unindexed join paths would not
        enumerate them either — and bumps the epoch."""
        self._ensure_temps()
        conn = self.store.connection
        node = self.id_base(relation) + rowid
        conn.execute('DELETE FROM "__rq_deadfid"')
        conn.execute(
            'INSERT OR IGNORE INTO "__rq_deadfid" '
            f"SELECT fid FROM {_q(FIRE_TABLE)} WHERE head = ?",
            (node,),
        )
        conn.execute(
            'INSERT OR IGNORE INTO "__rq_deadfid" '
            f"SELECT fid FROM {_q(BODY_TABLE)} WHERE body = ?",
            (node,),
        )
        conn.execute(
            f"DELETE FROM {_q(FIRE_TABLE)} "
            'WHERE fid IN (SELECT fid FROM "__rq_deadfid")'
        )
        conn.execute(
            f"DELETE FROM {_q(BODY_TABLE)} "
            'WHERE fid IN (SELECT fid FROM "__rq_deadfid")'
        )
        conn.execute('DELETE FROM "__rq_deadfid"')
        self._bump_epoch()

    def begin_prune(
        self, derived_relations: Iterable[str], catalog: Catalog
    ) -> None:
        """Capture the about-to-die derived rows (inside the caller's
        kill transaction, *before* the kill sweeps run): every stored
        row with no live-set match goes into ``__rq_dead`` as a node
        id.  Leaf victims were already cleaned per-delete."""
        self._ensure_temps()
        conn = self.store.connection
        conn.execute('DELETE FROM "__rq_dead"')
        for relation in derived_relations:
            base = self.id_base(relation)
            if base is None:
                continue
            cols = catalog[relation].attribute_names
            match = " AND ".join(
                f'l.{_q(c)} IS r.{_q(c)}' for c in cols
            )
            conn.execute(
                f'INSERT INTO "__rq_dead" '
                f"SELECT r.rowid + {base} FROM {_q(relation)} AS r "
                f"WHERE NOT EXISTS (SELECT 1 FROM "
                f"{_q(live_table(relation))} AS l WHERE {match})"
            )

    def finish_prune(
        self, tracer: "Tracer | NullTracer" = NULL_TRACER
    ) -> None:
        """Prune the captured dead cone (same transaction as the kill
        sweeps).  Exact, no cascade: the liveness fixpoint computed the
        full live set, so every fire not incident to a dead node has
        all endpoints alive.  Falls back to a stale-mark when the cone
        is a large fraction of the index (see
        :data:`PRUNE_FALLBACK_RATIO`)."""
        conn = self.store.connection
        (dead,) = conn.execute('SELECT COUNT(*) FROM "__rq_dead"').fetchone()
        if not dead:
            return
        (fires,) = conn.execute(
            f"SELECT COUNT(*) FROM {_q(FIRE_TABLE)}"
        ).fetchone()
        if dead * PRUNE_FALLBACK_RATIO > fires:
            with tracer.span("index.invalidate") as span:
                span.set("dead", dead).set("fires", fires)
                self.mark_stale()
            conn.execute('DELETE FROM "__rq_dead"')
            return
        conn.execute('DELETE FROM "__rq_deadfid"')
        conn.execute(
            'INSERT OR IGNORE INTO "__rq_deadfid" '
            f'SELECT fid FROM {_q(FIRE_TABLE)} '
            'WHERE head IN (SELECT id FROM "__rq_dead")'
        )
        conn.execute(
            'INSERT OR IGNORE INTO "__rq_deadfid" '
            f'SELECT fid FROM {_q(BODY_TABLE)} '
            'WHERE body IN (SELECT id FROM "__rq_dead")'
        )
        conn.execute(
            f"DELETE FROM {_q(FIRE_TABLE)} "
            'WHERE fid IN (SELECT fid FROM "__rq_deadfid")'
        )
        conn.execute(
            f"DELETE FROM {_q(BODY_TABLE)} "
            'WHERE fid IN (SELECT fid FROM "__rq_deadfid")'
        )
        conn.execute('DELETE FROM "__rq_dead"')
        conn.execute('DELETE FROM "__rq_deadfid"')
        self._bump_epoch()

    # -- interval encoding ---------------------------------------------------

    def ensure_encoding(self) -> bool:
        """(Re)build the interval table if the epoch moved; returns
        whether the current encoding is tree-exact (ancestor tests may
        use the range predicate).  Lazy: only the first query of an
        epoch pays, and non-forest graphs fail the cheap probes fast
        and fall back to the recursive-CTE path."""
        conn = self.store.connection
        epoch = self.epoch
        if int(self.store.meta_get("index_enc_epoch") or -1) == epoch:
            return bool(int(self.store.meta_get("index_tree_exact") or 0))
        tree_exact = self._try_encode()
        self.store.meta_set("index_enc_epoch", epoch)
        self.store.meta_set("index_tree_exact", 1 if tree_exact else 0)
        if not tree_exact:
            with conn:
                conn.execute(f"DELETE FROM {_q(INFO_TABLE)}")
        return tree_exact

    def _try_encode(self) -> bool:
        """Attempt the forest interval encoding.  Tree-exact iff every
        fire has exactly one body (a multi-body rule makes the
        derivation a true hyperedge) and every tuple is the head of at
        most one fire (multiple derivations merge cones)."""
        conn = self.store.connection
        # Body probe first: it fails immediately on any multi-body
        # rule, so e.g. join-shaped programs pay two cheap probes and
        # nothing else.
        multi_body = conn.execute(
            f"SELECT 1 FROM {_q(BODY_TABLE)} GROUP BY fid "
            "HAVING COUNT(*) > 1 LIMIT 1"
        ).fetchone()
        if multi_body:
            return False
        multi_head = conn.execute(
            f"SELECT 1 FROM {_q(FIRE_TABLE)} GROUP BY head "
            "HAVING COUNT(*) > 1 LIMIT 1"
        ).fetchone()
        if multi_head:
            return False
        (edges,) = conn.execute(
            f"SELECT COUNT(*) FROM {_q(FIRE_TABLE)}"
        ).fetchone()
        if edges > ENCODING_CAP:
            return False
        # parent(head) = body: each derived tuple hangs under its one
        # supporting tuple; roots are the EDB leaves.  An iterative
        # DFS assigns pre/post-order windows — n is an ancestor-or-self
        # of q iff tin[n] <= tin[q] <= tout[n].
        parent: dict[int, int] = {}
        children: dict[int, list[int]] = {}
        nodes: set[int] = set()
        for head, body in conn.execute(
            f"SELECT f.head, b.body FROM {_q(FIRE_TABLE)} AS f "
            f"JOIN {_q(BODY_TABLE)} AS b ON b.fid = f.fid"
        ):
            parent[head] = body
            children.setdefault(body, []).append(head)
            nodes.add(head)
            nodes.add(body)
        roots = sorted(n for n in nodes if n not in parent)
        info: list[tuple[int, int, int, int]] = []
        clock = 0
        for root in roots:
            # (node, layer, child cursor) — iterative to survive long
            # derivation chains.
            stack: list[list[int]] = [[root, 0, 0]]
            tin: dict[int, int] = {}
            while stack:
                frame = stack[-1]
                node, layer, cursor = frame
                if cursor == 0:
                    clock += 1
                    tin[node] = clock
                kids = children.get(node, ())
                if cursor < len(kids):
                    frame[2] += 1
                    stack.append([kids[cursor], layer + 1, 0])
                else:
                    info.append((node, layer, tin[node], clock))
                    stack.pop()
        # Nodes reached by no root (cycles) get no info row; queries on
        # them fall back to the CTE per-query.  That is only possible
        # with cyclic programs, which the forest probes usually reject
        # earlier anyway.
        with conn:
            conn.execute(f"DELETE FROM {_q(INFO_TABLE)}")
            conn.executemany(
                f"INSERT INTO {_q(INFO_TABLE)} (id, layer, tin, tout) "
                "VALUES (?, ?, ?, ?)",
                info,
            )
        return True

    # -- query substrate -----------------------------------------------------

    def _clear_ids(self, *tables: str) -> None:
        conn = self.store.connection
        for table in tables:
            conn.execute(f"DELETE FROM {_q(table)}")

    def fill_ancestors(self, qid: int) -> None:
        """Fill ``__rq_anc`` with the ancestor-or-self closure of the
        node *qid* — via the interval predicate when the encoding is
        tree-exact and covers the node, else one recursive CTE over
        the integer edge set."""
        self._ensure_temps()
        conn = self.store.connection
        self._clear_ids("__rq_anc")
        if self.ensure_encoding():
            row = conn.execute(INTERVAL_PROBE_SQL, (qid,)).fetchone()
            if row is not None:
                (t,) = row
                conn.execute(
                    'INSERT INTO "__rq_anc" ' + INTERVAL_WINDOW_SQL,
                    (t, t),
                )
                return
            # A stored node with no info row has no edges at all: its
            # closure is itself.
            conn.execute('INSERT INTO "__rq_anc" VALUES (?)', (qid,))
            return
        conn.execute('INSERT INTO "__rq_anc" ' + ANCESTOR_CTE_SQL, (qid,))

    def annotate_fixpoint(
        self,
        seed: Callable[[str, int], int],
        edb_relations: Sequence[str],
        distrusted: Iterable[str] = (),
        max_iterations: int | None = None,
    ) -> tuple[int, int]:
        """Integer liveness fixpoint over the index.

        *seed* stages each EDB relation's seed ids into
        ``__rq_live``/``__rq_delta`` (given the relation and its id
        base; returns the count).  Each round promotes every fire whose
        rule is trusted, whose body touches the delta, and whose body
        ids are all live.  Returns ``(iterations, live_fires)`` —
        matching the unindexed fixpoint's ``(iterations,
        pm_rows_scanned)`` shape.
        """
        self._ensure_temps()
        conn = self.store.connection
        self._clear_ids("__rq_live", "__rq_delta", "__rq_new", "__rq_distrust")
        seeded = 0
        for relation in edb_relations:
            base = self.id_base(relation)
            if base is None:
                continue
            seeded += seed(relation, base)
        conn.executemany(
            'INSERT OR IGNORE INTO "__rq_distrust" VALUES (?)',
            [(name,) for name in distrusted],
        )
        round_sql = (
            'INSERT OR IGNORE INTO "__rq_new" '
            f"SELECT f.head FROM {_q(FIRE_TABLE)} AS f "
            f"WHERE f.fid IN (SELECT b.fid FROM {_q(BODY_TABLE)} AS b "
            '  JOIN "__rq_delta" AS d ON b.body = d.id) '
            'AND f.rule NOT IN (SELECT rule FROM "__rq_distrust") '
            'AND NOT EXISTS (SELECT 1 FROM "__rq_live" AS l '
            "  WHERE l.id = f.head) "
            f'AND NOT EXISTS (SELECT 1 FROM {_q(BODY_TABLE)} AS b2 '
            "  WHERE b2.fid = f.fid AND NOT EXISTS ("
            '    SELECT 1 FROM "__rq_live" AS l2 WHERE l2.id = b2.body))'
        )
        iterations = 0
        delta = seeded
        while delta:
            iterations += 1
            if max_iterations is not None and iterations > max_iterations:
                raise EvaluationError(
                    f"derivability fixpoint did not converge within "
                    f"{max_iterations} iterations"
                )
            conn.execute(round_sql)
            conn.execute(
                'INSERT OR IGNORE INTO "__rq_live" '
                'SELECT id FROM "__rq_new"'
            )
            self._clear_ids("__rq_delta")
            conn.execute(
                'INSERT INTO "__rq_delta" SELECT id FROM "__rq_new"'
            )
            (delta,) = conn.execute(
                'SELECT COUNT(*) FROM "__rq_new"'
            ).fetchone()
            self._clear_ids("__rq_new")
        (live_fires,) = conn.execute(
            f"SELECT COUNT(*) FROM {_q(FIRE_TABLE)} AS f "
            'WHERE f.rule NOT IN (SELECT rule FROM "__rq_distrust") '
            f"AND NOT EXISTS (SELECT 1 FROM {_q(BODY_TABLE)} AS b "
            "  WHERE b.fid = f.fid AND NOT EXISTS ("
            '    SELECT 1 FROM "__rq_live" AS l WHERE l.id = b.body))'
        ).fetchone()
        return iterations, int(live_fires)

    def live_ids(self, relation: str) -> set[int]:
        """The ``__rq_live`` ids in *relation*'s id range (PK range
        scan on the temp table)."""
        base = self.id_base(relation)
        if base is None:
            return set()
        return {
            int(i)
            for (i,) in self.store.connection.execute(
                'SELECT id FROM "__rq_live" WHERE id >= ? AND id < ?',
                (base, base + REL_SHIFT),
            )
        }

    def closure_scanned(self) -> int:
        """Fires whose head is in the filled ancestor closure — the
        indexed analogue of the walk's visited-firing count."""
        (scanned,) = self.store.connection.execute(
            f"SELECT COUNT(*) FROM {_q(FIRE_TABLE)} "
            'WHERE head IN (SELECT id FROM "__rq_anc")'
        ).fetchone()
        return int(scanned)

    def closure_leaf_rows(
        self, relation: str, catalog: Catalog
    ) -> list:
        """Decoded rows of *relation* in the ancestor closure."""
        base = self.id_base(relation)
        if base is None:
            return []
        schema = catalog[relation]
        codec = self.store.codec
        cursor = self.store.connection.execute(
            f"SELECT r.* FROM {_q(relation)} AS r "
            'JOIN "__rq_anc" AS a ON a.id = r.rowid + ?',
            (base,),
        )
        return [codec.decode_row(raw, schema) for raw in cursor]

    # -- caches --------------------------------------------------------------

    def nodes_with_ids(self, relation: str, catalog: Catalog) -> list:
        """``[(id, TupleNode), ...]`` for every stored row of
        *relation*, cached per epoch (the decode is the dominant cost
        of whole-instance annotation queries; relations above
        :data:`NODE_CACHE_CAP` rows are streamed uncached)."""
        from repro.provenance.graph import TupleNode

        epoch = self.epoch
        if self._node_cache_epoch != epoch:
            self._node_cache.clear()
            self._node_cache_epoch = epoch
        cached = self._node_cache.get(relation)
        if cached is not None:
            return cached
        base = self.id_base(relation)
        schema = catalog[relation]
        codec = self.store.codec
        rows = [
            (base + rowid, TupleNode(relation, codec.decode_row(raw, schema)))
            for rowid, *raw in self.store.connection.execute(
                f"SELECT rowid, * FROM {_q(relation)}"
            )
        ]
        if len(rows) <= NODE_CACHE_CAP:
            self._node_cache[relation] = rows
        return rows

    def cached_result(self, key: object) -> tuple | None:
        """The cached payload for *key* if it was stored under the
        current epoch, else None."""
        entry = self._result_cache.get(key)
        if entry is not None and entry[0] == self.epoch:
            return entry[1:]
        return None

    def cache_result(self, key: object, *payload: object) -> None:
        if len(self._result_cache) >= RESULT_CACHE_CAP:
            self._result_cache.pop(next(iter(self._result_cache)))
        self._result_cache[key] = (self.epoch, *payload)
