"""Set-oriented semi-naive update exchange inside SQLite.

This is the out-of-core counterpart of
:func:`repro.datalog.evaluation.evaluate`: every semi-naive round runs
*whole delta batches* as one SQL statement per compiled plan, instead
of enumerating candidate rows in Python.  The round structure mirrors
the in-memory engine exactly, so both engines produce identical
instances and provenance graphs:

1. every plan whose seed relation has a non-empty delta fires as one
   ``INSERT INTO __fired_<rule> SELECT DISTINCT ...`` join over the
   frozen relation mirror and the ``__delta_*`` tables;
2. the round's fresh firings drive the head inserts (into per-relation
   candidate tables) and the ``P_m`` provenance-relation maintenance
   (Section 4.1) — all inside one transaction per round;
3. at round end, distinct candidates not already stored become the next
   delta and are published to the relation mirror — insertions never
   join within the round that produced them (snapshot semantics).

The provenance graph is written back *lazily*: firings accumulate in
relational form during the fixpoint and are converted to
:class:`~repro.provenance.graph.DerivationNode` objects (and the head
tuples inserted into the Python instance) in a single batched pass
after convergence.

:class:`ExchangeStore` owns the SQLite database (``:memory:`` or an
on-disk path for out-of-core workloads), keeps one
:class:`~repro.storage.encoding.ValueCodec` so labeled nulls intern
consistently, and registers the ``repro_skolem`` SQL function that
builds Skolem values inside queries.
"""

from __future__ import annotations

import os
import sqlite3
from typing import Callable, Iterable, Mapping as TMapping

from repro.cdss.mapping import SchemaMapping
from repro.datalog.evaluation import EvaluationResult
from repro.datalog.planner import ground_extractors
from repro.datalog.terms import SkolemValue
from repro.errors import EvaluationError, ExchangeError
from repro.exchange.cache import CompiledExchangeProgram
from repro.exchange.graph_queries import LineageSQL, run_liveness_fixpoint
from repro.exchange.reach_index import ReachabilityIndex, lower_reach_program
from repro.exchange.sql_plans import (
    DerivabilitySQL,
    ProgramSQL,
    anc_cand_table,
    anc_delta_table,
    anc_new_table,
    anc_table,
    cand_table,
    delta_table,
    kill_sql,
    live_cand_table,
    live_delta_table,
    live_new_table,
    live_table,
    lower_derivability_program,
    lower_program,
    new_table,
    pm_gc_sql,
    slot_column,
    stage_new_sql,
)
from repro.obs.sqlite_hook import StatementTrace, statement_fingerprint
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.provenance.graph import DerivationNode, ProvenanceGraph, TupleNode
from repro.relational.instance import Catalog, ChangeMark, Instance, Row
from repro.relational.schema import RelationSchema, is_local_name
from repro.storage.encoding import ValueCodec, quote_identifier as _q


#: writer-side SQLITE_BUSY grace period for durable (WAL) stores, in
#: milliseconds.  Readers in repro.serve never hold write locks, so the
#: timeout only matters for rare shm/recovery contention; bounded
#: exponential-backoff retries on top of it live in repro.serve.retry.
BUSY_TIMEOUT_MS = 5_000


def normalize_store_path(path: "str | os.PathLike[str]") -> str:
    """Canonical identity of a store file.

    Two spellings of the same file (relative vs. absolute, ``..``
    segments) must compare equal wherever a store is pinned or reopened
    by path — and a relative spelling must not silently start naming a
    *different* file after an ``os.chdir``.  ``":memory:"`` is its own
    identity.
    """
    path = os.fspath(path)
    return path if path == ":memory:" else os.path.abspath(path)


def _skolem_function(codec: ValueCodec):
    """The ``repro_skolem(name, types_csv, *args)`` SQL function.

    Decodes each argument by its declared type tag, builds the
    :class:`SkolemValue`, and returns its interned string encoding so
    equal labeled nulls compare equal inside SQL joins.
    """

    def repro_skolem(function: str, types_csv: str, *args: object) -> object:
        types = types_csv.split(",") if types_csv else []
        values = tuple(
            codec.decode(value, type_) for value, type_ in zip(args, types)
        )
        return codec.encode(SkolemValue(function, values))

    return repro_skolem


class ExchangeStore:
    """SQLite database mirroring a CDSS instance for SQL exchange.

    ``path=":memory:"`` keeps everything in RAM; any other path puts
    the working set on disk, which is the out-of-core mode (instances
    larger than memory join fine — SQLite pages them).  The store is
    reusable across incremental :meth:`CDSS.exchange` calls and is a
    context manager.

    The mirror is maintained *incrementally*: :meth:`sync_instance`
    reads each relation's change journal and ships only what moved
    since this store's high-water mark (see the method docstring), so
    a repeat exchange over unchanged relations transfers zero rows.
    In store-resident exchange the mirror is not a mirror at all but
    the authoritative instance — only local-contribution relations
    are ever synced *into* it.

    Dedicate a store to one CDSS for its lifetime: ``P_m`` provenance
    rows accumulate across incremental calls (they mirror the growing
    provenance graph), so pointing a second system at the same store
    would leave the first system's rows behind.  ``P_m`` is the
    *firing history*; deletion propagation keeps it honest: the
    relational DERIVABILITY fixpoint
    (:meth:`SQLiteExchangeEngine.propagate_deletions`) garbage-collects
    the rows whose firing lost a supporting antecedent, and the
    graph-path propagation of a non-resident system reconciles the
    store's ``P_m`` via :meth:`delete_provenance_rows` — so the firing
    history no longer retains derivations the graph collected.
    """

    def __init__(self, path: str = ":memory:"):
        self.path = normalize_store_path(path)
        self.codec = ValueCodec()
        # A large statement cache: the maintained-index query paths
        # re-execute a small set of SQL strings on every call, and
        # sqlite3 skips re-preparing a statement whose exact text is
        # cached — the "prepared statement reuse" half of the index's
        # warm-query latency (see :meth:`prepared`).
        self.connection = sqlite3.connect(self.path, cached_statements=512)
        self.connection.execute("PRAGMA synchronous = OFF")
        self.connection.execute("PRAGMA journal_mode = MEMORY")
        self.connection.create_function(
            "repro_skolem", -1, _skolem_function(self.codec), deterministic=True
        )
        self.closed = False
        self._durable = False
        self._known_tables: set[str] = set()
        #: per-relation journal high-water marks of the mirrored
        #: instance (see :meth:`sync_instance`).
        self._marks: dict[str, ChangeMark] = {}
        #: the instance the marks describe; syncing a different object
        #: resets them (marks are only comparable within one instance).
        self._mirrored: Instance | None = None
        #: per-relation row counts, maintained by sync/publish so
        #: resident-mode exchanges never rescan whole tables with
        #: COUNT(*) (see :meth:`cached_count`).
        self._row_counts: dict[str, int] = {}
        #: program fingerprints whose :meth:`ensure_schema` DDL already
        #: ran on this connection (tables are never dropped, so one
        #: pass per program suffices — repeated graph queries skip the
        #: whole CREATE TABLE IF NOT EXISTS sweep).
        self._schema_ready: set[str] = set()
        #: built-SQL cache backing :meth:`prepared`, plus its counters.
        self._prepared: dict[object, str] = {}
        self.prepared_hits = 0
        self.prepared_misses = 0
        self._reach_index: ReachabilityIndex | None = None
        # The dirty-run flag lives in the database file, not on this
        # object: an aborted resident run must still trigger recovery
        # after the store is reopened by path (or in a new process).
        self.connection.execute(
            'CREATE TABLE IF NOT EXISTS "__meta" (key TEXT PRIMARY KEY, value)'
        )
        self.connection.commit()
        row = self.connection.execute(
            "SELECT value FROM \"__meta\" WHERE key = 'dirty_run'"
        ).fetchone()
        self._dirty_run = bool(row and row[0])

    def ensure_durable(self) -> None:
        """Trade write speed for crash safety before a resident run.

        A mirror keeps the fast defaults (``synchronous = OFF``,
        in-memory rollback journal): a crash can only cost a rebuild
        from the Python instance.  A *resident* store is the only copy
        of the derived data, so an on-disk one is switched to WAL with
        ``synchronous = NORMAL`` — a killed process can then never
        corrupt the file, and WAL's append ordering guarantees the
        dirty-run flag (committed before any fixpoint round) reaches
        disk no later than the rounds it covers.  In-memory stores die
        with the process regardless; they keep the fast settings.
        """
        if self._durable or self.path == ":memory:":
            return
        self.connection.execute("PRAGMA journal_mode = WAL")
        self.connection.execute("PRAGMA synchronous = NORMAL")
        # Read-only serving sessions (repro.serve) may share the file;
        # give writer statements a grace period instead of failing the
        # first SQLITE_BUSY (bounded retries on top live in repro.serve).
        self.connection.execute(f"PRAGMA busy_timeout = {BUSY_TIMEOUT_MS}")
        self._durable = True

    def checkpoint(self, mode: str = "PASSIVE") -> tuple[int, int, int]:
        """Run ``PRAGMA wal_checkpoint`` and report SQLite's result.

        Returns ``(busy, wal_pages, moved_pages)``: ``busy`` is 1 when a
        concurrent reader's pinned snapshot prevented the checkpoint
        from completing (SQLite reports this in the result row rather
        than raising).  Writers serving concurrent readers should
        checkpoint ``PASSIVE`` during traffic and reserve blocking modes
        (``TRUNCATE``/``RESTART``) for quiescent points, retrying with
        backoff while ``busy`` is set — see docs/serving.md.
        """
        if mode not in ("PASSIVE", "FULL", "RESTART", "TRUNCATE"):
            raise ExchangeError(f"unknown checkpoint mode: {mode!r}")
        if self.connection.in_transaction:
            # Graph queries populate TEMP work tables, which opens an
            # implicit transaction the dbapi never closes; a checkpoint
            # on a connection with an open transaction raises instead
            # of reporting busy.  All real mutations commit at their
            # own boundaries, so ending the dangling transaction here
            # is safe — and required for the discipline to work.
            self.connection.commit()
        row = self.connection.execute(
            f"PRAGMA wal_checkpoint({mode})"
        ).fetchone()
        return (int(row[0]), int(row[1]), int(row[2]))

    @property
    def dirty_run(self) -> bool:
        """True while an engine run is in flight (persisted in the
        store file).  A run that aborts leaves it set, telling the next
        resident run to re-seed from the full store extension —
        committed partial rounds cannot be rolled back, only
        completed — even across a close/reopen of an on-disk store."""
        return self._dirty_run

    @dirty_run.setter
    def dirty_run(self, value: bool) -> None:
        self._dirty_run = bool(value)
        self.meta_set("dirty_run", 1 if value else 0)

    def meta_get(self, key: str) -> object:
        """One value from the store's persisted ``__meta`` table (None
        when absent).  This is durable, per-store-file state: a store
        reopened by path (resident mode's recovery story) reads the
        same values, which is how the reachability index's epoch and
        current/stale flag survive a process restart."""
        row = self.connection.execute(
            'SELECT value FROM "__meta" WHERE key = ?', (key,)
        ).fetchone()
        return row[0] if row else None

    def meta_set(self, key: str, value: object) -> None:
        """Persist one ``__meta`` value.  Transaction-aware: inside an
        open transaction the write rides it (so e.g. an index-epoch
        bump commits or rolls back atomically with the maintenance that
        caused it); outside one it commits immediately."""
        sql = 'INSERT OR REPLACE INTO "__meta" (key, value) VALUES (?, ?)'
        if self.connection.in_transaction:
            self.connection.execute(sql, (key, value))
        else:
            with self.connection:
                self.connection.execute(sql, (key, value))

    @property
    def reach_index(self) -> ReachabilityIndex:
        """The store's maintained reachability index handle
        (:mod:`repro.exchange.reach_index`), created lazily.  Creating
        the handle touches nothing: all index state lives in the store
        file, so on a reopened store the handle simply adopts whatever
        epoch/state the file recorded (``docs/graph-index.md``)."""
        if self._reach_index is None:
            self._reach_index = ReachabilityIndex(self)
        return self._reach_index

    def prepared(self, key: object, builder: "Callable[[], str]") -> str:
        """The SQL string built by *builder*, cached under *key*.

        Reusing the identical string object lets sqlite3's
        statement cache (sized in ``__init__``) skip re-preparing it —
        the per-call overhead that dominates sub-millisecond indexed
        graph queries.  Keys follow the lowering caches' convention:
        a tuple of (purpose, relation/rule, ...) identifying the shape.
        """
        sql = self._prepared.get(key)
        if sql is None:
            sql = self._prepared[key] = builder()
            self.prepared_misses += 1
        else:
            self.prepared_hits += 1
        return sql

    # -- schema ------------------------------------------------------------

    def _create_table(self, name: str, columns: tuple[str, ...]) -> None:
        # Columns are intentionally typeless (BLOB affinity): the store
        # must preserve encoded values exactly as bound, with no column
        # affinity coercion (e.g. TEXT affinity turning ints into text).
        cols = ", ".join(_q(c) for c in columns)
        self.connection.execute(
            f"CREATE TABLE IF NOT EXISTS {_q(name)} ({cols})"
        )
        self._known_tables.add(name)

    def ensure_schema(
        self,
        catalog: Catalog,
        mappings: TMapping[str, SchemaMapping],
        sql: ProgramSQL,
        token: str | None = None,
    ) -> None:
        """Create (idempotently) every table and index the program needs.

        *token* (the compiled program's fingerprint, which covers the
        catalog via the per-relation local rules) memoizes the sweep:
        once it has run on this connection for a given program, later
        calls return immediately — this keeps warm graph queries from
        re-issuing a few hundred ``CREATE TABLE IF NOT EXISTS``
        statements per call."""
        if token is not None and token in self._schema_ready:
            return
        for schema in catalog:
            for name in (
                schema.name,
                delta_table(schema.name),
                new_table(schema.name),
                cand_table(schema.name),
            ):
                self._create_table(name, schema.attribute_names)
            dcols = ", ".join(_q(c) for c in schema.attribute_names)
            self.connection.execute(
                f"CREATE INDEX IF NOT EXISTS "
                f"{_q('__ix_' + delta_table(schema.name))} "
                f"ON {_q(delta_table(schema.name))} ({dcols})"
            )
        for rule in sql.rules:
            self._create_table(
                rule.firing_table,
                tuple(slot_column(s) for s in range(rule.num_slots)),
            )
        for mapping in mappings.values():
            if mapping.is_superfluous or not mapping.provenance_columns:
                continue
            schema = mapping.provenance_schema()
            self._create_table(schema.name, schema.attribute_names)
            # Indexed on every column (as in the paper's storage layer):
            # the per-round dedup probe and path traversals may enter a
            # provenance relation from either side.
            for attribute in schema.attribute_names:
                self.connection.execute(
                    f"CREATE INDEX IF NOT EXISTS "
                    f"{_q(f'__ix_{schema.name}__{attribute}')} "
                    f"ON {_q(schema.name)} ({_q(attribute)})"
                )
        for relation, positions in sql.index_requirements:
            if relation not in catalog:
                continue
            names = catalog[relation].attribute_names
            cols = ", ".join(_q(names[p]) for p in positions)
            suffix = "_".join(str(p) for p in positions)
            self.connection.execute(
                f"CREATE INDEX IF NOT EXISTS "
                f"{_q(f'__ix_{relation}__{suffix}')} "
                f"ON {_q(relation)} ({cols})"
            )
        self.connection.commit()
        if token is not None:
            self._schema_ready.add(token)

    def ensure_derivability_schema(
        self, catalog: Catalog, dsql: DerivabilitySQL
    ) -> None:
        """Create (idempotently) the deletion-propagation work tables:
        per-relation live/delta/candidate/new stages (the live table
        indexed on all columns — the kill sweep probes it once per
        stored row), per-rule live-firing tables, and per-mapping
        surviving-``P_m`` projections."""
        for relation in dsql.relations:
            schema = catalog[relation]
            for name in (
                live_table(relation),
                live_delta_table(relation),
                live_cand_table(relation),
                live_new_table(relation),
            ):
                self._create_table(name, schema.attribute_names)
            cols = ", ".join(_q(c) for c in schema.attribute_names)
            self.connection.execute(
                f"CREATE INDEX IF NOT EXISTS "
                f"{_q('__ix_' + live_table(relation))} "
                f"ON {_q(live_table(relation))} ({cols})"
            )
        for rule in dsql.rules:
            self._create_table(
                rule.firing_table,
                tuple(slot_column(s) for s in range(rule.num_slots)),
            )
        for _name, _pm_table, live_pm, columns in dsql.pm_tables:
            self._create_table(live_pm, columns)
            cols = ", ".join(_q(c) for c in columns)
            self.connection.execute(
                f"CREATE INDEX IF NOT EXISTS {_q('__ix_' + live_pm)} "
                f"ON {_q(live_pm)} ({cols})"
            )
        self.connection.commit()

    def ensure_graph_query_schema(
        self, catalog: Catalog, lsql: LineageSQL
    ) -> None:
        """Create (idempotently) the lineage walk's closure-staging
        tables: per-relation ancestor/delta/candidate/new stages (the
        ancestor table indexed on all columns — the round-end stage
        probes it once per candidate) and per-rule visited-firing
        tables (indexed on all slots for the walk's dedup probe)."""
        for relation in lsql.relations:
            schema = catalog[relation]
            for name in (
                anc_table(relation),
                anc_delta_table(relation),
                anc_cand_table(relation),
                anc_new_table(relation),
            ):
                self._create_table(name, schema.attribute_names)
            cols = ", ".join(_q(c) for c in schema.attribute_names)
            self.connection.execute(
                f"CREATE INDEX IF NOT EXISTS "
                f"{_q('__ix_' + anc_table(relation))} "
                f"ON {_q(anc_table(relation))} ({cols})"
            )
        for rule in lsql.rules:
            columns = tuple(slot_column(s) for s in range(rule.num_slots))
            self._create_table(rule.firing_table, columns)
            if columns:
                cols = ", ".join(_q(c) for c in columns)
                self.connection.execute(
                    f"CREATE INDEX IF NOT EXISTS "
                    f"{_q('__ix_' + rule.firing_table)} "
                    f"ON {_q(rule.firing_table)} ({cols})"
                )
        self.connection.commit()

    def reset_graph_query(self, lsql: LineageSQL) -> None:
        """Clear every lineage-walk work table (before a query, and
        again after it so closures — potentially as large as the
        query node's full ancestry — do not linger on disk)."""
        with self.connection:
            for relation in lsql.relations:
                for name in (
                    anc_table(relation),
                    anc_delta_table(relation),
                    anc_cand_table(relation),
                    anc_new_table(relation),
                ):
                    self.connection.execute(f"DELETE FROM {_q(name)}")
            for rule in lsql.rules:
                self.connection.execute(f"DELETE FROM {_q(rule.firing_table)}")

    def reset_derivability(self, dsql: DerivabilitySQL) -> None:
        """Clear every deletion-propagation work table (before a run,
        and again after it so the live sets — as large as the surviving
        instance — do not linger on disk)."""
        with self.connection:
            for relation in dsql.relations:
                for name in (
                    live_table(relation),
                    live_delta_table(relation),
                    live_cand_table(relation),
                    live_new_table(relation),
                ):
                    self.connection.execute(f"DELETE FROM {_q(name)}")
            for rule in dsql.rules:
                self.connection.execute(f"DELETE FROM {_q(rule.firing_table)}")
            for _name, _pm_table, live_pm, _columns in dsql.pm_tables:
                self.connection.execute(f"DELETE FROM {_q(live_pm)}")

    # -- per-run state ------------------------------------------------------

    def reset_run(self, catalog: Catalog, sql: ProgramSQL) -> None:
        """Clear firing logs and working tables for a fresh run."""
        with self.connection:
            for rule in sql.rules:
                self.connection.execute(f"DELETE FROM {_q(rule.firing_table)}")
            for schema in catalog:
                for name in (
                    delta_table(schema.name),
                    new_table(schema.name),
                    cand_table(schema.name),
                ):
                    self.connection.execute(f"DELETE FROM {_q(name)}")

    def sync_instance(
        self, instance: Instance, resident: bool = False
    ) -> tuple[int, int]:
        """Incrementally mirror the Python instance into the store.

        Consults each relation's change journal
        (:meth:`~repro.relational.instance.Instance.change_mark`)
        against this store's high-water marks and ships only what
        moved: appended rows go over as batched INSERTs; a relation
        that saw a deletion (epoch change) — or was never synced — is
        reloaded in full.  Unchanged relations cost one mark
        comparison and zero SQL.

        With ``resident=True`` only local-contribution relations are
        mirrored from the instance: the store itself is the
        authoritative home of every derived relation, so the mirror
        must never be overwritten from the (empty) Python side.

        Returns ``(rows_mirrored, relations_synced)``.
        """
        if self._mirrored is not instance:
            self._marks.clear()
            self._mirrored = instance
        rows_mirrored = 0
        relations_synced = 0
        # High-water marks and row counts advance only after the
        # transaction commits: a failure mid-sync rolls back every
        # shipped row, so both must keep describing the pre-sync store.
        new_marks: dict[str, ChangeMark] = {}
        new_counts: dict[str, int] = {}
        with self.connection:
            for schema in instance.catalog:
                name = schema.name
                if resident and not is_local_name(name):
                    continue
                current = instance.change_mark(name)
                if self._marks.get(name) == current:
                    continue
                appended = instance.changes_since(name, self._marks.get(name))
                if appended is None:
                    self.connection.execute(f"DELETE FROM {_q(name)}")
                    appended = sorted(instance[name], key=repr)
                    new_counts[name] = len(appended)
                    # The full reload renumbers the relation's rowids,
                    # invalidating every node id the reachability index
                    # may hold for it.
                    self.reach_index.note_renumbered()
                elif name in self._row_counts:
                    new_counts[name] = self._row_counts[name] + len(appended)
                if appended:
                    placeholders = ", ".join("?" for _ in range(schema.arity))
                    self.connection.executemany(
                        f"INSERT INTO {_q(name)} VALUES ({placeholders})",
                        [self.codec.encode_row(row) for row in appended],
                    )
                rows_mirrored += len(appended)
                relations_synced += 1
                new_marks[name] = current
            if rows_mirrored:
                # Stored content changed: epoch-keyed query caches
                # over the reachability index must go cold, even when
                # the index structure itself is untouched (appended
                # base rows have no firings yet).
                self.reach_index.note_content_shipped()
        self._marks.update(new_marks)
        self._row_counts.update(new_counts)
        return rows_mirrored, relations_synced

    def mark_synced(self, instance: Instance) -> None:
        """Fast-forward every high-water mark to *instance*'s current
        journal position without shipping rows — called by the engine
        after write-back, when the mirror already holds exactly the
        rows it just inserted into the instance."""
        if self._mirrored is not instance:  # pragma: no cover - defensive
            return
        for schema in instance.catalog:
            self._marks[schema.name] = instance.change_mark(schema.name)

    def invalidate_sync(self) -> None:
        """Forget all high-water marks (and cached row counts): the
        next sync reloads every relation in full.  Called when a run
        aborts mid-flight and the mirror may have drifted from the
        instance."""
        self._marks.clear()
        self._mirrored = None
        self._row_counts.clear()

    def cached_count(self, relation: str) -> int:
        """Rows in *relation*, from the count cache kept current by
        :meth:`sync_instance` and :meth:`note_rows_added` — one
        COUNT(*) scan per relation per store lifetime, after which
        incremental exchanges never rescan (resident mode's tables may
        hold working sets far larger than memory)."""
        count = self._row_counts.get(relation)
        if count is None:
            count = self._row_counts[relation] = self.count(relation)
        return count

    def note_rows_added(self, relation: str, added: int) -> None:
        """Advance the count cache for rows the engine just published
        into *relation* (no-op for relations never counted)."""
        if relation in self._row_counts:
            self._row_counts[relation] += added

    def note_rows_removed(self, relation: str, removed: int) -> None:
        """Rewind the count cache for rows deletion propagation just
        killed in *relation* (no-op for relations never counted)."""
        if relation in self._row_counts:
            self._row_counts[relation] = max(
                0, self._row_counts[relation] - removed
            )

    def relation_in_sync(self, instance: Instance, relation: str) -> bool:
        """True iff *relation*'s store table provably matches the
        instance (the high-water mark is current), so a mutation
        applied to both sides keeps them in lockstep."""
        return (
            self._mirrored is instance
            and self._marks.get(relation) == instance.change_mark(relation)
        )

    def fast_forward_mark(self, instance: Instance, relation: str) -> None:
        """Advance one relation's high-water mark to the instance's
        current journal position — called after the same mutation was
        applied to both sides, so the next sync ships nothing instead
        of epoch-reloading the whole relation."""
        if self._mirrored is instance:
            self._marks[relation] = instance.change_mark(relation)

    def delete_relation_row(self, schema: RelationSchema, row: Row) -> bool:
        """Delete one row from *schema*'s table (deletion-victim
        marking), keeping the count cache current.

        When the maintained reachability index is current and covers
        the relation, the victim's incident fires are removed in the
        same transaction (``docs/graph-index.md``), so the index stays
        *current* across targeted resident deletions — queries issued
        before ``propagate_deletions`` answer from it without a
        rebuild, over exactly the store the unindexed paths would see.
        """
        condition = " AND ".join(
            f"{_q(c)} IS ?" for c in schema.attribute_names
        )
        encoded = self.codec.encode_row(row)
        with self.connection:
            rowid = None
            index = self.reach_index
            if index.maintains(schema.name):
                found = self.connection.execute(
                    f"SELECT rowid FROM {_q(schema.name)} WHERE {condition}",
                    encoded,
                ).fetchone()
                if found is not None:
                    rowid = int(found[0])
            cursor = self.connection.execute(
                f"DELETE FROM {_q(schema.name)} WHERE {condition}",
                encoded,
            )
            if cursor.rowcount > 0 and rowid is not None:
                index.on_row_deleted(schema.name, rowid)
        removed = max(cursor.rowcount, 0)
        if removed:
            self.note_rows_removed(schema.name, removed)
        return bool(removed)

    def delete_provenance_rows(
        self, mapping: SchemaMapping, rows: Iterable[Row]
    ) -> None:
        """Garbage-collect specific ``P_m`` rows (the graph-path
        propagation reconciling a non-resident mirror)."""
        schema = mapping.provenance_schema()
        if not self.has_table(schema.name):
            return
        condition = " AND ".join(
            f"{_q(c)} IS ?" for c in schema.attribute_names
        )
        with self.connection:
            self.connection.executemany(
                f"DELETE FROM {_q(schema.name)} WHERE {condition}",
                [self.codec.encode_row(row) for row in rows],
            )

    def relation_rows(self, schema: RelationSchema) -> set[Row]:
        """Decode the mirror's extension of one relation (tests and
        resident-mode readers).  Works on a store reopened by path:
        labeled nulls are rebuilt from their self-describing
        encodings."""
        cursor = self.connection.execute(f"SELECT * FROM {_q(schema.name)}")
        return {self.codec.decode_row(row, schema) for row in cursor}

    def has_table(self, name: str) -> bool:
        if name in self._known_tables:
            return True
        # A store reopened by path holds tables this connection never
        # created; consult the catalog so e.g. P_m garbage collection
        # still finds them.
        row = self.connection.execute(
            "SELECT 1 FROM sqlite_master WHERE type = 'table' AND name = ?",
            (name,),
        ).fetchone()
        if row:
            self._known_tables.add(name)
        return row is not None

    # -- small helpers ------------------------------------------------------

    def max_rowid(self, table: str) -> int:
        (value,) = self.connection.execute(
            f"SELECT COALESCE(MAX(rowid), 0) FROM {_q(table)}"
        ).fetchone()
        return int(value)

    def count(self, table: str) -> int:
        (value,) = self.connection.execute(
            f"SELECT COUNT(*) FROM {_q(table)}"
        ).fetchone()
        return int(value)

    def close(self) -> None:
        if not self.closed:
            self.connection.close()
            self.closed = True

    def __enter__(self) -> "ExchangeStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<ExchangeStore path={self.path!r} {state}>"


class SQLiteExchangeEngine:
    """Runs compiled exchange programs set-at-a-time over a store."""

    def __init__(
        self,
        store: ExchangeStore,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
    ):
        if store.closed:
            raise ExchangeError("exchange store is closed")
        self.store = store
        #: lifecycle tracer (:mod:`repro.obs`); the default no-op
        #: tracer keeps every round statement-hook-free.
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def run(
        self,
        program: CompiledExchangeProgram,
        catalog: Catalog,
        mappings: TMapping[str, SchemaMapping],
        instance: Instance,
        graph: ProvenanceGraph | None = None,
        initial_delta: TMapping[str, set[Row]] | None = None,
        max_iterations: int | None = None,
        resident: bool = False,
    ) -> EvaluationResult:
        """Semi-naive SQL fixpoint; mutates *instance* and *graph*.

        Semantics match :func:`repro.datalog.evaluation.evaluate` with
        the same ``initial_delta`` contract: ``None`` seeds a full
        exchange from the whole instance, a mapping of per-relation row
        sets seeds an incremental one (rows must already be inserted).

        With ``resident=True`` the store is the authoritative home of
        every derived relation: the run still converges inside SQLite,
        but skips the write-back entirely — neither derived tuples nor
        provenance derivations are materialized in Python (firings and
        ``P_m`` rows stay relational), so the working set never has to
        fit in memory.
        """
        if graph is None:
            graph = ProvenanceGraph()
        if program.sql is None:
            program.sql = lower_program(
                program.compiled, catalog, mappings, self.store.codec
            )
        sql = program.sql
        if resident:
            self.store.ensure_durable()
        self.store.ensure_schema(catalog, mappings, sql, program.fingerprint)
        self.store.reset_run(catalog, sql)
        if resident and self.store.dirty_run:
            # A previous resident run aborted after committing some
            # rounds.  Those orphan rows are sound (each committed
            # round derives only valid tuples) but their downstream
            # consequences may be missing, and an incremental delta
            # would dedup them away before re-deriving anything — so
            # re-seed from the full store extension, which converges to
            # the complete fixpoint regardless of what partially
            # committed.  (Non-resident runs heal differently: the full
            # mirror reload after invalidate_sync deletes the orphans.)
            initial_delta = None
        was_current = False
        if resident:
            # Only resident runs consume the flag (non-resident aborts
            # heal via the full mirror reload), so only they pay the
            # two persisted writes.
            self.store.dirty_run = True
            # Resident runs maintain the reachability index: note
            # whether it matched the store *before* this run mutates
            # anything, then persist the stale mark — a crash anywhere
            # below leaves the index correctly marked for a query-time
            # rebuild.
            if program.reach is None:
                program.reach = lower_reach_program(
                    program.compiled, catalog, self.store.codec
                )
            index = self.store.reach_index
            index.ensure_schema(program.reach)
            was_current = index.current
            index.mark_stale()
        elif self.store.meta_get("index_state") is not None:
            # A non-resident run mutates relations without maintaining
            # the index (mirror stores normally have none; this guards
            # a store that once ran resident).
            self.store.reach_index.mark_stale()
        try:
            with StatementTrace(
                self.store.connection, self.tracer
            ) as stmt_trace:
                result = self._run_synced(
                    program, catalog, sql, instance, graph,
                    initial_delta, max_iterations, resident, stmt_trace,
                )
        except BaseException:
            # The mirror may hold rows the aborted run never wrote back
            # to the instance; force a full reload on the next sync.
            # dirty_run stays set for the resident-mode recovery above.
            self.store.invalidate_sync()
            raise
        if resident:
            self.store.reach_index.on_run_complete(
                program.reach,
                full_log=initial_delta is None,
                was_current=was_current,
                tracer=self.tracer,
            )
            self.store.dirty_run = False
        return result

    def _run_synced(
        self,
        program: CompiledExchangeProgram,
        catalog: Catalog,
        sql: ProgramSQL,
        instance: Instance,
        graph: ProvenanceGraph,
        initial_delta: TMapping[str, set[Row]] | None,
        max_iterations: int | None,
        resident: bool,
        stmt_trace: StatementTrace,
    ) -> EvaluationResult:
        conn = self.store.connection
        tracer = self.tracer
        result = EvaluationResult(instance, graph, engine="sqlite")
        with tracer.span("exchange.mirror") as mspan:
            result.rows_mirrored, result.relations_synced = (
                self.store.sync_instance(instance, resident=resident)
            )
            mspan.set("rows", result.rows_mirrored).set(
                "relations", result.relations_synced
            )
        # After the sync the mirror equals the instance, so sizes come
        # from the Python side for free; only in resident mode — where
        # derived relations live in the store alone — must they come
        # from the store (its count cache, not a rescan).
        if resident:
            rel_counts = {
                relation: self.store.cached_count(relation)
                for relation in sql.relations
            }
        else:
            rel_counts = {
                relation: instance.size(relation)
                for relation in sql.relations
            }

        delta_counts = self._seed_deltas(instance, sql, initial_delta, rel_counts)
        stage_sql = {
            relation: stage_new_sql(catalog, relation)
            for relation in sql.relations
        }
        published = 0

        iteration = 0
        while self._any_runnable(sql, delta_counts):
            iteration += 1
            if max_iterations is not None and iteration > max_iterations:
                raise EvaluationError(
                    f"fixpoint did not converge within {max_iterations} "
                    "iterations"
                )
            with tracer.span("exchange.round") as round_span, conn:
                watermarks = {
                    rule.rule_name: self.store.max_rowid(rule.firing_table)
                    for rule in sql.rules
                }
                for rule in sql.rules:
                    for plan in rule.plans:
                        if not delta_counts.get(plan.seed_relation):
                            continue
                        if self._blocked(plan, delta_counts, rel_counts):
                            continue
                        with tracer.span("exchange.statement") as sspan:
                            cursor = conn.execute(
                                plan.statement.sql, dict(plan.statement.params)
                            )
                            if tracer.enabled:
                                stmt_trace.add_rows(max(cursor.rowcount, 0))
                                sspan.set("rule", rule.rule_name).set(
                                    "phase", "firing"
                                ).set(
                                    "fingerprint",
                                    statement_fingerprint(plan.statement.sql),
                                )
                with tracer.span("exchange.publish") as pspan:
                    for rule in sql.rules:
                        watermark = watermarks[rule.rule_name]
                        fired = (
                            self.store.max_rowid(rule.firing_table) - watermark
                        )
                        if fired <= 0:
                            continue
                        result.firings += fired
                        runtime = {"wm": watermark}
                        for statement in rule.head_inserts:
                            conn.execute(
                                statement.sql, {**statement.params, **runtime}
                            )
                        if rule.provenance_insert is not None:
                            conn.execute(
                                rule.provenance_insert.sql,
                                {**rule.provenance_insert.params, **runtime},
                            )
                    new_counts: dict[str, int] = {}
                    for relation in sql.relations:
                        conn.execute(stage_sql[relation])
                        fresh = self.store.count(new_table(relation))
                        conn.execute(
                            f"DELETE FROM {_q(delta_table(relation))}"
                        )
                        if fresh:
                            conn.execute(
                                f"INSERT INTO {_q(relation)} "
                                f"SELECT * FROM {_q(new_table(relation))}"
                            )
                            conn.execute(
                                f"INSERT INTO {_q(delta_table(relation))} "
                                f"SELECT * FROM {_q(new_table(relation))}"
                            )
                            conn.execute(
                                f"DELETE FROM {_q(new_table(relation))}"
                            )
                            new_counts[relation] = fresh
                            rel_counts[relation] = (
                                rel_counts.get(relation, 0) + fresh
                            )
                            self.store.note_rows_added(relation, fresh)
                            published += fresh
                        conn.execute(f"DELETE FROM {_q(cand_table(relation))}")
                    pspan.set(
                        "inserted", sum(new_counts.values())
                    )
                round_span.set("round", iteration)
                delta_counts = new_counts
        result.iterations = iteration
        if resident:
            # The store already holds every derived row; nothing is
            # materialized back into Python.
            result.inserted = published
        else:
            with tracer.span("exchange.writeback") as wspan:
                result.inserted = self._write_back(
                    program, sql, instance, graph
                )
                wspan.set("inserted", result.inserted)
            # Write-back journaled the derived rows as appends, but the
            # mirror already has them — fast-forward instead of
            # reshipping on the next sync.
            self.store.mark_synced(instance)
        return result

    def propagate_deletions(
        self,
        program: CompiledExchangeProgram,
        catalog: Catalog,
        mappings: TMapping[str, SchemaMapping],
        instance: Instance,
        max_iterations: int | None = None,
    ) -> EvaluationResult:
        """Relational deletion propagation (Q5) inside the store.

        Runs after deletion victims were removed from the ``R_l``
        tables (:meth:`ExchangeStore.delete_relation_row` /
        :meth:`ExchangeStore.sync_instance`): an iterative SQL fixpoint
        re-runs the DERIVABILITY test over the firing history — every
        relation's *live* set grows semi-naively from the surviving
        EDB leaves through the rule bodies, so a tuple is killed
        exactly when every firing producing it has a killed antecedent
        (and, because liveness is the *least* fixpoint, cyclically
        self-supporting derivations with no surviving base die too,
        matching the graph engine's Kleene iteration).  Unsupported
        rows are then deleted set-at-a-time and the dead ``P_m`` rows
        garbage-collected, so the firing history stops retaining
        graph-collected derivations.

        Returns an :class:`EvaluationResult` with ``rows_deleted`` /
        ``pm_rows_collected`` / ``iterations`` filled in.  Nothing is
        materialized in Python — the working set stays out-of-core.
        """
        if program.sql is None:
            program.sql = lower_program(
                program.compiled, catalog, mappings, self.store.codec
            )
        if program.derivability is None:
            program.derivability = lower_derivability_program(
                program.compiled, catalog, mappings, self.store.codec
            )
        dsql = program.derivability
        self.store.ensure_schema(
            catalog, mappings, program.sql, program.fingerprint
        )
        self.store.ensure_derivability_schema(catalog, dsql)
        self.store.reset_derivability(dsql)
        try:
            return self._propagate_over_live_tables(
                dsql, catalog, instance, max_iterations
            )
        finally:
            # Win or lose, the live sets — as large as the surviving
            # instance — must not linger on disk.
            self.store.reset_derivability(dsql)

    def _propagate_over_live_tables(
        self,
        dsql: DerivabilitySQL,
        catalog: Catalog,
        instance: Instance,
        max_iterations: int | None,
    ) -> EvaluationResult:
        conn = self.store.connection
        tracer = self.tracer
        result = EvaluationResult(instance, ProvenanceGraph(), engine="sqlite")
        # Bring the store's EDB up to date with the Python side (victim
        # marking already shrank both).  Pending unexchanged local rows
        # ride along and do seed the live set — but their derived
        # consequences are discarded by the stage's stored-row filter
        # (an unexchanged row's heads are not in the relation tables),
        # so, like the graph engine's unrecorded firings, they can
        # neither resurrect a dying tuple nor leak into the P_m
        # projections.
        with tracer.span("exchange.mirror") as mspan:
            result.rows_mirrored, result.relations_synced = (
                self.store.sync_instance(instance, resident=True)
            )
            mspan.set("rows", result.rows_mirrored).set(
                "relations", result.relations_synced
            )

        with tracer.span("deletion.fixpoint") as fspan:
            delta_counts: dict[str, int] = {}
            with conn:
                for relation in dsql.edb_relations:
                    conn.execute(
                        f"INSERT INTO {_q(live_table(relation))} "
                        f"SELECT * FROM {_q(relation)}"
                    )
                    conn.execute(
                        f"INSERT INTO {_q(live_delta_table(relation))} "
                        f"SELECT * FROM {_q(relation)}"
                    )
                    count = self.store.cached_count(relation)
                    if count:
                        delta_counts[relation] = count
            # The loop itself is shared with the derivability/trusted
            # graph queries (they seed differently but grow the same
            # live sets).
            result.iterations, result.pm_rows_scanned = run_liveness_fixpoint(
                self.store, dsql, catalog, delta_counts, max_iterations,
                tracer=tracer,
            )
            fspan.set("rounds", result.iterations).set(
                "firings", result.pm_rows_scanned
            )

        # Kill phase, one transaction: unsupported rows die, dead P_m
        # firing-history rows are garbage-collected alongside.
        pm_collected = 0
        removed_counts: dict[str, int] = {}
        index = self.store.reach_index
        prune = index.current
        with tracer.span("deletion.kill") as kspan, conn:
            if prune:
                # Capture the dying derived rows (by node id) while
                # they are still present; the index prunes exactly
                # their incident fires after the sweeps — or marks
                # itself stale when the cone is too large.  Leaf
                # victims were already cleaned per-delete.
                index.begin_prune(dsql.derived_relations, catalog)
            for relation in dsql.derived_relations:
                cursor = conn.execute(kill_sql(catalog, relation))
                removed = max(cursor.rowcount, 0)
                if removed:
                    removed_counts[relation] = removed
            for _name, pm_table, live_pm, columns in dsql.pm_tables:
                cursor = conn.execute(pm_gc_sql(pm_table, live_pm, columns))
                pm_collected += max(cursor.rowcount, 0)
            if prune:
                index.finish_prune(tracer)
            kspan.set(
                "rows_deleted", sum(removed_counts.values())
            ).set("pm_rows_collected", pm_collected)
        # The count cache moves only after the kill transaction commits
        # (a rollback must leave it describing the uncut tables).
        rows_deleted = 0
        for relation, removed in removed_counts.items():
            rows_deleted += removed
            self.store.note_rows_removed(relation, removed)
        result.rows_deleted = rows_deleted
        result.pm_rows_collected = pm_collected
        return result

    # -- internals ---------------------------------------------------------

    def _seed_deltas(
        self,
        instance: Instance,
        sql: ProgramSQL,
        initial_delta: TMapping[str, set[Row]] | None,
        rel_counts: dict[str, int],
    ) -> dict[str, int]:
        conn = self.store.connection
        counts: dict[str, int] = {}
        with conn:
            if initial_delta is None:
                for relation in sql.relations:
                    conn.execute(
                        f"INSERT INTO {_q(delta_table(relation))} "
                        f"SELECT * FROM {_q(relation)}"
                    )
                    # The delta was seeded from the mirror table, whose
                    # size is already known — no COUNT(*) rescan.
                    counts[relation] = rel_counts.get(relation, 0)
                return counts
            for relation, rows in initial_delta.items():
                rows = {tuple(row) for row in rows}
                if not rows:
                    continue
                missing = [
                    row for row in rows if not instance.contains(relation, row)
                ]
                if missing:
                    raise EvaluationError(
                        f"initial_delta rows not in the instance for "
                        f"{relation}: {missing[:3]}; insert them before "
                        "evaluating"
                    )
                if relation not in sql.relations:
                    continue
                arity = len(next(iter(rows)))
                placeholders = ", ".join("?" for _ in range(arity))
                conn.executemany(
                    f"INSERT INTO {_q(delta_table(relation))} "
                    f"VALUES ({placeholders})",
                    [self.store.codec.encode_row(row) for row in sorted(rows, key=repr)],
                )
                counts[relation] = len(rows)
        return counts

    @staticmethod
    def _any_runnable(
        sql: ProgramSQL, delta_counts: dict[str, int]
    ) -> bool:
        for rule in sql.rules:
            for plan in rule.plans:
                if delta_counts.get(plan.seed_relation):
                    return True
        return False

    @staticmethod
    def _blocked(
        plan, delta_counts: dict[str, int], rel_counts: dict[str, int]
    ) -> bool:
        # Mirrors the memory engine: when every stored row of a guarded
        # relation is in the delta, the guard rejects every candidate.
        for relation in plan.guarded_relations:
            count = delta_counts.get(relation)
            if count and count == rel_counts.get(relation, 0):
                return True
        return False

    def _write_back(
        self,
        program: CompiledExchangeProgram,
        sql: ProgramSQL,
        instance: Instance,
        graph: ProvenanceGraph,
    ) -> int:
        """Batched conversion of this run's firings into instance rows
        and provenance derivations (the lazy graph view)."""
        conn = self.store.connection
        codec = self.store.codec
        inserted = 0
        for rule, crule in zip(sql.rules, program.compiled):
            select = ", ".join(
                _q(slot_column(s)) for s in range(rule.num_slots)
            )
            cursor = conn.execute(
                f"SELECT {select or 'rowid'} FROM {_q(rule.firing_table)} "
                "ORDER BY rowid"
            )
            for raw in cursor:
                slots = [
                    codec.decode(value, type_)
                    for value, type_ in zip(raw, rule.slot_types)
                ]
                sources = tuple(
                    TupleNode(relation, ground_extractors(extractors, slots))
                    for relation, extractors in rule.body_extractors
                )
                targets = []
                for relation, extractors in crule.head:
                    row = ground_extractors(extractors, slots)
                    if instance.insert(relation, row):
                        inserted += 1
                    targets.append(TupleNode(relation, row))
                graph.add_derivation(
                    DerivationNode(rule.rule_name, sources, tuple(targets))
                )
        return inserted
