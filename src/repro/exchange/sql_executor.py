"""Set-oriented semi-naive update exchange inside SQLite.

This is the out-of-core counterpart of
:func:`repro.datalog.evaluation.evaluate`: every semi-naive round runs
*whole delta batches* as one SQL statement per compiled plan, instead
of enumerating candidate rows in Python.  The round structure mirrors
the in-memory engine exactly, so both engines produce identical
instances and provenance graphs:

1. every plan whose seed relation has a non-empty delta fires as one
   ``INSERT INTO __fired_<rule> SELECT DISTINCT ...`` join over the
   frozen relation mirror and the ``__delta_*`` tables;
2. the round's fresh firings drive the head inserts (into per-relation
   candidate tables) and the ``P_m`` provenance-relation maintenance
   (Section 4.1) — all inside one transaction per round;
3. at round end, distinct candidates not already stored become the next
   delta and are published to the relation mirror — insertions never
   join within the round that produced them (snapshot semantics).

The provenance graph is written back *lazily*: firings accumulate in
relational form during the fixpoint and are converted to
:class:`~repro.provenance.graph.DerivationNode` objects (and the head
tuples inserted into the Python instance) in a single batched pass
after convergence.

:class:`ExchangeStore` owns the SQLite database (``:memory:`` or an
on-disk path for out-of-core workloads), keeps one
:class:`~repro.storage.encoding.ValueCodec` so labeled nulls intern
consistently, and registers the ``repro_skolem`` SQL function that
builds Skolem values inside queries.
"""

from __future__ import annotations

import sqlite3
from typing import Mapping as TMapping

from repro.cdss.mapping import SchemaMapping
from repro.datalog.evaluation import EvaluationResult
from repro.datalog.planner import ground_extractors
from repro.datalog.terms import SkolemValue
from repro.errors import EvaluationError, ExchangeError
from repro.exchange.cache import CompiledExchangeProgram
from repro.exchange.sql_plans import (
    ProgramSQL,
    cand_table,
    delta_table,
    lower_program,
    new_table,
    slot_column,
    stage_new_sql,
)
from repro.provenance.graph import DerivationNode, ProvenanceGraph, TupleNode
from repro.relational.instance import Catalog, Instance, Row
from repro.storage.encoding import ValueCodec, quote_identifier as _q


def _skolem_function(codec: ValueCodec):
    """The ``repro_skolem(name, types_csv, *args)`` SQL function.

    Decodes each argument by its declared type tag, builds the
    :class:`SkolemValue`, and returns its interned string encoding so
    equal labeled nulls compare equal inside SQL joins.
    """

    def repro_skolem(function: str, types_csv: str, *args: object) -> object:
        types = types_csv.split(",") if types_csv else []
        values = tuple(
            codec.decode(value, type_) for value, type_ in zip(args, types)
        )
        return codec.encode(SkolemValue(function, values))

    return repro_skolem


class ExchangeStore:
    """SQLite database mirroring a CDSS instance for SQL exchange.

    ``path=":memory:"`` keeps everything in RAM; any other path puts
    the working set on disk, which is the out-of-core mode (instances
    larger than memory join fine — SQLite pages them).  The store is
    reusable across incremental :meth:`CDSS.exchange` calls and is a
    context manager.

    Dedicate a store to one CDSS for its lifetime: ``P_m`` provenance
    rows accumulate across incremental calls (they mirror the growing
    provenance graph), so pointing a second system at the same store
    would leave the first system's rows behind.
    """

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self.codec = ValueCodec()
        self.connection = sqlite3.connect(path)
        self.connection.execute("PRAGMA synchronous = OFF")
        self.connection.execute("PRAGMA journal_mode = MEMORY")
        self.connection.create_function(
            "repro_skolem", -1, _skolem_function(self.codec), deterministic=True
        )
        self.closed = False
        self._known_tables: set[str] = set()

    # -- schema ------------------------------------------------------------

    def _create_table(self, name: str, columns: tuple[str, ...]) -> None:
        # Columns are intentionally typeless (BLOB affinity): the store
        # must preserve encoded values exactly as bound, with no column
        # affinity coercion (e.g. TEXT affinity turning ints into text).
        cols = ", ".join(_q(c) for c in columns)
        self.connection.execute(
            f"CREATE TABLE IF NOT EXISTS {_q(name)} ({cols})"
        )
        self._known_tables.add(name)

    def ensure_schema(
        self,
        catalog: Catalog,
        mappings: TMapping[str, SchemaMapping],
        sql: ProgramSQL,
    ) -> None:
        """Create (idempotently) every table and index the program needs."""
        for schema in catalog:
            for name in (
                schema.name,
                delta_table(schema.name),
                new_table(schema.name),
                cand_table(schema.name),
            ):
                self._create_table(name, schema.attribute_names)
            dcols = ", ".join(_q(c) for c in schema.attribute_names)
            self.connection.execute(
                f"CREATE INDEX IF NOT EXISTS "
                f"{_q('__ix_' + delta_table(schema.name))} "
                f"ON {_q(delta_table(schema.name))} ({dcols})"
            )
        for rule in sql.rules:
            self._create_table(
                rule.firing_table,
                tuple(slot_column(s) for s in range(rule.num_slots)),
            )
        for mapping in mappings.values():
            if mapping.is_superfluous or not mapping.provenance_columns:
                continue
            schema = mapping.provenance_schema()
            self._create_table(schema.name, schema.attribute_names)
            # Indexed on every column (as in the paper's storage layer):
            # the per-round dedup probe and path traversals may enter a
            # provenance relation from either side.
            for attribute in schema.attribute_names:
                self.connection.execute(
                    f"CREATE INDEX IF NOT EXISTS "
                    f"{_q(f'__ix_{schema.name}__{attribute}')} "
                    f"ON {_q(schema.name)} ({_q(attribute)})"
                )
        for relation, positions in sql.index_requirements:
            if relation not in catalog:
                continue
            names = catalog[relation].attribute_names
            cols = ", ".join(_q(names[p]) for p in positions)
            suffix = "_".join(str(p) for p in positions)
            self.connection.execute(
                f"CREATE INDEX IF NOT EXISTS "
                f"{_q(f'__ix_{relation}__{suffix}')} "
                f"ON {_q(relation)} ({cols})"
            )
        self.connection.commit()

    # -- per-run state ------------------------------------------------------

    def reset_run(self, catalog: Catalog, sql: ProgramSQL) -> None:
        """Clear firing logs and working tables for a fresh run."""
        with self.connection:
            for rule in sql.rules:
                self.connection.execute(f"DELETE FROM {_q(rule.firing_table)}")
            for schema in catalog:
                for name in (
                    delta_table(schema.name),
                    new_table(schema.name),
                    cand_table(schema.name),
                ):
                    self.connection.execute(f"DELETE FROM {_q(name)}")

    def load_instance(self, instance: Instance) -> dict[str, int]:
        """Mirror the Python instance; returns per-relation row counts."""
        counts: dict[str, int] = {}
        with self.connection:
            for schema in instance.catalog:
                rows = instance[schema.name]
                self.connection.execute(f"DELETE FROM {_q(schema.name)}")
                if rows:
                    placeholders = ", ".join("?" for _ in range(schema.arity))
                    self.connection.executemany(
                        f"INSERT INTO {_q(schema.name)} VALUES ({placeholders})",
                        [self.codec.encode_row(row) for row in sorted(rows, key=repr)],
                    )
                counts[schema.name] = len(rows)
        return counts

    # -- small helpers ------------------------------------------------------

    def max_rowid(self, table: str) -> int:
        (value,) = self.connection.execute(
            f"SELECT COALESCE(MAX(rowid), 0) FROM {_q(table)}"
        ).fetchone()
        return int(value)

    def count(self, table: str) -> int:
        (value,) = self.connection.execute(
            f"SELECT COUNT(*) FROM {_q(table)}"
        ).fetchone()
        return int(value)

    def close(self) -> None:
        if not self.closed:
            self.connection.close()
            self.closed = True

    def __enter__(self) -> "ExchangeStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<ExchangeStore path={self.path!r} {state}>"


class SQLiteExchangeEngine:
    """Runs compiled exchange programs set-at-a-time over a store."""

    def __init__(self, store: ExchangeStore):
        if store.closed:
            raise ExchangeError("exchange store is closed")
        self.store = store

    def run(
        self,
        program: CompiledExchangeProgram,
        catalog: Catalog,
        mappings: TMapping[str, SchemaMapping],
        instance: Instance,
        graph: ProvenanceGraph | None = None,
        initial_delta: TMapping[str, set[Row]] | None = None,
        max_iterations: int | None = None,
    ) -> EvaluationResult:
        """Semi-naive SQL fixpoint; mutates *instance* and *graph*.

        Semantics match :func:`repro.datalog.evaluation.evaluate` with
        the same ``initial_delta`` contract: ``None`` seeds a full
        exchange from the whole instance, a mapping of per-relation row
        sets seeds an incremental one (rows must already be inserted).
        """
        if graph is None:
            graph = ProvenanceGraph()
        if program.sql is None:
            program.sql = lower_program(
                program.compiled, catalog, mappings, self.store.codec
            )
        sql = program.sql
        conn = self.store.connection
        self.store.ensure_schema(catalog, mappings, sql)
        self.store.reset_run(catalog, sql)
        rel_counts = self.store.load_instance(instance)

        delta_counts = self._seed_deltas(instance, sql, initial_delta)
        stage_sql = {
            relation: stage_new_sql(catalog, relation)
            for relation in sql.relations
        }
        result = EvaluationResult(instance, graph, engine="sqlite")

        iteration = 0
        while self._any_runnable(sql, delta_counts):
            iteration += 1
            if max_iterations is not None and iteration > max_iterations:
                raise EvaluationError(
                    f"fixpoint did not converge within {max_iterations} "
                    "iterations"
                )
            with conn:
                watermarks = {
                    rule.rule_name: self.store.max_rowid(rule.firing_table)
                    for rule in sql.rules
                }
                for rule in sql.rules:
                    for plan in rule.plans:
                        if not delta_counts.get(plan.seed_relation):
                            continue
                        if self._blocked(plan, delta_counts, rel_counts):
                            continue
                        conn.execute(
                            plan.statement.sql, dict(plan.statement.params)
                        )
                for rule in sql.rules:
                    watermark = watermarks[rule.rule_name]
                    fired = self.store.max_rowid(rule.firing_table) - watermark
                    if fired <= 0:
                        continue
                    result.firings += fired
                    runtime = {"wm": watermark}
                    for statement in rule.head_inserts:
                        conn.execute(
                            statement.sql, {**statement.params, **runtime}
                        )
                    if rule.provenance_insert is not None:
                        conn.execute(
                            rule.provenance_insert.sql,
                            {**rule.provenance_insert.params, **runtime},
                        )
                new_counts: dict[str, int] = {}
                for relation in sql.relations:
                    conn.execute(stage_sql[relation])
                    fresh = self.store.count(new_table(relation))
                    conn.execute(f"DELETE FROM {_q(delta_table(relation))}")
                    if fresh:
                        conn.execute(
                            f"INSERT INTO {_q(relation)} "
                            f"SELECT * FROM {_q(new_table(relation))}"
                        )
                        conn.execute(
                            f"INSERT INTO {_q(delta_table(relation))} "
                            f"SELECT * FROM {_q(new_table(relation))}"
                        )
                        conn.execute(f"DELETE FROM {_q(new_table(relation))}")
                        new_counts[relation] = fresh
                        rel_counts[relation] = (
                            rel_counts.get(relation, 0) + fresh
                        )
                    conn.execute(f"DELETE FROM {_q(cand_table(relation))}")
                delta_counts = new_counts
        result.iterations = iteration
        result.inserted = self._write_back(program, sql, instance, graph)
        return result

    # -- internals ---------------------------------------------------------

    def _seed_deltas(
        self,
        instance: Instance,
        sql: ProgramSQL,
        initial_delta: TMapping[str, set[Row]] | None,
    ) -> dict[str, int]:
        conn = self.store.connection
        counts: dict[str, int] = {}
        with conn:
            if initial_delta is None:
                for relation in sql.relations:
                    conn.execute(
                        f"INSERT INTO {_q(delta_table(relation))} "
                        f"SELECT * FROM {_q(relation)}"
                    )
                    counts[relation] = instance.size(relation)
                return counts
            for relation, rows in initial_delta.items():
                rows = {tuple(row) for row in rows}
                if not rows:
                    continue
                missing = [
                    row for row in rows if not instance.contains(relation, row)
                ]
                if missing:
                    raise EvaluationError(
                        f"initial_delta rows not in the instance for "
                        f"{relation}: {missing[:3]}; insert them before "
                        "evaluating"
                    )
                if relation not in sql.relations:
                    continue
                arity = len(next(iter(rows)))
                placeholders = ", ".join("?" for _ in range(arity))
                conn.executemany(
                    f"INSERT INTO {_q(delta_table(relation))} "
                    f"VALUES ({placeholders})",
                    [self.store.codec.encode_row(row) for row in sorted(rows, key=repr)],
                )
                counts[relation] = len(rows)
        return counts

    @staticmethod
    def _any_runnable(
        sql: ProgramSQL, delta_counts: dict[str, int]
    ) -> bool:
        for rule in sql.rules:
            for plan in rule.plans:
                if delta_counts.get(plan.seed_relation):
                    return True
        return False

    @staticmethod
    def _blocked(
        plan, delta_counts: dict[str, int], rel_counts: dict[str, int]
    ) -> bool:
        # Mirrors the memory engine: when every stored row of a guarded
        # relation is in the delta, the guard rejects every candidate.
        for relation in plan.guarded_relations:
            count = delta_counts.get(relation)
            if count and count == rel_counts.get(relation, 0):
                return True
        return False

    def _write_back(
        self,
        program: CompiledExchangeProgram,
        sql: ProgramSQL,
        instance: Instance,
        graph: ProvenanceGraph,
    ) -> int:
        """Batched conversion of this run's firings into instance rows
        and provenance derivations (the lazy graph view)."""
        conn = self.store.connection
        codec = self.store.codec
        inserted = 0
        for rule, crule in zip(sql.rules, program.compiled):
            select = ", ".join(
                _q(slot_column(s)) for s in range(rule.num_slots)
            )
            cursor = conn.execute(
                f"SELECT {select or 'rowid'} FROM {_q(rule.firing_table)} "
                "ORDER BY rowid"
            )
            for raw in cursor:
                slots = [
                    codec.decode(value, type_)
                    for value, type_ in zip(raw, rule.slot_types)
                ]
                sources = tuple(
                    TupleNode(relation, ground_extractors(extractors, slots))
                    for relation, extractors in rule.body_extractors
                )
                targets = []
                for relation, extractors in crule.head:
                    row = ground_extractors(extractors, slots)
                    if instance.insert(relation, row):
                        inserted += 1
                    targets.append(TupleNode(relation, row))
                graph.add_derivation(
                    DerivationNode(rule.rule_name, sources, tuple(targets))
                )
        return inserted
