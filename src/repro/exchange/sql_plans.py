"""SQL lowering of compiled join plans (set-oriented update exchange).

The paper's testbed runs update exchange *inside* an RDBMS: each
mapping rule becomes a relational query over the peers' tables, and a
semi-naive round executes whole delta batches as single set-oriented
statements.  This module translates the per-delta-atom join plans of
:mod:`repro.datalog.planner` into exactly that shape for SQLite:

* every rule gets a **firing table** ``__fired_<rule>`` with one column
  per variable slot — one row per distinct rule firing, the relational
  mirror of a provenance derivation node;
* every :class:`~repro.datalog.planner.RulePlan` lowers to one
  ``INSERT INTO __fired_<rule> SELECT DISTINCT ... FROM __delta_<seed>
  JOIN ...`` statement whose join conditions come from the plan's
  key parts, whose WHERE clause carries constant/repeated-variable
  checks, and whose *guard* steps (body atoms preceding the delta seed)
  become ``NOT EXISTS`` probes against the delta tables — the SQL
  rendering of the engine's once-per-firing rule;
* rule heads lower to ``INSERT INTO __cand_<relation> SELECT ... FROM
  __fired_<rule>`` statements over the fresh firings of a round, with
  Skolem values (labeled nulls) constructed *inside SQL* by the
  registered ``repro_skolem`` function so equal labeled nulls compare
  equal in later joins;
* each non-superfluous mapping additionally lowers to an ``INSERT``
  maintaining its provenance relation ``P_m`` (Section 4.1) from the
  same fresh firings.

All value comparisons use SQLite's null-safe ``IS`` operator so SQL
semantics match the Python engine's ``==`` on rows that may contain
``None``.  Statements use named parameters: compile-time constants bind
``:p<N>``; the per-round firing-table watermark binds ``:wm``.

**Deletion propagation** (the paper's Q5) gets its own lowering: after
local victims are removed from the store's ``R_l`` tables,
:func:`lower_derivability_program` re-runs the DERIVABILITY test
*relationally* — a semi-naive fixpoint over ``__live_*`` tables marks
every tuple still derivable from the surviving EDB leaves (the least
fixpoint, so cyclically self-supporting tuples correctly die), after
which one ``DELETE`` per relation kills the unsupported rows and one
per ``P_m`` garbage-collects the firing-history rows whose every
supporting derivation died.  Because the store holds an exchange
fixpoint, re-joining *live* rows through the rule bodies enumerates
exactly the historical firings whose antecedents all survive — the
relational mirror of annotating the provenance graph with the
DERIVABILITY semiring.

**Graph queries** (:mod:`repro.exchange.graph_queries`) reuse both
shapes: ``derivability``/``trusted`` re-run the same liveness fixpoint
with query-specific seeds and rule sets, while ``lineage`` walks the
firing history *backwards* — :class:`HeadProbe` restricts each plan's
firing enumeration to firings producing a row already known to be an
ancestor (``__adelta_*``), and ``dedup`` keeps the per-rule
``__qfired_*`` log exact across rounds.  This module only provides the
lowerings; the walk itself lives with the other query machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cdss.mapping import SchemaMapping, provenance_relation_name
from repro.datalog.planner import (
    CompiledRule,
    K_CONST,
    K_SKOLEM,
    K_SLOT,
    RulePlan,
    _assign_slots,
    _compile_term,
)
from repro.errors import ExchangeError
from repro.relational.instance import Catalog
from repro.relational.schema import is_local_name
from repro.storage.encoding import ValueCodec, quote_identifier as _q

#: table-name prefixes of the executor's working tables.
DELTA_PREFIX = "__delta_"
NEW_PREFIX = "__new_"
CAND_PREFIX = "__cand_"
FIRED_PREFIX = "__fired_"
#: table-name prefixes of the derivability (deletion-propagation)
#: working tables: the set of live (still-derivable) rows per relation,
#: its semi-naive delta/candidate/new stages, the live firings per
#: rule, and the surviving P_m projection per mapping.
LIVE_PREFIX = "__live_"
LIVE_DELTA_PREFIX = "__ldelta_"
LIVE_CAND_PREFIX = "__lcand_"
LIVE_NEW_PREFIX = "__lnew_"
LIVE_FIRED_PREFIX = "__lfired_"
LIVE_PM_PREFIX = "__lpm_"
#: table-name prefixes of the lineage (graph-query) working tables:
#: the per-relation ancestor closure being grown by the backward walk,
#: its delta/candidate/new stages, and the per-rule table of firings
#: the walk has visited (the scanned slice of the firing history).
ANC_PREFIX = "__anc_"
ANC_DELTA_PREFIX = "__adelta_"
ANC_CAND_PREFIX = "__acand_"
ANC_NEW_PREFIX = "__anew_"
QUERY_FIRED_PREFIX = "__qfired_"

#: pseudo attribute type for Skolem-argument decoding: "decode by tag
#: only" (ints/floats/strings pass through, labeled nulls re-intern).
ANY_TYPE = "any"


def delta_table(relation: str) -> str:
    return DELTA_PREFIX + relation


def new_table(relation: str) -> str:
    return NEW_PREFIX + relation


def cand_table(relation: str) -> str:
    return CAND_PREFIX + relation


def fired_table(rule_name: str) -> str:
    return FIRED_PREFIX + rule_name


def live_table(relation: str) -> str:
    return LIVE_PREFIX + relation


def live_delta_table(relation: str) -> str:
    return LIVE_DELTA_PREFIX + relation


def live_cand_table(relation: str) -> str:
    return LIVE_CAND_PREFIX + relation


def live_new_table(relation: str) -> str:
    return LIVE_NEW_PREFIX + relation


def live_fired_table(rule_name: str) -> str:
    return LIVE_FIRED_PREFIX + rule_name


def live_pm_table(mapping_name: str) -> str:
    return LIVE_PM_PREFIX + mapping_name


def anc_table(relation: str) -> str:
    return ANC_PREFIX + relation


def anc_delta_table(relation: str) -> str:
    return ANC_DELTA_PREFIX + relation


def anc_cand_table(relation: str) -> str:
    return ANC_CAND_PREFIX + relation


def anc_new_table(relation: str) -> str:
    return ANC_NEW_PREFIX + relation


def query_fired_table(rule_name: str) -> str:
    return QUERY_FIRED_PREFIX + rule_name


def slot_column(slot: int) -> str:
    return f"s{slot}"


@dataclass(frozen=True)
class Statement:
    """One parameterized SQL statement.

    ``params`` holds the compile-time (constant) bindings; runtime
    bindings — currently only the ``:wm`` watermark — are merged in by
    the executor.
    """

    sql: str
    params: Mapping[str, object]
    #: names of runtime parameters the executor must supply.
    runtime: tuple[str, ...] = ()


@dataclass(frozen=True)
class PlanSQL:
    """Lowering of one RulePlan: fills the rule's firing table."""

    seed_relation: str
    statement: Statement
    #: relations of guarded join steps — when every stored row of one
    #: of them is in the current delta the plan cannot fire (the guard
    #: rejects everything) and the executor skips it wholesale, exactly
    #: like the in-memory engine's ``blocked()`` check.
    guarded_relations: tuple[str, ...] = ()


@dataclass(frozen=True)
class RuleSQL:
    """Everything the executor needs to run one rule set-at-a-time."""

    rule_name: str
    num_slots: int
    #: declared attribute type per slot (first body occurrence), used
    #: to decode firing rows and Skolem arguments.
    slot_types: tuple[str, ...]
    firing_table: str
    plans: tuple[PlanSQL, ...]
    #: one statement per head atom: fresh firings -> __cand_<relation>.
    head_inserts: tuple[Statement, ...]
    #: fresh firings -> P_m rows (None for non-mappings / superfluous).
    provenance_insert: Statement | None
    #: per body atom: (relation, extractors) for rebuilding source
    #: tuples from a decoded slot row (graph write-back).
    body_extractors: tuple[tuple[str, tuple[tuple[int, object], ...]], ...]


@dataclass(frozen=True)
class ProgramSQL:
    """SQL lowering of a whole compiled exchange program."""

    rules: tuple[RuleSQL, ...]
    #: every relation the executor must mirror (instance + deltas).
    relations: tuple[str, ...]
    #: (relation, positions) indexes worth creating on the mirror.
    index_requirements: tuple[tuple[str, tuple[int, ...]], ...]


class _ParamAllocator:
    """Allocates :p<N> named parameters within one statement."""

    def __init__(self, codec: ValueCodec):
        self.codec = codec
        self.params: dict[str, object] = {}

    def bind(self, value: object) -> str:
        name = f"p{len(self.params)}"
        self.params[name] = self.codec.encode(value)
        return f":{name}"


def _columns(catalog: Catalog, relation: str) -> tuple[str, ...]:
    return catalog[relation].attribute_names


def _column_types(catalog: Catalog, relation: str) -> tuple[str, ...]:
    return tuple(a.type for a in catalog[relation].attributes)


def _slot_types(crule: CompiledRule, catalog: Catalog) -> tuple[str, ...]:
    """Declared type per slot, from each variable's first occurrence in
    body order (plan-independent, hence shared by all of a rule's
    plans and by the firing-row decoder)."""
    slot_of = _assign_slots(crule.rule)
    types: dict[int, str] = {}
    for atom in crule.rule.body:
        col_types = _column_types(catalog, atom.relation)
        for pos, term in enumerate(atom.terms):
            for var in _term_variables(term):
                slot = slot_of[var]
                if slot not in types:
                    types[slot] = col_types[pos]
    return tuple(types.get(i, ANY_TYPE) for i in range(crule.num_slots))


def _term_variables(term):
    from repro.datalog.terms import SkolemTerm, Variable

    if isinstance(term, Variable):
        yield term
    elif isinstance(term, SkolemTerm):
        for arg in term.args:
            yield from _term_variables(arg)


@dataclass(frozen=True)
class HeadProbe:
    """Restriction of a firing enumeration to wanted head rows.

    Lineage walks the firing history *backwards*: a firing is relevant
    only when one of its head atoms produces a row already known to be
    an ancestor of the query node.  The probe joins the enumeration
    against that head relation's ``__adelta_*`` table, equating each of
    the head atom's extractor expressions (Skolems included — they are
    reconstructed in SQL, so equal labeled nulls compare equal) with
    the corresponding ancestor column.
    """

    table: str
    columns: tuple[str, ...]
    extractors: tuple[tuple[int, object], ...]
    slot_types: tuple[str, ...]


def _plan_firing_sql(
    crule: CompiledRule,
    plan: RulePlan,
    catalog: Catalog,
    alloc: _ParamAllocator,
    seed_from: str,
    join_of,
    guards: bool,
    target: str,
    probe: HeadProbe | None = None,
    dedup: bool = False,
) -> str:
    """The ``INSERT ... SELECT DISTINCT`` enumerating one plan's firings.

    ``seed_from`` names the table the seed atom ranges over, ``join_of``
    maps each join step's relation to the table actually joined (the
    frozen mirror for exchange, the ``__live_*`` tables for the
    derivability fixpoint), and ``guards`` controls whether guard steps
    emit their ``NOT EXISTS`` once-per-firing probes (liveness is a set
    computation, so the derivability lowering skips them).  ``probe``
    adds a join against a wanted-head table (the lineage walk's
    backward restriction), and ``dedup`` skips firings already recorded
    in *target* — required when the same statement runs once per round
    of an iterative walk and firing rows drive watermark-delimited
    downstream inserts.
    """
    seed = plan.seed
    seed_cols = _columns(catalog, seed.relation)
    slot_src: dict[int, str] = {}
    conditions: list[str] = []
    joins: list[str] = []

    seed_alias = "t0"
    for pos, slot in seed.binds:
        slot_src[slot] = f'{seed_alias}.{_q(seed_cols[pos])}'
    for pos, value in seed.const_checks:
        conditions.append(
            f'{seed_alias}.{_q(seed_cols[pos])} IS {alloc.bind(value)}'
        )
    for pos, slot in seed.checks:
        conditions.append(
            f'{seed_alias}.{_q(seed_cols[pos])} IS {slot_src[slot]}'
        )

    for index, step in enumerate(plan.steps, start=1):
        alias = f"t{index}"
        cols = _columns(catalog, step.relation)
        on_parts: list[str] = []
        for pos, (kind, payload) in zip(step.positions, step.key_parts):
            if kind == K_SLOT:
                rhs = slot_src[payload]
            else:
                rhs = alloc.bind(payload)
            on_parts.append(f'{alias}.{_q(cols[pos])} IS {rhs}')
        for pos, slot in step.binds:
            slot_src[slot] = f'{alias}.{_q(cols[pos])}'
        for pos, slot in step.checks:
            on_parts.append(f'{alias}.{_q(cols[pos])} IS {slot_src[slot]}')
        joins.append(
            f'JOIN {_q(join_of(step.relation))} AS {alias} '
            f"ON {' AND '.join(on_parts) if on_parts else '1'}"
        )
        if guards and step.guard:
            guard_alias = f"g{index}"
            guard_conds = " AND ".join(
                f'{guard_alias}.{_q(col)} IS {alias}.{_q(col)}' for col in cols
            )
            conditions.append(
                f"NOT EXISTS (SELECT 1 FROM {_q(delta_table(step.relation))} "
                f"AS {guard_alias} WHERE {guard_conds})"
            )

    missing = [s for s in range(crule.num_slots) if s not in slot_src]
    if missing:  # pragma: no cover - plans bind every body variable
        raise ExchangeError(
            f"rule {crule.rule.name}: slots {missing} unbound after lowering"
        )
    if probe is not None:
        exprs = _extractor_sql(
            probe.extractors,
            alloc,
            probe.slot_types,
            slot_ref=slot_src.__getitem__,
        )
        on_parts = [
            f'q.{_q(column)} IS {expr}'
            for column, expr in zip(probe.columns, exprs)
        ]
        joins.append(
            f'JOIN {_q(probe.table)} AS q '
            f"ON {' AND '.join(on_parts) if on_parts else '1'}"
        )
    if dedup:
        match = " AND ".join(
            f'z.{_q(slot_column(s))} IS {slot_src[s]}'
            for s in range(crule.num_slots)
        ) or "1"
        conditions.append(
            f"NOT EXISTS (SELECT 1 FROM {_q(target)} AS z WHERE {match})"
        )
    select_list = ", ".join(slot_src[s] for s in range(crule.num_slots))
    target_cols = ", ".join(
        _q(slot_column(s)) for s in range(crule.num_slots)
    )
    where = f"\nWHERE {' AND '.join(conditions)}" if conditions else ""
    return (
        f"INSERT INTO {_q(target)} ({target_cols})\n"
        f"SELECT DISTINCT {select_list}\n"
        f"FROM {_q(seed_from)} AS {seed_alias}\n"
        + "\n".join(joins)
        + where
    )


def _lower_plan(
    crule: CompiledRule,
    plan: RulePlan,
    catalog: Catalog,
    codec: ValueCodec,
) -> PlanSQL:
    alloc = _ParamAllocator(codec)
    sql = _plan_firing_sql(
        crule,
        plan,
        catalog,
        alloc,
        seed_from=delta_table(plan.seed.relation),
        join_of=lambda relation: relation,
        guards=True,
        target=fired_table(crule.rule.name),
    )
    return PlanSQL(
        plan.seed.relation, Statement(sql, alloc.params), plan.guarded_relations
    )


def _fired_slot_ref(slot: int) -> str:
    """Default slot reference: the firing-table alias of the head and
    provenance inserts (``f`` ranges over ``__fired_<rule>``)."""
    return f'f.{_q(slot_column(slot))}'


def _skolem_sql(
    payload: object,
    alloc: _ParamAllocator,
    slot_types: Sequence[str],
    slot_ref=_fired_slot_ref,
) -> str:
    """Lower a compiled Skolem extractor into a ``repro_skolem`` call."""
    function, arg_extractors = payload  # type: ignore[misc]
    arg_sql: list[str] = []
    arg_types: list[str] = []
    for kind, arg_payload in arg_extractors:
        if kind == K_SLOT:
            arg_sql.append(slot_ref(arg_payload))
            arg_types.append(slot_types[arg_payload])
        elif kind == K_CONST:
            arg_sql.append(alloc.bind(arg_payload))
            arg_types.append(
                "bool" if isinstance(arg_payload, bool) else ANY_TYPE
            )
        else:  # nested Skolem: decoded back by its tag
            arg_sql.append(_skolem_sql(arg_payload, alloc, slot_types, slot_ref))
            arg_types.append(ANY_TYPE)
    name = alloc.bind(function)
    types = alloc.bind(",".join(arg_types))
    args = ", ".join([name, types] + arg_sql)
    return f"repro_skolem({args})"


def _extractor_sql(
    extractors: Sequence[tuple[int, object]],
    alloc: _ParamAllocator,
    slot_types: Sequence[str],
    slot_ref=_fired_slot_ref,
) -> list[str]:
    out: list[str] = []
    for kind, payload in extractors:
        if kind == K_SLOT:
            out.append(slot_ref(payload))
        elif kind == K_CONST:
            out.append(alloc.bind(payload))
        else:
            out.append(_skolem_sql(payload, alloc, slot_types, slot_ref))
    return out


def _lower_head_insert(
    crule: CompiledRule,
    relation: str,
    extractors: Sequence[tuple[int, object]],
    slot_types: Sequence[str],
    codec: ValueCodec,
    target: str | None = None,
    fired: str | None = None,
) -> Statement:
    """Fresh firings -> candidate rows.  ``target``/``fired`` override
    the table names so the derivability fixpoint reuses the lowering
    over its ``__lcand_*``/``__lfired_*`` tables."""
    alloc = _ParamAllocator(codec)
    exprs = _extractor_sql(extractors, alloc, slot_types)
    sql = (
        f"INSERT INTO {_q(target or cand_table(relation))}\n"
        f"SELECT DISTINCT {', '.join(exprs)}\n"
        f"FROM {_q(fired or fired_table(crule.rule.name))} AS f\n"
        f"WHERE f.rowid > :wm"
    )
    return Statement(sql, alloc.params, runtime=("wm",))


def _lower_provenance_insert(
    crule: CompiledRule,
    mapping: SchemaMapping,
    codec: ValueCodec,
    target: str | None = None,
    fired: str | None = None,
) -> Statement | None:
    if mapping.is_superfluous or not mapping.provenance_columns:
        return None
    slot_of = _assign_slots(crule.rule)
    table = target or provenance_relation_name(mapping.name)
    cols = []
    exprs = []
    for column in mapping.provenance_columns:
        slot = slot_of.get(column.variable)
        if slot is None:  # pragma: no cover - safe mappings bind all keys
            raise ExchangeError(
                f"mapping {mapping.name}: provenance column {column.name} "
                "is not bound by the rule body"
            )
        cols.append(_q(column.name))
        exprs.append(f'f.{_q(slot_column(slot))}')
    dedup = " AND ".join(
        f"p.{col} IS {expr}" for col, expr in zip(cols, exprs)
    )
    sql = (
        f"INSERT INTO {_q(table)} ({', '.join(cols)})\n"
        f"SELECT DISTINCT {', '.join(exprs)}\n"
        f"FROM {_q(fired or fired_table(crule.rule.name))} AS f\n"
        f"WHERE f.rowid > :wm\n"
        f"AND NOT EXISTS (SELECT 1 FROM {_q(table)} AS p WHERE {dedup})"
    )
    return Statement(sql, {}, runtime=("wm",))


def stage_new_sql(catalog: Catalog, relation: str) -> str:
    """Round-end dedup: distinct candidates not already stored."""
    cols = _columns(catalog, relation)
    match = " AND ".join(f'r.{_q(c)} IS c.{_q(c)}' for c in cols)
    return (
        f"INSERT INTO {_q(new_table(relation))}\n"
        f"SELECT DISTINCT * FROM {_q(cand_table(relation))} AS c\n"
        f"WHERE NOT EXISTS (SELECT 1 FROM {_q(relation)} AS r WHERE {match})"
    )


def lower_rule(
    crule: CompiledRule,
    catalog: Catalog,
    mappings: Mapping[str, SchemaMapping],
    codec: ValueCodec,
) -> RuleSQL:
    if not crule.plans:
        raise ExchangeError(
            f"rule {crule.rule.name} cannot run on the sqlite engine "
            "(its body contains terms the planner does not compile); "
            'use exchange(engine="memory")'
        )
    slot_types = _slot_types(crule, catalog)
    plans = tuple(
        _lower_plan(crule, plan, catalog, codec) for plan in crule.plans
    )
    head_inserts = tuple(
        _lower_head_insert(crule, relation, extractors, slot_types, codec)
        for relation, extractors in crule.head
    )
    mapping = mappings.get(crule.rule.name)
    prov = (
        _lower_provenance_insert(crule, mapping, codec) if mapping else None
    )
    slot_of = _assign_slots(crule.rule)
    body_extractors = tuple(
        (
            atom.relation,
            tuple(_compile_term(term, slot_of) for term in atom.terms),
        )
        for atom in crule.rule.body
    )
    return RuleSQL(
        crule.rule.name,
        crule.num_slots,
        slot_types,
        fired_table(crule.rule.name),
        plans,
        head_inserts,
        prov,
        body_extractors,
    )


def lower_program(
    compiled: Sequence[CompiledRule],
    catalog: Catalog,
    mappings: Mapping[str, SchemaMapping],
    codec: ValueCodec,
) -> ProgramSQL:
    """Lower every compiled rule; raises :class:`ExchangeError` when a
    rule's body is outside the planner's (and hence SQL's) fragment."""
    rules = tuple(
        lower_rule(crule, catalog, mappings, codec) for crule in compiled
    )
    relations: dict[str, None] = {}
    for crule in compiled:
        for rel in crule.body_relations:
            relations.setdefault(rel, None)
        for rel, _extractors in crule.head:
            relations.setdefault(rel, None)
    indexes: set[tuple[str, tuple[int, ...]]] = set()
    for crule in compiled:
        indexes |= crule.index_requirements()
    return ProgramSQL(rules, tuple(relations), tuple(sorted(indexes)))


# -- deletion propagation (derivability over P_m, Q5) -----------------------


@dataclass(frozen=True)
class DerivabilityPlanSQL:
    """One plan of the liveness fixpoint: finds the firings whose last
    body row just became live."""

    seed_relation: str
    statement: Statement


@dataclass(frozen=True)
class DerivabilityRuleSQL:
    """One rule of the liveness fixpoint (no guards, no write-back)."""

    rule_name: str
    num_slots: int
    firing_table: str
    plans: tuple[DerivabilityPlanSQL, ...]
    #: fresh live firings -> ``__lcand_<relation>`` per head atom.
    head_inserts: tuple[Statement, ...]
    #: fresh live firings -> surviving ``P_m`` projection (None for
    #: non-mappings / superfluous mappings).
    pm_insert: Statement | None


@dataclass(frozen=True)
class DerivabilitySQL:
    """SQL lowering of the relational DERIVABILITY test.

    A tuple is live iff it is an EDB (local-contribution) row that
    survived the victim marking, or some firing over live rows produces
    it *and* the tuple is still stored — the least fixpoint of the
    DERIVABILITY semiring over the firing history, computed without
    materializing anything in Python.
    """

    rules: tuple[DerivabilityRuleSQL, ...]
    #: every relation the fixpoint touches.
    relations: tuple[str, ...]
    #: relations seeded live from their full extension (EDB leaves —
    #: the local-contribution tables; their firings are the paper's
    #: "EDB-insertion firings", which keep their tuples alive).
    edb_relations: tuple[str, ...]
    #: head relations: only these can gain live rows per round, and
    #: only these are swept for unsupported victims afterwards.
    derived_relations: tuple[str, ...]
    #: per materialized provenance relation:
    #: (mapping name, P_m table, live-projection table, columns).
    pm_tables: tuple[tuple[str, str, str, tuple[str, ...]], ...]


def stage_live_sql(catalog: Catalog, relation: str) -> str:
    """Round-end liveness stage: distinct candidates that are stored
    (derivations must correspond to recorded firings — a row absent
    from the relation was never exchanged and supports nothing) and not
    yet marked live."""
    cols = _columns(catalog, relation)
    stored = " AND ".join(f'r.{_q(c)} IS c.{_q(c)}' for c in cols)
    live = " AND ".join(f'l.{_q(c)} IS c.{_q(c)}' for c in cols)
    return (
        f"INSERT INTO {_q(live_new_table(relation))}\n"
        f"SELECT DISTINCT * FROM {_q(live_cand_table(relation))} AS c\n"
        f"WHERE EXISTS (SELECT 1 FROM {_q(relation)} AS r WHERE {stored})\n"
        f"AND NOT EXISTS "
        f"(SELECT 1 FROM {_q(live_table(relation))} AS l WHERE {live})"
    )


def stage_ancestor_sql(catalog: Catalog, relation: str) -> str:
    """Round-end stage of the lineage walk: distinct ancestor
    candidates not yet in the closure.  No stored-row filter is needed
    — candidates are projections of firings whose body rows were
    *joined from* the stored relations, so they are stored by
    construction."""
    cols = _columns(catalog, relation)
    known = " AND ".join(f'a.{_q(c)} IS c.{_q(c)}' for c in cols)
    return (
        f"INSERT INTO {_q(anc_new_table(relation))}\n"
        f"SELECT DISTINCT * FROM {_q(anc_cand_table(relation))} AS c\n"
        f"WHERE NOT EXISTS "
        f"(SELECT 1 FROM {_q(anc_table(relation))} AS a WHERE {known})"
    )


def kill_sql(catalog: Catalog, relation: str) -> str:
    """Delete *relation*'s rows with no support among the live set."""
    match = " AND ".join(
        f'l.{_q(c)} IS {_q(relation)}.{_q(c)}'
        for c in _columns(catalog, relation)
    )
    return (
        f"DELETE FROM {_q(relation)} WHERE NOT EXISTS "
        f"(SELECT 1 FROM {_q(live_table(relation))} AS l WHERE {match})"
    )


def pm_gc_sql(pm_table: str, live_pm: str, columns: Sequence[str]) -> str:
    """Garbage-collect ``P_m`` rows whose firing is no longer live."""
    match = " AND ".join(
        f'l.{_q(c)} IS {_q(pm_table)}.{_q(c)}' for c in columns
    )
    return (
        f"DELETE FROM {_q(pm_table)} WHERE NOT EXISTS "
        f"(SELECT 1 FROM {_q(live_pm)} AS l WHERE {match})"
    )


def _lower_derivability_rule(
    crule: CompiledRule,
    catalog: Catalog,
    mappings: Mapping[str, SchemaMapping],
    codec: ValueCodec,
) -> DerivabilityRuleSQL:
    if not crule.plans:
        raise ExchangeError(
            f"rule {crule.rule.name} cannot run on the sqlite engine "
            "(its body contains terms the planner does not compile); "
            'use exchange(engine="memory")'
        )
    name = crule.rule.name
    fired = live_fired_table(name)
    slot_types = _slot_types(crule, catalog)
    plans = []
    for plan in crule.plans:
        alloc = _ParamAllocator(codec)
        sql = _plan_firing_sql(
            crule,
            plan,
            catalog,
            alloc,
            seed_from=live_delta_table(plan.seed.relation),
            join_of=live_table,
            guards=False,
            target=fired,
        )
        plans.append(
            DerivabilityPlanSQL(
                plan.seed.relation, Statement(sql, alloc.params)
            )
        )
    head_inserts = tuple(
        _lower_head_insert(
            crule,
            relation,
            extractors,
            slot_types,
            codec,
            target=live_cand_table(relation),
            fired=fired,
        )
        for relation, extractors in crule.head
    )
    mapping = mappings.get(name)
    pm_insert = (
        _lower_provenance_insert(
            crule, mapping, codec, target=live_pm_table(name), fired=fired
        )
        if mapping
        else None
    )
    return DerivabilityRuleSQL(
        name, crule.num_slots, fired, tuple(plans), head_inserts, pm_insert
    )


def lower_derivability_program(
    compiled: Sequence[CompiledRule],
    catalog: Catalog,
    mappings: Mapping[str, SchemaMapping],
    codec: ValueCodec,
) -> DerivabilitySQL:
    """Lower the whole program's DERIVABILITY test.

    The leaf model requires every local-contribution relation to be an
    EDB leaf: a mapping deriving *into* an ``R_l`` relation would make
    its rows part-leaf, part-derived, which the relational test (unlike
    the per-node graph test) cannot express — rejected loudly.
    """
    relations: dict[str, None] = {}
    heads: set[str] = set()
    for crule in compiled:
        for rel in crule.body_relations:
            relations.setdefault(rel, None)
        for rel, _extractors in crule.head:
            relations.setdefault(rel, None)
            heads.add(rel)
            if is_local_name(rel):
                raise ExchangeError(
                    f"rule {crule.rule.name} derives into the "
                    f"local-contribution relation {rel}; the relational "
                    "derivability test treats local relations as EDB "
                    "leaves — rewrite the mapping to target the public "
                    "relation"
                )
    rules = tuple(
        _lower_derivability_rule(crule, catalog, mappings, codec)
        for crule in compiled
    )
    pm_tables = []
    for name in {crule.rule.name for crule in compiled}:
        mapping = mappings.get(name)
        if (
            mapping is None
            or mapping.is_superfluous
            or not mapping.provenance_columns
        ):
            continue
        pm_tables.append(
            (
                name,
                provenance_relation_name(name),
                live_pm_table(name),
                tuple(c.name for c in mapping.provenance_columns),
            )
        )
    return DerivabilitySQL(
        rules,
        tuple(relations),
        tuple(r for r in relations if r not in heads),
        tuple(r for r in relations if r in heads),
        tuple(sorted(pm_tables)),
    )
