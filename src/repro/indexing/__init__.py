"""ASR indexing for provenance paths (Section 5)."""

from repro.indexing.advisor import asr_definitions_for, mapping_chains
from repro.indexing.asr import (
    ASR_KINDS,
    KIND_ASR,
    ASRDefinition,
    ComposedPath,
    chain_windows,
    check_non_overlapping,
)
from repro.indexing.manager import ASRManager
from repro.indexing.rewriting import unfold_asrs, unfold_path

__all__ = [
    "ASR_KINDS",
    "ASRDefinition",
    "ASRManager",
    "ComposedPath",
    "KIND_ASR",
    "asr_definitions_for",
    "chain_windows",
    "check_non_overlapping",
    "mapping_chains",
    "unfold_asrs",
    "unfold_path",
]
