"""Automated ASR selection for a mapping topology (Section 8's
future-work direction, and the scheme Section 6.4's experiments use:
"for each maximum path length, we essentially split the chain into
paths up to this length").

:func:`asr_definitions_for` decomposes the schema graph upstream of a
target relation into non-branching mapping chains, windows each chain
into segments of at most ``length`` (aligned to the downstream end),
and emits one :class:`ASRDefinition` per window — guaranteed
non-overlapping, as Section 5.2 requires.
"""

from __future__ import annotations

from repro.cdss.system import CDSS
from repro.indexing.asr import ASRDefinition, chain_windows
from repro.proql.schema_graph import SchemaGraph


def mapping_chains(cdss: CDSS, target_relation: str) -> list[tuple[str, ...]]:
    """Maximal non-branching mapping chains upstream of the target.

    Each chain is ordered source→target.  Chains break at relations
    with more than one incoming or outgoing mapping (branch points of
    e.g. the branched topology of Figure 6), so no mapping appears in
    two chains.
    """
    graph = SchemaGraph.of(cdss)
    chains: list[tuple[str, ...]] = []
    assigned: set[str] = set()

    def walk_chain(mapping: str) -> tuple[str, ...]:
        """Extend a chain upstream from *mapping* while unambiguous."""
        chain = [mapping]
        current = mapping
        while True:
            sources = [
                r
                for r in dict.fromkeys(graph.sources_of(current))
            ]
            upstream: list[str] = []
            for relation in sources:
                upstream.extend(graph.mappings_into(relation))
            upstream = [m for m in dict.fromkeys(upstream) if m not in assigned]
            if len(upstream) != 1:
                break
            # The single upstream mapping must feed only this chain.
            nxt = upstream[0]
            consumers = {
                consumer
                for relation in set(graph.targets_of(nxt))
                for consumer in graph.mappings_from(relation)
            }
            if consumers - {current}:
                break
            chain.append(nxt)
            assigned.add(nxt)
            current = nxt
        return tuple(reversed(chain))  # source -> target

    frontier = [target_relation]
    seen_relations: set[str] = set()
    while frontier:
        relation = frontier.pop()
        if relation in seen_relations:
            continue
        seen_relations.add(relation)
        for mapping in graph.mappings_into(relation):
            if mapping in assigned:
                continue
            assigned.add(mapping)
            chain = walk_chain(mapping)
            chains.append(chain)
            for name in chain:
                for source in graph.sources_of(name):
                    frontier.append(source)
    return chains


def asr_definitions_for(
    cdss: CDSS,
    target_relation: str,
    length: int,
    kind: str = "complete",
    prefix: str = "ASR",
) -> list[ASRDefinition]:
    """One ASR per window of every upstream chain (Section 6.4 setup).

    >>> # for a chain of 7 mappings and length 3 this yields windows of
    >>> # sizes 3, 3, 1 aligned to the target side
    """
    definitions: list[ASRDefinition] = []
    counter = 0
    for chain in mapping_chains(cdss, target_relation):
        for window in chain_windows(chain, length):
            definitions.append(
                ASRDefinition(f"{prefix}_{counter}", window, kind)
            )
            counter += 1
    return definitions
