"""Access support relations for provenance paths (Section 5).

An ASR materializes the join of the provenance relations along a path
of mappings, so path traversals can skip the per-step joins.  Four
variants (Section 5.1):

* **complete** — only the full path's inner join;
* **prefix** — the path and its prefixes (source-side-aligned
  segments);
* **suffix** — the path and its suffixes (target-side-aligned
  segments; these serve queries anchored at a target relation, like
  the experiments' target query);
* **subpath** — every contiguous segment.

We materialize each indexed segment's inner join into one table, with
NULLs in the columns of mappings outside the segment (the relational
rendering of the paper's outer-join union construction); B-tree
indexes on every column support entering the path from either end.

ASR paths are stored **source→target** (upstream mapping first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.cdss.mapping import SchemaMapping, provenance_relation_name
from repro.cdss.system import CDSS
from repro.datalog.atoms import Atom
from repro.datalog.terms import Term, Variable
from repro.datalog.unification import unify_atoms
from repro.errors import IndexingError
from repro.relational.schema import RelationSchema
from repro.storage.encoding import quote_identifier, sql_type

ASR_KINDS = ("complete", "prefix", "suffix", "subpath")

#: BodyItem kind for ASR atoms (see repro.proql.unfolding for the rest).
KIND_ASR = "asr"


@dataclass(frozen=True)
class ASRDefinition:
    """A named ASR over a path of mappings."""

    name: str
    path: tuple[str, ...]  # mapping names, source -> target
    kind: str = "complete"

    def __post_init__(self) -> None:
        if self.kind not in ASR_KINDS:
            raise IndexingError(f"unknown ASR kind {self.kind!r}")
        if not self.path:
            raise IndexingError("ASR path must be non-empty")
        if len(set(self.path)) != len(self.path):
            raise IndexingError(f"ASR path repeats a mapping: {self.path}")

    @property
    def length(self) -> int:
        return len(self.path)

    def segments(self) -> list[tuple[int, int]]:
        """(start, end) index ranges of the indexed segments, the full
        path first, then by decreasing length (the order unfoldASRs
        considers them — Figure 4, step 7)."""
        n = len(self.path)
        if self.kind == "complete":
            ranges = [(0, n)]
        elif self.kind == "prefix":
            ranges = [(0, end) for end in range(n, 0, -1)]
        elif self.kind == "suffix":
            ranges = [(start, n) for start in range(0, n)]
        else:  # subpath
            ranges = [
                (start, end)
                for end in range(n, 0, -1)
                for start in range(0, end)
            ]
            ranges.sort(key=lambda r: r[0] - r[1])  # by decreasing length
        return ranges


class ComposedPath:
    """The variable-level composition of a path's provenance atoms."""

    def __init__(self, definition: ASRDefinition, cdss: CDSS):
        self.definition = definition
        mappings = []
        for name in definition.path:
            if name not in cdss.mappings:
                raise IndexingError(f"ASR {definition.name}: unknown mapping {name}")
            mappings.append(cdss.mappings[name])
        self._compose(mappings)

    def _compose(self, mappings: list[SchemaMapping]) -> None:
        heads: list[tuple[Atom, ...]] = []
        bodies: list[tuple[Atom, ...]] = []
        prov_atoms: list[Atom] = []
        types: dict[Variable, str] = {}
        for index, mapping in enumerate(mappings):
            suffix = f"__s{index}"
            rule = mapping.rule.rename_variables(suffix)
            heads.append(rule.head)
            bodies.append(rule.body)
            key_terms = tuple(
                Variable(col.name + suffix) for col in mapping.provenance_columns
            )
            for column, term in zip(mapping.provenance_columns, key_terms):
                types[term] = column.type
            prov_atoms.append(
                Atom(provenance_relation_name(mapping.name), key_terms)
            )
        # Chain adjacent mappings: unify each downstream body atom with
        # an upstream head atom of the same relation.
        theta: dict[Variable, Term] = {}
        for index in range(len(mappings) - 1):
            upstream_heads = [a.substitute(theta) for a in heads[index]]
            used: set[int] = set()
            connected = False
            for body_atom in bodies[index + 1]:
                body_atom = body_atom.substitute(theta)
                for h_index, head_atom in enumerate(upstream_heads):
                    if h_index in used:
                        continue
                    unifier = unify_atoms(body_atom, head_atom)
                    if unifier is None:
                        continue
                    used.add(h_index)
                    connected = True
                    composed = {
                        var: _subst(term, unifier)
                        for var, term in theta.items()
                    }
                    composed.update(unifier)
                    theta = composed
                    upstream_heads = [
                        a.substitute(theta) for a in heads[index]
                    ]
                    break
            if not connected:
                raise IndexingError(
                    f"ASR {self.definition.name}: mappings "
                    f"{self.definition.path[index]} and "
                    f"{self.definition.path[index + 1]} are not adjacent"
                )
        self.prov_atoms = tuple(a.substitute(theta) for a in prov_atoms)
        # Canonical column naming in first-occurrence order.
        renaming: dict[Variable, Variable] = {}
        column_types: dict[Variable, str] = {}
        for atom, raw in zip(self.prov_atoms, prov_atoms):
            for term, raw_term in zip(atom.terms, raw.terms):
                if isinstance(term, Variable) and term not in renaming:
                    fresh = Variable(f"c{len(renaming)}")
                    renaming[term] = fresh
                    column_types[fresh] = types.get(raw_term, "int")
        self.prov_atoms = tuple(a.substitute(renaming) for a in self.prov_atoms)
        self.columns: tuple[Variable, ...] = tuple(renaming.values())
        # Column types come positionally from the raw provenance atoms
        # (theta may have merged variables; any witness type is valid
        # because merged columns are join-equal).
        self.column_types = {var: "int" for var in self.columns}
        for atom, source in zip(self.prov_atoms, prov_atoms):
            for term, raw_term in zip(atom.terms, source.terms):
                if isinstance(term, Variable):
                    self.column_types[term] = types.get(raw_term, "int")

    # -- derived schemas ------------------------------------------------------------

    def schema(self) -> RelationSchema:
        return RelationSchema.of(
            self.definition.name,
            [(var.name, self.column_types[var]) for var in self.columns],
        )

    def segment_atoms(self, start: int, end: int) -> tuple[Atom, ...]:
        return self.prov_atoms[start:end]

    def segment_columns(self, start: int, end: int) -> list[Variable]:
        seen: dict[Variable, None] = {}
        for atom in self.segment_atoms(start, end):
            for var in atom.variables():
                seen.setdefault(var)
        return list(seen)

    # -- materialization SQL ------------------------------------------------------------

    def _segment_select(self, start: int, end: int) -> str:
        location: dict[Variable, str] = {}
        from_parts: list[str] = []
        where_parts: list[str] = []
        for offset, atom in enumerate(self.segment_atoms(start, end)):
            alias = f"p{start + offset}"
            from_parts.append(f"{quote_identifier(atom.relation)} AS {alias}")
            schema_cols = atom.terms
            for position, term in enumerate(schema_cols):
                assert isinstance(term, Variable)
                column_name = self._prov_column_name(start + offset, position)
                column = f"{alias}.{quote_identifier(column_name)}"
                if term in location:
                    where_parts.append(f"{column} = {location[term]}")
                else:
                    location[term] = column
        select_parts = []
        for var in self.columns:
            expression = location.get(var, "NULL")
            select_parts.append(f"{expression} AS {quote_identifier(var.name)}")
        sql = f"SELECT {', '.join(select_parts)} FROM {', '.join(from_parts)}"
        if where_parts:
            sql += f" WHERE {' AND '.join(where_parts)}"
        return sql

    def _prov_column_name(self, atom_index: int, position: int) -> str:
        mapping_name = self.definition.path[atom_index]
        return self._prov_schemas[mapping_name].attributes[position].name

    def materialization_sql(self, cdss: CDSS) -> str:
        """The CREATE TABLE ... AS SELECT for this ASR's contents."""
        self._prov_schemas = {
            name: cdss.mappings[name].provenance_schema()
            for name in self.definition.path
        }
        selects = [
            self._segment_select(start, end)
            for start, end in self.definition.segments()
        ]
        body = "\nUNION\n".join(selects)
        return (
            f"CREATE TABLE {quote_identifier(self.definition.name)} AS\n{body}"
        )


def _subst(term: Term, theta: dict[Variable, Term]) -> Term:
    from repro.datalog.terms import substitute

    return substitute(term, theta)


def check_non_overlapping(definitions: list[ASRDefinition]) -> None:
    """Reject overlapping ASR definitions (Section 5.2 allows only
    non-overlapping ones, so the greedy rewriting stays minimal)."""
    seen: dict[str, str] = {}
    for definition in definitions:
        for mapping in definition.path:
            if mapping in seen:
                raise IndexingError(
                    f"ASRs {seen[mapping]} and {definition.name} overlap on "
                    f"mapping {mapping}"
                )
            seen[mapping] = definition.name


def chain_windows(
    path: tuple[str, ...], length: int
) -> Iterator[tuple[str, ...]]:
    """Split a mapping path into windows of at most *length*, aligned
    from the target (downstream) side — "we essentially split the chain
    into paths up to this length, and possibly store the remaining
    mappings in a shorter ASR" (Section 6.4)."""
    if length <= 0:
        raise IndexingError("ASR window length must be positive")
    end = len(path)
    while end > 0:
        start = max(0, end - length)
        yield path[start:end]
        end = start
