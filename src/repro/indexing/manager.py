"""ASR lifecycle: registration, materialization, and engine plumbing.

:class:`ASRManager` owns the ASRs of one storage instance.  It
materializes each registered ASR as an indexed SQLite table and
exposes the two hooks the SQL engine needs: a rule ``rewrite``
callback (Figure 4) and a schema lookup covering ASR tables.
"""

from __future__ import annotations

from repro.cdss.system import CDSS
from repro.errors import IndexingError
from repro.indexing.asr import (
    KIND_ASR,
    ASRDefinition,
    ComposedPath,
    check_non_overlapping,
)
from repro.indexing.rewriting import unfold_asrs
from repro.proql.sql_translator import SchemaLookup, default_schema_lookup
from repro.proql.unfolding import BodyItem, UnfoldedRule
from repro.relational.schema import RelationSchema
from repro.storage.encoding import quote_identifier
from repro.storage.sqlite_backend import SQLiteStorage


class ASRManager:
    """Registers and materializes ASRs over one SQLite store."""

    def __init__(self, storage: SQLiteStorage):
        self.storage = storage
        self.cdss: CDSS = storage.cdss
        self.definitions: list[ASRDefinition] = []
        self.composed: list[ComposedPath] = []
        self._schemas: dict[str, RelationSchema] = {}
        self._base_lookup = default_schema_lookup(self.cdss)

    # -- registration ------------------------------------------------------------

    def register(self, definition: ASRDefinition) -> ComposedPath:
        """Materialize *definition* and make it available for rewriting.

        Rejects overlapping definitions (Section 5.2) and duplicate
        names.  Creates the ASR table with B-tree indexes on every
        column so path traversals can enter from either end.
        """
        if any(d.name == definition.name for d in self.definitions):
            raise IndexingError(f"duplicate ASR name {definition.name}")
        check_non_overlapping(self.definitions + [definition])
        composed = ComposedPath(definition, self.cdss)
        sql = composed.materialization_sql(self.cdss)
        self.storage.connection.execute(sql)
        schema = composed.schema()
        for attribute in schema.attributes:
            self.storage.connection.execute(
                f"CREATE INDEX "
                f"{quote_identifier(f'ix_{definition.name}_{attribute.name}')} "
                f"ON {quote_identifier(definition.name)} "
                f"({quote_identifier(attribute.name)})"
            )
        self.storage.connection.commit()
        self.definitions.append(definition)
        self.composed.append(composed)
        self._schemas[definition.name] = schema
        return composed

    def register_all(self, definitions: list[ASRDefinition]) -> None:
        for definition in definitions:
            self.register(definition)

    def drop_all(self) -> None:
        """Remove every materialized ASR (used between benchmark runs)."""
        for definition in self.definitions:
            self.storage.connection.execute(
                f"DROP TABLE IF EXISTS {quote_identifier(definition.name)}"
            )
        self.storage.connection.commit()
        self.definitions.clear()
        self.composed.clear()
        self._schemas.clear()

    # -- engine hooks ------------------------------------------------------------

    def rewrite(self, rules: list[UnfoldedRule]) -> list[UnfoldedRule]:
        if not self.composed:
            return rules
        return unfold_asrs(rules, self.composed)

    def schema_lookup(self) -> SchemaLookup:
        def lookup(item: BodyItem) -> RelationSchema:
            if item.kind == KIND_ASR:
                return self._schemas[item.atom.relation]
            return self._base_lookup(item)

        return lookup

    def table_sizes(self) -> dict[str, int]:
        return {
            definition.name: self.storage.table_size(definition.name)
            for definition in self.definitions
        }
