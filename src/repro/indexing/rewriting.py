"""ASR rewriting of unfolded rules — the algorithm of Figure 4.

``unfold_asrs`` greedily rewrites each rule: for every registered ASR
it considers the indexed (sub)paths in inverse order of length and,
when a homomorphism from the (sub)path's provenance atoms into the
rule body exists (``find_homomorphism``), replaces those atoms with a
single ASR atom (``unfold_path``).  Because registered ASRs must be
non-overlapping, this greedy longest-first strategy yields a minimal
rewriting (Section 5.2).
"""

from __future__ import annotations

from dataclasses import replace

from repro.datalog.atoms import Atom
from repro.datalog.terms import Term, Variable, fresh_wildcard
from repro.datalog.unification import find_homomorphism
from repro.indexing.asr import KIND_ASR, ASRDefinition, ComposedPath
from repro.proql.unfolding import KIND_PROV, BodyItem, UnfoldedRule


def unfold_path(
    rule: UnfoldedRule,
    composed: ComposedPath,
    start: int,
    end: int,
) -> UnfoldedRule | None:
    """Try to rewrite *rule* using the segment [start, end) of an ASR.

    Returns the rewritten rule, or None when no homomorphism from the
    segment's provenance atoms into the rule body exists (Figure 4,
    ``unfoldPath``).
    """
    segment = composed.segment_atoms(start, end)
    prov_positions = [
        index for index, item in enumerate(rule.items) if item.kind == KIND_PROV
    ]
    targets = [rule.items[index].atom for index in prov_positions]
    homomorphism = find_homomorphism(list(segment), targets)
    if homomorphism is None:
        return None
    segment_vars = set(composed.segment_columns(start, end))
    terms: list[Term] = []
    not_null = set(rule.not_null)
    for column in composed.columns:
        if column in segment_vars:
            image = homomorphism.apply(column)
            terms.append(image)
            if isinstance(image, Variable):
                not_null.add(image)
        else:
            terms.append(fresh_wildcard())
    asr_atom = Atom(composed.definition.name, tuple(terms))
    covered = {prov_positions[t_index] for t_index in homomorphism.covered}
    items: list[BodyItem] = []
    inserted = False
    for index, item in enumerate(rule.items):
        if index in covered:
            if not inserted:
                items.append(BodyItem(asr_atom, KIND_ASR))
                inserted = True
            continue
        items.append(item)
    return replace(
        rule, items=tuple(items), not_null=frozenset(not_null)
    )


def unfold_asrs(
    rules: list[UnfoldedRule],
    composed_paths: list[ComposedPath],
) -> list[UnfoldedRule]:
    """Figure 4's ``unfoldASRs``: rewrite every rule greedily.

    For each rule, repeat until no ASR applies; per ASR, try its
    indexed paths longest-first and take the first that unfolds.
    """
    out: list[UnfoldedRule] = []
    for rule in rules:
        did_something = True
        while did_something:
            did_something = False
            for composed in composed_paths:
                found = False
                for start, end in composed.definition.segments():
                    if found:
                        break
                    rewritten = unfold_path(rule, composed, start, end)
                    if rewritten is not None:
                        rule = rewritten
                        found = True
                if found:
                    did_something = True
        out.append(rule)
    return out
