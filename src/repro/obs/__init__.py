"""repro.obs — tracing, metrics, and a profiler for the CDSS lifecycle.

Zero-dependency observability: hierarchical spans with pluggable sinks
(:mod:`~repro.obs.trace`), a counter/gauge registry the stats API is
populated from (:mod:`~repro.obs.metrics`), the closed span-name
taxonomy (:mod:`~repro.obs.taxonomy`), and a profiler
(:mod:`~repro.obs.report`, CLI: ``python -m repro.obs``).

Opt in with ``CDSS(trace="trace.jsonl")`` (or a :class:`Tracer` /
``TopologySpec(trace=...)``); the default is :data:`NULL_TRACER`,
which allocates nothing on the hot paths.
"""

from .metrics import Counter, Gauge, MetricsRegistry
from .report import (
    build_rollup,
    phase_totals,
    render_report,
    report_json,
    rollup_rows,
    top_spans,
)
from .taxonomy import SPANS
from .trace import (
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    NullTracer,
    Span,
    Tracer,
    as_tracer,
    read_trace,
    validate_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SPANS",
    "Span",
    "Tracer",
    "as_tracer",
    "build_rollup",
    "phase_totals",
    "read_trace",
    "render_report",
    "report_json",
    "rollup_rows",
    "top_spans",
    "validate_trace",
]
