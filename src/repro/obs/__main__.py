"""Entry point: ``python -m repro.obs report|validate trace.jsonl``."""

from .cli import main

raise SystemExit(main())
