"""``python -m repro.obs`` — profiler and validator over trace files.

Subcommands::

    report   trace.jsonl [--top N] [--json]   render the profiler report
    validate trace.jsonl                      schema + nesting check

``report`` exits non-zero on an empty trace (the CI smoke job treats a
span-less trace as a broken instrumentation wiring, not a success);
``validate`` exits non-zero with one line per violation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .report import render_report, report_json
from .trace import read_trace, validate_trace


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="render the profiler report")
    report.add_argument("trace", help="JSONL trace file")
    report.add_argument("--top", type=int, default=10, metavar="N",
                        help="slowest spans to list (default 10)")
    report.add_argument("--json", action="store_true",
                        help="machine-readable output")

    validate = sub.add_parser("validate", help="schema + nesting check")
    validate.add_argument("trace", help="JSONL trace file")

    args = parser.parse_args(argv)
    try:
        records = read_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.command == "validate":
        errors = validate_trace(records)
        for error in errors:
            print(error)
        if errors:
            print(f"trace check: {len(errors)} problem(s)")
            return 1
        print(f"trace check: ok ({len(records)} spans)")
        return 0

    if not records:
        print("trace is empty: no spans", file=sys.stderr)
        return 1
    try:
        if args.json:
            print(report_json(records, args.top))
        else:
            print(render_report(records, args.top))
    except BrokenPipeError:  # report piped into head/grep that exited
        sys.stderr.close()  # suppress the interpreter's flush complaint
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
