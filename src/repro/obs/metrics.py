"""Counter/gauge metrics registry.

One :class:`MetricsRegistry` per :class:`~repro.cdss.system.CDSS`
replaces the scattered stat fields the engines used to bump directly:
engines call ``metrics.add("exchange.firings", n)`` and the existing
``EvaluationResult``/``ExperimentResult`` columns are *populated from*
the registry, keeping the public stats API unchanged while giving a
single queryable source (``cdss.metrics.snapshot()``).

Names are dotted paths (``exchange.seconds``, ``deletion.rows``); the
registry is flat — no hierarchy is enforced, the dots are convention.
Counters accumulate across the system's lifetime (the cumulative
``CDSS.exchange_seconds`` is literally ``metrics.value("exchange.seconds")``);
per-call numbers come from spans, not the registry.
"""

from __future__ import annotations


class Counter:
    """A monotonically accumulating metric (floats allowed: seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-value-wins metric (e.g. current instance size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class MetricsRegistry:
    """Named counters and gauges, created on first touch."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """The counter called *name* (created at zero if new)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name* (created at zero if new)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter *name* by *amount*."""
        self.counter(name).add(amount)

    def set(self, name: str, value: float) -> None:
        """Set the gauge *name* to *value*."""
        self.gauge(name).set(value)

    def value(self, name: str) -> float:
        """Current value of counter or gauge *name* (0.0 if untouched)."""
        counter = self._counters.get(name)
        if counter is not None:
            return counter.value
        gauge = self._gauges.get(name)
        if gauge is not None:
            return gauge.value
        return 0.0

    def snapshot(self) -> dict[str, float]:
        """All metrics as one flat name → value mapping."""
        out = {name: c.value for name, c in self._counters.items()}
        out.update({name: g.value for name, g in self._gauges.items()})
        return dict(sorted(out.items()))
