"""Profiler over span traces: self-time rollup tree + top-N slowest.

Input is a list of span records (the JSONL schema of
:mod:`repro.obs.trace` — from :func:`~repro.obs.trace.read_trace` or
``MemorySink.records()``).  The report answers two questions:

* **rollup** — aggregate spans by their *name path* (root name / child
  name / ...), summing wall time, **self** time (wall minus the wall of
  direct children — the time a node spent in its own code) and counts.
  Self time is what names a bottleneck: fig08's unfold-dominated
  profile shows up as ``query.unfold`` self time towering over
  ``query.sql``.
* **top spans** — the N individual spans with the largest wall time.

``python -m repro.obs report trace.jsonl`` renders both; ``--json``
emits the same data machine-readably.
"""

from __future__ import annotations

import json
from typing import Any, Iterable


class _Node:
    """One rollup-tree node: spans aggregated by name path."""

    __slots__ = ("name", "count", "wall_ms", "self_ms", "cpu_ms", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.wall_ms = 0.0
        self.self_ms = 0.0
        self.cpu_ms = 0.0
        self.children: dict[str, _Node] = {}


def _self_times(records: list[dict[str, Any]]) -> dict[int, float]:
    """Per-span self time: wall minus the wall of direct children."""
    self_ms = {r["span"]: float(r["wall_ms"]) for r in records}
    for record in records:
        parent = record.get("parent")
        if parent in self_ms:
            self_ms[parent] -= float(record["wall_ms"])
    return self_ms


def build_rollup(records: Iterable[dict[str, Any]]) -> _Node:
    """Aggregate spans by name path into a rollup tree.

    The returned root is synthetic (name ``""``); its children are the
    trace's root span names.  Each node sums wall/cpu/self time and
    occurrence count over every span sharing that name path.
    """
    records = [r for r in records if isinstance(r, dict) and "span" in r]
    by_id = {r["span"]: r for r in records}
    self_ms = _self_times(records)
    path_cache: dict[int, tuple[str, ...]] = {}

    def path_of(record: dict[str, Any]) -> tuple[str, ...]:
        span_id = record["span"]
        cached = path_cache.get(span_id)
        if cached is not None:
            return cached
        parent = by_id.get(record.get("parent"))
        path = (path_of(parent) if parent is not None else ()) + (record["name"],)
        path_cache[span_id] = path
        return path

    root = _Node("")
    for record in records:
        node = root
        for name in path_of(record):
            child = node.children.get(name)
            if child is None:
                child = node.children[name] = _Node(name)
            node = child
        node.count += 1
        node.wall_ms += float(record["wall_ms"])
        node.cpu_ms += float(record["cpu_ms"])
        node.self_ms += self_ms[record["span"]]
    return root


def rollup_rows(root: _Node) -> list[dict[str, Any]]:
    """Flatten the rollup tree depth-first into row dicts.

    Each row carries ``depth`` for indentation and ``path`` (slash
    joined) for machine consumption; children are ordered by wall time
    so the heaviest subtree reads first.
    """
    rows: list[dict[str, Any]] = []

    def walk(node: _Node, depth: int, prefix: str) -> None:
        for child in sorted(
            node.children.values(), key=lambda n: -n.wall_ms
        ):
            path = f"{prefix}/{child.name}" if prefix else child.name
            rows.append(
                {
                    "path": path,
                    "name": child.name,
                    "depth": depth,
                    "count": child.count,
                    "wall_ms": child.wall_ms,
                    "self_ms": child.self_ms,
                    "cpu_ms": child.cpu_ms,
                }
            )
            walk(child, depth + 1, path)

    walk(root, 0, "")
    return rows


def top_spans(
    records: Iterable[dict[str, Any]], limit: int = 10
) -> list[dict[str, Any]]:
    """The *limit* individual spans with the largest wall time."""
    spans = [r for r in records if isinstance(r, dict) and "span" in r]
    spans.sort(key=lambda r: -float(r["wall_ms"]))
    return spans[:limit]


def phase_totals(records: Iterable[dict[str, Any]]) -> dict[str, float]:
    """Total wall ms per span *name* (not path) — benchmark columns.

    fig08 derives its ``unfold_ms``/``plan_ms``/``eval_ms``/``mirror_ms``
    breakdown from this instead of hand-threaded counters.
    """
    totals: dict[str, float] = {}
    for record in records:
        if isinstance(record, dict) and "name" in record:
            name = record["name"]
            totals[name] = totals.get(name, 0.0) + float(record["wall_ms"])
    return dict(sorted(totals.items()))


def render_report(
    records: list[dict[str, Any]], limit: int = 10, width: int = 46
) -> str:
    """The human-readable profiler report (rollup tree + top spans)."""
    if not records:
        return "trace is empty: no spans"
    rows = rollup_rows(build_rollup(records))
    total_wall = sum(r["wall_ms"] for r in rows if r["depth"] == 0)
    lines = [
        f"trace: {len(records)} spans, "
        f"{total_wall:.1f} ms total root wall time",
        "",
        f"{'span':<{width}} {'count':>6} {'wall_ms':>10} "
        f"{'self_ms':>10} {'cpu_ms':>10} {'self%':>6}",
    ]
    for row in rows:
        label = "  " * row["depth"] + row["name"]
        if len(label) > width:
            label = label[: width - 1] + "…"
        share = (row["self_ms"] / total_wall * 100.0) if total_wall else 0.0
        lines.append(
            f"{label:<{width}} {row['count']:>6} {row['wall_ms']:>10.2f} "
            f"{row['self_ms']:>10.2f} {row['cpu_ms']:>10.2f} {share:>5.1f}%"
        )
    lines += ["", f"top {min(limit, len(records))} spans by wall time:"]
    for record in top_spans(records, limit):
        attrs = record.get("attrs") or {}
        attr_text = " ".join(f"{k}={v}" for k, v in attrs.items())
        lines.append(
            f"  {record['wall_ms']:>9.2f} ms  {record['name']}"
            + (f"  [{attr_text}]" if attr_text else "")
        )
    return "\n".join(lines)


def report_json(records: list[dict[str, Any]], limit: int = 10) -> str:
    """The ``--json`` report: rollup rows, phase totals, top spans."""
    return json.dumps(
        {
            "spans": len(records),
            "rollup": rollup_rows(build_rollup(records)),
            "phase_totals": phase_totals(records),
            "top": top_spans(records, limit),
        },
        indent=2,
    )
