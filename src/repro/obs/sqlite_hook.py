"""sqlite3 statement hook: rows examined + statement fingerprints.

:class:`StatementTrace` wraps one engine run.  While active it
installs ``sqlite3.Connection.set_trace_callback`` to count every
statement the connection executes, keyed by a short *fingerprint* of
the normalized statement text (whitespace-collapsed, then hashed) —
the per-statement spans of the sqlite engine carry the same
fingerprints, so a profile can be joined back to concrete SQL.  On
exit it restores the connection and emits one ``exchange.sqlite``
rollup span carrying total statements, distinct fingerprints, and the
rows-examined total (``sqlite3`` exposes no per-statement row counter,
so rows examined are summed from the cursor counts the engine reports
into :meth:`add_rows`).

Only constructed when tracing is enabled; the disabled path never
touches the connection.
"""

from __future__ import annotations

import hashlib
import re
from functools import lru_cache
from typing import Any

from .trace import NullTracer, Tracer

_WS = re.compile(r"\s+")


@lru_cache(maxsize=512)
def statement_fingerprint(sql: str) -> str:
    """Stable 8-hex-digit id of a normalized statement text."""
    normalized = _WS.sub(" ", sql).strip()
    return hashlib.sha1(normalized.encode("utf-8")).hexdigest()[:8]


class StatementTrace:
    """Context manager: trace every statement one connection runs."""

    def __init__(
        self, connection: Any, tracer: "Tracer | NullTracer"
    ) -> None:
        self.connection = connection
        self.tracer = tracer
        self.statements = 0
        self.rows_examined = 0
        self._fingerprints: set[str] = set()

    def _on_statement(self, sql: str) -> None:
        self.statements += 1
        self._fingerprints.add(statement_fingerprint(sql))

    def add_rows(self, count: int) -> None:
        """Report rows examined by the statement that just ran."""
        self.rows_examined += count

    def __enter__(self) -> "StatementTrace":
        if self.tracer.enabled:
            self.connection.set_trace_callback(self._on_statement)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        if self.tracer.enabled:
            self.connection.set_trace_callback(None)
            self.tracer.record(
                "exchange.sqlite",
                0.0,
                statements=self.statements,
                fingerprints=len(self._fingerprints),
                rows_examined=self.rows_examined,
            )
        return False
