"""The span taxonomy: every span name the instrumentation may emit.

``docs/observability.md`` documents each of these in its taxonomy
table, and ``tools/check_docs.py`` cross-checks the two (both ways) —
the same contract ``docs/analysis.md`` has with the analyzer's
diagnostic codes.  Instrumentation code must not invent names outside
this dict; tests assert that traced lifecycles emit a subset of it.

:data:`METRICS` plays the same role for the *named* metrics counters a
docs page commits to (beyond the generic ``{kind}.{field}`` mirroring
of ``EvaluationResult`` stats): ``docs/graph-index.md`` documents each
one and ``tools/check_docs.py`` cross-checks that table too.
"""

from __future__ import annotations

#: span name -> one-line description (mirrors docs/observability.md).
SPANS: dict[str, str] = {
    # -- update exchange ---------------------------------------------------
    "exchange": "One CDSS.exchange call (attrs: engine, resident, rounds, firings).",
    "exchange.validate": "Pre-flight static analysis of the mapping program.",
    "exchange.compile": "Mapping-program compilation / cache fetch (attrs: cache_hit).",
    "exchange.mirror": "Incremental instance-to-store sync (attrs: rows, relations).",
    "exchange.round": "One semi-naive round of either engine (attrs: round).",
    "exchange.rule": "One compiled plan over one delta, memory engine (attrs: rule).",
    "exchange.statement": "One SQL statement of a round, sqlite engine (attrs: rule, phase, fingerprint).",
    "exchange.publish": "Head-insert + provenance publication of a sqlite round.",
    "exchange.writeback": "Store-to-Python materialization after sqlite convergence.",
    "exchange.sqlite": "sqlite statement-hook rollup for one run (attrs: statements, fingerprints).",
    # -- deletion propagation ----------------------------------------------
    "deletion": "One CDSS.propagate_deletions call (attrs: engine).",
    "deletion.annotate": "Derivability annotation of the in-memory graph.",
    "deletion.fixpoint": "SQL liveness fixpoint over the lowered program.",
    "deletion.kill": "Kill sweep: delete unsupported rows and dead P_m rows.",
    "fixpoint.round": "One round of the shared SQL liveness fixpoint (attrs: round, firings).",
    # -- graph queries ------------------------------------------------------
    "graph_query": "One CDSS.{derivability,lineage,trusted} call (attrs: query, engine).",
    "walk.round": "One backward-walk round of the resident lineage query (attrs: round).",
    # -- maintained reachability index ---------------------------------------
    "index.maintain": "Post-run maintenance of the reachability index (attrs: mode, fires).",
    "index.invalidate": "Deletion cone exceeded the threshold: index marked stale (attrs: dead, fires).",
    "index.rebuild": "Query-time index rebuild from the stored firing history (attrs: fires).",
    # -- concurrent serving --------------------------------------------------
    "serve.query": "One read-only reader answer (attrs: kind, epoch, cache_hit, path).",
    "serve.checkpoint": "Writer WAL checkpoint under checkpoint_with_retry (attrs: mode, busy, retries).",
    # -- ProQL --------------------------------------------------------------
    "query.unfold": "ProQL-to-datalog unfolding of one query (attrs: rules, mode).",
    "query.compile": "Datalog-to-SQL translation, accumulated across unfolded rules.",
    "query.sql": "SQL execution against the store, accumulated across unfolded rules.",
    "query.reconstruct": "Row-to-graph reconstruction of the query answer.",
    "unfold.expand": "Unfolding stage: mapping application / alternative expansion.",
    "unfold.merge_specs": "Unfolding stage: merging projection specs into rewritten rules.",
    "unfold.dedupe": "Unfolding stage: canonical-form deduplication of rewritings.",
    "unfold.prune": "Unfolding stage: oracle pruning + subsumption factorization (attrs: rules).",
}

#: metric name -> one-line description (mirrors docs/graph-index.md).
METRICS: dict[str, str] = {
    "graph_query.index_hit": "Resident graph query answered from the maintained (current) reachability index.",
    "graph_query.index_miss": "Resident graph query forced a query-time index rebuild before answering.",
}

#: serving-tier metric name -> one-line description (mirrors
#: docs/serving.md; kept separate from :data:`METRICS` because each
#: docs page cross-checks exactly its own catalog).
SERVE_METRICS: dict[str, str] = {
    "serve.queries": "Reader queries answered (any path, including cache hits).",
    "serve.cache_hits": "Reader queries answered from the session's per-epoch result cache.",
    "serve.snapshot_refreshes": "Snapshots that observed a new epoch and dropped the session caches.",
    "serve.stale_retries": "Snapshot attempts refused because the index was stale or a run was dirty.",
    "serve.busy_retries": "SQLITE_BUSY/LOCKED attempts retried while opening or reading.",
    "serve.unavailable": "Queries that exhausted the retry budget (ServeUnavailable raised).",
    "serve.checkpoints": "Writer checkpoints issued through checkpoint_with_retry.",
    "serve.checkpoint_retries": "Checkpoint attempts repeated because a reader snapshot pinned the WAL.",
}
