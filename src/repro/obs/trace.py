"""Hierarchical span tracing for the exchange/deletion/query lifecycle.

A :class:`Tracer` produces **spans**: named intervals with parent
links, wall-clock and CPU time, and typed attributes.  Engines open
spans around their phases (``with tracer.span("exchange.round") as s:``)
and the resulting tree answers "where does the time actually go" for
one lifecycle run — the question every optimisation item on the
ROADMAP starts with.

Design constraints, in order:

1. **Zero cost when disabled.**  The default tracer is
   :data:`NULL_TRACER`; its :meth:`~NullTracer.span` returns one
   module-level singleton whose ``__enter__``/``__exit__``/``set`` are
   no-ops, so the exchange hot path allocates *no span objects* and
   pays only a handful of attribute lookups per instrumented block.
   Attribute values are attached via :meth:`Span.set` *after* entering
   the span (never as ``span(**kwargs)``), so a disabled tracer never
   even builds the attribute dict.
2. **Exception-safe nesting.**  Spans close in strict LIFO order
   through ``with`` unwinding; a span closed by an exception is marked
   ``status="error"`` and still emitted, so no trace ends with a
   dangling open span.
3. **Pluggable sinks.**  :class:`MemorySink` keeps finished spans in a
   list (tests, in-process profiling); :class:`JsonlSink` appends one
   JSON object per span to a file (offline analysis via
   ``python -m repro.obs report trace.jsonl``).

The JSONL record schema (one object per finished span)::

    {"span": int, "parent": int|null, "name": str,
     "t0": float, "wall_ms": float, "cpu_ms": float,
     "status": "ok"|"error", "attrs": {str: str|int|float|bool|null}}

``t0`` is seconds since the tracer's epoch (its creation), so spans of
one trace are mutually comparable; ``wall_ms``/``cpu_ms`` are the
span's own durations.  :func:`validate_trace` checks this schema plus
the structural invariants (unique ids, resolvable parents, child
intervals inside their parent's).

Tracers are deliberately single-threaded — one tracer per CDSS, like
one connection per store.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Iterable, TextIO

#: attribute value types that serialize losslessly to JSON.
AttrValue = "str | int | float | bool | None"

#: span statuses a well-formed trace may contain.
STATUSES = ("ok", "error")


class Span:
    """One named interval of a trace (also its own context manager).

    Only ever constructed by an *enabled* :class:`Tracer` — disabled
    tracing reuses the :data:`_NULL_SPAN` singleton instead, which is
    what keeps the hot paths allocation-free by default.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "t0",
        "_cpu0",
        "wall_seconds",
        "cpu_seconds",
        "attrs",
        "status",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: "int | None",
        t0: float,
        cpu0: float,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t0 = t0
        self._cpu0 = cpu0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.attrs: dict[str, Any] = {}
        self.status = "ok"
        self._tracer = tracer

    def set(self, key: str, value: Any) -> "Span":
        """Attach one attribute (chainable)."""
        self.attrs[key] = value
        return self

    @property
    def open(self) -> bool:
        """True until the span has been closed (and emitted)."""
        return self._tracer is not None

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        tracer = self._tracer
        if tracer is not None:
            tracer._close(self, error=exc_type is not None)
        return False

    def to_record(self) -> dict[str, Any]:
        """The JSONL representation (see the module docstring)."""
        return {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t0": self.t0,
            "wall_ms": self.wall_seconds * 1e3,
            "cpu_ms": self.cpu_seconds * 1e3,
            "status": self.status,
            "attrs": {key: _jsonable(value) for key, value in self.attrs.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else f"{self.wall_seconds * 1e3:.2f}ms"
        return f"<Span {self.name} #{self.span_id} {state}>"


def _jsonable(value: Any) -> Any:
    """Coerce an attribute to the JSON-safe value domain."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


class _NullSpan:
    """The shared do-nothing span of a disabled tracer."""

    __slots__ = ()

    open = False
    name = ""
    attrs: dict[str, Any] = {}

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every operation is a no-op.

    :meth:`span` hands back one module-level singleton — no ``Span``
    objects (nor attribute dicts) are ever allocated, which is the
    contract the exchange hot path relies on.
    """

    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def record(
        self, name: str, wall_seconds: float, cpu_seconds: float = 0.0, **attrs: Any
    ) -> None:
        return None

    def close(self) -> None:
        return None


#: the default tracer everywhere a ``tracer=`` parameter is optional.
NULL_TRACER = NullTracer()


class MemorySink:
    """Collects finished spans in memory (tests, in-process profiling)."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def emit(self, span: Span) -> None:
        self.spans.append(span)

    def records(self) -> list[dict[str, Any]]:
        """The spans as JSONL-shaped dicts (profiler/validator input)."""
        return [span.to_record() for span in self.spans]

    def clear(self) -> None:
        self.spans.clear()

    def close(self) -> None:
        return None


class JsonlSink:
    """Appends one JSON object per finished span to *path*.

    The file is opened lazily (first span) and line-buffered, so a
    trace is readable even if the process exits without an explicit
    :meth:`close` — what the CI smoke job relies on.
    """

    def __init__(self, path: "str | os.PathLike[str]"):
        self.path = os.fspath(path)
        self._handle: "TextIO | None" = None

    def emit(self, span: Span) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8", buffering=1)
        self._handle.write(json.dumps(span.to_record()) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class Tracer:
    """An enabled tracer: hierarchical spans emitted to one sink.

    ``with tracer.span("exchange") as s:`` opens a child of whatever
    span is currently innermost (the tracer keeps the stack); closing
    emits it to the sink.  :meth:`record` emits an already-measured
    pseudo-span — used by stages that *accumulate* time across many
    tiny calls (e.g. the unfolding rewrite stages) where a span per
    call would dominate the cost being measured.
    """

    enabled = True

    def __init__(self, sink: "MemorySink | JsonlSink | None" = None):
        self.sink = sink if sink is not None else MemorySink()
        self._stack: list[Span] = []
        self._next_id = 1
        self._epoch = time.perf_counter()

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str) -> Span:
        """Open a span as a child of the current innermost span."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            self,
            name,
            self._next_id,
            parent,
            time.perf_counter() - self._epoch,
            time.process_time(),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def _close(self, span: Span, error: bool) -> None:
        span.wall_seconds = time.perf_counter() - self._epoch - span.t0
        span.cpu_seconds = time.process_time() - span._cpu0
        if error:
            span.status = "error"
        span._tracer = None
        # Strict LIFO: anything still above the closing span was left
        # open (a span opened without `with`); close it as an error so
        # the emitted trace never contains a dangling child.
        while self._stack and self._stack[-1] is not span:
            orphan = self._stack.pop()
            orphan.wall_seconds = time.perf_counter() - self._epoch - orphan.t0
            orphan.cpu_seconds = time.process_time() - orphan._cpu0
            orphan.status = "error"
            orphan._tracer = None
            self.sink.emit(orphan)
        if self._stack:
            self._stack.pop()
        self.sink.emit(span)

    def record(
        self, name: str, wall_seconds: float, cpu_seconds: float = 0.0, **attrs: Any
    ) -> None:
        """Emit a completed span of the given duration.

        The pseudo-span is parented under the current innermost span
        and stamped as ending now (so ``t0 = now - wall``); callers use
        it to report time *accumulated* across many calls as one node
        of the profile tree.
        """
        parent = self._stack[-1].span_id if self._stack else None
        now = time.perf_counter() - self._epoch
        span = Span(self, name, self._next_id, parent, max(0.0, now - wall_seconds), 0.0)
        self._next_id += 1
        span.wall_seconds = wall_seconds
        span.cpu_seconds = cpu_seconds
        span.attrs.update(attrs)
        span._tracer = None
        self.sink.emit(span)

    @property
    def open_spans(self) -> int:
        """Number of spans currently open (0 between lifecycle calls)."""
        return len(self._stack)

    def close(self) -> None:
        """Close any dangling spans (as errors) and the sink."""
        while self._stack:
            span = self._stack[-1]
            span.__exit__(RuntimeError, None, None)
        self.sink.close()


def as_tracer(trace: object) -> "Tracer | NullTracer":
    """Coerce a user-facing ``trace=`` value into a tracer.

    ``None`` → :data:`NULL_TRACER` (disabled); a :class:`Tracer` or
    :class:`NullTracer` passes through; a string/path → a tracer
    writing JSONL to that file; a sink → a tracer over it.
    """
    if trace is None:
        return NULL_TRACER
    if isinstance(trace, (Tracer, NullTracer)):
        return trace
    if isinstance(trace, (str, os.PathLike)):
        return Tracer(JsonlSink(trace))
    if isinstance(trace, (MemorySink, JsonlSink)):
        return Tracer(trace)
    raise TypeError(
        f"trace= expects None, a Tracer, a sink, or a path; got {trace!r}"
    )


# -- trace files ------------------------------------------------------------


def read_trace(path: "str | os.PathLike[str]") -> list[dict[str, Any]]:
    """Load a JSONL trace file into span records."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{os.fspath(path)}:{line_number}: not JSON: {exc}"
                ) from exc
    return records


#: required record fields and their accepted types.
_SCHEMA: dict[str, tuple[type, ...]] = {
    "span": (int,),
    "parent": (int, type(None)),
    "name": (str,),
    "t0": (int, float),
    "wall_ms": (int, float),
    "cpu_ms": (int, float),
    "status": (str,),
    "attrs": (dict,),
}

#: slack (ms) allowed when checking child-inside-parent containment —
#: covers float rounding of independently captured clock reads.
_CONTAINMENT_SLACK_MS = 0.5


def validate_trace(records: Iterable[dict[str, Any]]) -> list[str]:
    """Schema + structural check of span records.

    Returns one error string per violation (empty list = valid):
    missing/mistyped fields, non-bool-int-float-str-None attribute
    values, duplicate span ids, unresolvable parents, unknown
    statuses, and any child interval not contained in its parent's.
    """
    errors: list[str] = []
    by_id: dict[int, dict[str, Any]] = {}
    records = list(records)
    for index, record in enumerate(records):
        where = f"record {index}"
        if not isinstance(record, dict):
            errors.append(f"{where}: not an object")
            continue
        for field, types in _SCHEMA.items():
            if field not in record:
                errors.append(f"{where}: missing field {field!r}")
            elif not isinstance(record[field], types) or (
                isinstance(record[field], bool) and bool not in types
            ):
                errors.append(
                    f"{where}: field {field!r} has type "
                    f"{type(record[field]).__name__}"
                )
        name = record.get("name")
        where = f"record {index} ({name})"
        if record.get("status") not in STATUSES:
            errors.append(f"{where}: unknown status {record.get('status')!r}")
        attrs = record.get("attrs")
        if isinstance(attrs, dict):
            for key, value in attrs.items():
                if not isinstance(key, str) or not isinstance(
                    value, (str, int, float, bool, type(None))
                ):
                    errors.append(f"{where}: attr {key!r} not JSON-scalar")
        span_id = record.get("span")
        if isinstance(span_id, int):
            if span_id in by_id:
                errors.append(f"{where}: duplicate span id {span_id}")
            else:
                by_id[span_id] = record
    for record in records:
        if not isinstance(record, dict):
            continue
        parent_id = record.get("parent")
        if parent_id is None:
            continue
        parent = by_id.get(parent_id)
        name = record.get("name")
        if parent is None:
            errors.append(f"span {record.get('span')} ({name}): "
                          f"parent {parent_id} not in trace")
            continue
        try:
            child_start = float(record["t0"]) * 1e3
            child_end = child_start + float(record["wall_ms"])
            parent_start = float(parent["t0"]) * 1e3
            parent_end = parent_start + float(parent["wall_ms"])
        except (KeyError, TypeError, ValueError):
            continue  # field errors already reported above
        if (
            child_start < parent_start - _CONTAINMENT_SLACK_MS
            or child_end > parent_end + _CONTAINMENT_SLACK_MS
        ):
            errors.append(
                f"span {record['span']} ({name}): interval "
                f"[{child_start:.3f}, {child_end:.3f}]ms outside parent "
                f"{parent_id} [{parent_start:.3f}, {parent_end:.3f}]ms"
            )
    return errors
