"""ProQL: the provenance query language (Section 3) and its engines."""

from repro.proql.ast import Evaluation, PathExpr, Projection, Query, Step, TupleSpec
from repro.proql.graph_engine import GraphEngine, ProQLResult
from repro.proql.parser import parse_query
from repro.proql.schema_graph import SchemaGraph
from repro.proql.sql_engine import SQLEngine, SQLResult, SQLStats
from repro.proql.unfolding import UnfoldedRule, Unfolder

__all__ = [
    "Evaluation",
    "GraphEngine",
    "PathExpr",
    "ProQLResult",
    "Projection",
    "Query",
    "SQLEngine",
    "SQLResult",
    "SQLStats",
    "SchemaGraph",
    "Step",
    "TupleSpec",
    "UnfoldedRule",
    "Unfolder",
    "parse_query",
]

from repro.proql.sql_annotation import (  # noqa: E402
    AnnotationQuery,
    compile_annotation_query,
    is_sql_aggregatable,
)

__all__ += ["AnnotationQuery", "compile_annotation_query", "is_sql_aggregatable"]
