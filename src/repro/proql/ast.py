"""Abstract syntax of ProQL (Section 3.2).

A query is either a *graph projection* (FOR / WHERE / INCLUDE PATH /
RETURN) or an *annotation computation* wrapping a projection
(EVALUATE <semiring> OF { ... } ASSIGNING EACH ...).

Path expressions alternate tuple-node specs ``[relation? $var?]`` with
derivation steps ``<-`` (any mapping), ``<m`` (named mapping), ``<$p``
(mapping bound to a variable), or ``<-+`` (a path of length >= 1,
which may not be bound to a variable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# -- path expressions ---------------------------------------------------------


@dataclass(frozen=True)
class TupleSpec:
    """``[relation? $variable?]`` — a tuple-node position in a path."""

    relation: Optional[str] = None
    variable: Optional[str] = None

    def __str__(self) -> str:
        inner = " ".join(
            part
            for part in (self.relation, f"${self.variable}" if self.variable else None)
            if part
        )
        return f"[{inner}]"


@dataclass(frozen=True)
class Step:
    """One derivation-edge traversal between two tuple specs.

    ``kind`` is ``"one"`` for single-step edges (``<-``, ``<m``,
    ``<$p``) or ``"plus"`` for ``<-+`` (one or more steps).
    """

    kind: str = "one"
    mapping: Optional[str] = None
    variable: Optional[str] = None

    def __str__(self) -> str:
        if self.kind == "plus":
            return "<-+"
        if self.mapping is not None:
            return f"<{self.mapping}"
        if self.variable is not None:
            return f"<${self.variable}"
        return "<-"


@dataclass(frozen=True)
class PathExpr:
    """``spec0 step1 spec1 step2 spec2 ...`` (len(specs) == len(steps)+1)."""

    specs: tuple[TupleSpec, ...]
    steps: tuple[Step, ...] = ()

    def __post_init__(self) -> None:
        assert len(self.specs) == len(self.steps) + 1

    def variables(self) -> list[str]:
        out = [s.variable for s in self.specs if s.variable]
        out.extend(s.variable for s in self.steps if s.variable)
        return out

    def __str__(self) -> str:
        parts = [str(self.specs[0])]
        for step, spec in zip(self.steps, self.specs[1:]):
            parts.append(str(step))
            parts.append(str(spec))
        return " ".join(parts)


# -- conditions and value expressions ---------------------------------------------


@dataclass(frozen=True)
class Literal:
    """A constant operand (number, string, boolean)."""

    value: object


@dataclass(frozen=True)
class VarRef:
    """``$x`` — a reference to a bound variable."""

    name: str


@dataclass(frozen=True)
class AttrAccess:
    """``$x.attribute`` — attribute of the tuple bound to ``$x``."""

    variable: str
    attribute: str


@dataclass(frozen=True)
class Identifier:
    """A bare name: a mapping name in ``$p = m1`` or a symbolic value
    (e.g. a confidentiality level) in a SET expression."""

    name: str


Operand = Union[Literal, VarRef, AttrAccess, Identifier, "BinaryOp"]


@dataclass(frozen=True)
class BinaryOp:
    """Arithmetic in SET expressions: ``$z + 1``, ``$z * 2``."""

    op: str
    left: Operand
    right: Operand


@dataclass(frozen=True)
class Compare:
    """``left <op> right`` with op in =, !=, <, <=, >, >=."""

    left: Operand
    op: str
    right: Operand


@dataclass(frozen=True)
class Membership:
    """``$x in R`` — the tuple bound to ``$x`` belongs to relation R
    (or to R's local-contribution table)."""

    variable: str
    relation: str


@dataclass(frozen=True)
class PathCondition:
    """A path expression used in WHERE as an existential condition."""

    path: PathExpr


@dataclass(frozen=True)
class Not:
    operand: "Condition"


@dataclass(frozen=True)
class And:
    operands: tuple["Condition", ...]


@dataclass(frozen=True)
class Or:
    operands: tuple["Condition", ...]


Condition = Union[Compare, Membership, PathCondition, Not, And, Or]


# -- query blocks ------------------------------------------------------------


@dataclass(frozen=True)
class Projection:
    """FOR ... [WHERE ...] [INCLUDE PATH ...] RETURN ... (Section 3.2.1)."""

    for_paths: tuple[PathExpr, ...]
    where: Optional[Condition]
    include_paths: tuple[PathExpr, ...]
    return_vars: tuple[str, ...]

    def bound_variables(self) -> set[str]:
        out: set[str] = set()
        for path in self.for_paths:
            out.update(path.variables())
        return out


@dataclass(frozen=True)
class CaseClause:
    """``CASE <condition> : SET <expression>``."""

    condition: Condition
    value: Operand


@dataclass(frozen=True)
class LeafAssignClause:
    """``ASSIGNING EACH leaf_node $y { CASE ... DEFAULT ... }``."""

    variable: str
    cases: tuple[CaseClause, ...]
    default: Optional[Operand] = None


@dataclass(frozen=True)
class MappingAssignClause:
    """``ASSIGNING EACH mapping $p($z) { CASE ... DEFAULT ... }``."""

    variable: str
    parameter: str
    cases: tuple[CaseClause, ...]
    default: Optional[Operand] = None


@dataclass(frozen=True)
class Evaluation:
    """``EVALUATE <semiring> OF { projection } [ASSIGNING ...]*``."""

    semiring: str
    projection: Projection
    leaf_assign: Optional[LeafAssignClause] = None
    mapping_assign: Optional[MappingAssignClause] = None


Query = Union[Projection, Evaluation]


def projection_of(query: Query) -> Projection:
    """The graph-projection component of any query."""
    return query.projection if isinstance(query, Evaluation) else query
