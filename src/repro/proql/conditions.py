"""Evaluation of ProQL conditions and SET expressions.

Conditions appear in WHERE clauses (over path-bound variables) and in
CASE clauses of ASSIGNING blocks (over leaf nodes / mapping names).
The environment maps variable names to:

* :class:`TupleNode` — tuple-node variables,
* :class:`DerivationNode` or a plain mapping-name string — derivation
  variables (``$p = m1`` compares the mapping name),
* arbitrary semiring values — the mapping-function parameter ``$z``.

Attribute access on a relation that lacks the attribute, or comparison
of incompatible values, makes the enclosing comparison **false** rather
than an error (queries range over heterogeneous relations; a condition
like ``$y in A and $y.height >= 6`` must simply not fire for non-A
tuples).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import ProQLSemanticError
from repro.proql.ast import (
    And,
    AttrAccess,
    BinaryOp,
    Compare,
    Condition,
    Identifier,
    Literal,
    Membership,
    Not,
    Operand,
    Or,
    PathCondition,
    VarRef,
)
from repro.provenance.graph import DerivationNode, TupleNode
from repro.relational.instance import Catalog
from repro.relational.schema import local_name, public_name

#: Sentinel for "this operand does not evaluate" (wrong relation, etc.).
UNDEFINED = object()

Environment = Mapping[str, Any]

#: Callback deciding an existential path condition under an environment.
PathChecker = Callable[[PathCondition, Environment], bool]


def _attribute_value(node: TupleNode, attribute: str, catalog: Catalog) -> Any:
    for candidate in (node.relation, public_name(node.relation)):
        schema = catalog.get(candidate)
        if schema is not None and attribute in schema.attribute_names:
            return node.values[schema.position_of(attribute)]
    return UNDEFINED


def eval_operand(
    operand: Operand, env: Environment, catalog: Catalog
) -> Any:
    """Evaluate an operand to a raw value (or UNDEFINED)."""
    if isinstance(operand, Literal):
        return operand.value
    if isinstance(operand, Identifier):
        return operand.name
    if isinstance(operand, VarRef):
        if operand.name not in env:
            raise ProQLSemanticError(f"unbound variable ${operand.name}")
        return env[operand.name]
    if isinstance(operand, AttrAccess):
        if operand.variable not in env:
            raise ProQLSemanticError(f"unbound variable ${operand.variable}")
        node = env[operand.variable]
        if not isinstance(node, TupleNode):
            return UNDEFINED
        return _attribute_value(node, operand.attribute, catalog)
    if isinstance(operand, BinaryOp):
        left = eval_operand(operand.left, env, catalog)
        right = eval_operand(operand.right, env, catalog)
        if left is UNDEFINED or right is UNDEFINED:
            return UNDEFINED
        try:
            return left + right if operand.op == "+" else left * right
        except TypeError:
            return UNDEFINED
    raise ProQLSemanticError(f"cannot evaluate operand {operand!r}")


def _comparable(value: Any) -> Any:
    """Normalize node values for comparison."""
    if isinstance(value, DerivationNode):
        return value.mapping
    return value


def compare_values(left: Any, op: str, right: Any) -> bool:
    """Three-valued-ish comparison: UNDEFINED or type clash => False."""
    if left is UNDEFINED or right is UNDEFINED:
        return False
    left, right = _comparable(left), _comparable(right)
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise ProQLSemanticError(f"unknown comparison operator {op!r}")


def tuple_in_relation(node: TupleNode, relation: str) -> bool:
    """``$x in R`` — true for tuples of R or of R's local table."""
    return node.relation in (relation, local_name(relation)) or public_name(
        node.relation
    ) == relation


def eval_condition(
    condition: Condition,
    env: Environment,
    catalog: Catalog,
    path_checker: PathChecker | None = None,
) -> bool:
    """Evaluate a WHERE/CASE condition under *env*."""
    if isinstance(condition, Compare):
        return compare_values(
            eval_operand(condition.left, env, catalog),
            condition.op,
            eval_operand(condition.right, env, catalog),
        )
    if isinstance(condition, Membership):
        if condition.variable not in env:
            raise ProQLSemanticError(f"unbound variable ${condition.variable}")
        node = env[condition.variable]
        return isinstance(node, TupleNode) and tuple_in_relation(
            node, condition.relation
        )
    if isinstance(condition, Not):
        return not eval_condition(condition.operand, env, catalog, path_checker)
    if isinstance(condition, And):
        return all(
            eval_condition(c, env, catalog, path_checker)
            for c in condition.operands
        )
    if isinstance(condition, Or):
        return any(
            eval_condition(c, env, catalog, path_checker)
            for c in condition.operands
        )
    if isinstance(condition, PathCondition):
        if path_checker is None:
            raise ProQLSemanticError(
                "path conditions are not supported in this context"
            )
        return path_checker(condition, env)
    raise ProQLSemanticError(f"cannot evaluate condition {condition!r}")


def mapping_name_constraints(
    condition: Condition | None, variable: str
) -> set[str] | None:
    """Extract ``$p = m`` constraints on a derivation variable.

    Returns the set of allowed mapping names if the condition restricts
    *variable* to an explicit disjunction of names, else None (meaning
    unconstrained).  Used by the schema-graph matcher (Section 4.2.2)
    to prune mappings before unfolding; the full condition is always
    re-checked against actual bindings afterwards.
    """
    if condition is None:
        return None
    if isinstance(condition, Compare) and condition.op == "=":
        sides = (condition.left, condition.right)
        for this, other in (sides, sides[::-1]):
            if isinstance(this, VarRef) and this.name == variable:
                if isinstance(other, Identifier):
                    return {other.name}
                if isinstance(other, Literal) and isinstance(other.value, str):
                    return {other.value}
        return None
    if isinstance(condition, Or):
        out: set[str] = set()
        for operand in condition.operands:
            names = mapping_name_constraints(operand, variable)
            if names is None:
                return None
            out |= names
        return out
    if isinstance(condition, And):
        result: set[str] | None = None
        for operand in condition.operands:
            names = mapping_name_constraints(operand, variable)
            if names is not None:
                result = names if result is None else (result & names)
        return result
    return None
