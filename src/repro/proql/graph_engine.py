"""Reference ProQL engine over in-memory provenance graphs.

Implements the core semantics of Section 3.1 directly on the
instance-level graph:

* **FOR** — binds variables by enumerating matches of each path
  expression (joins between expressions through shared variables);
* **WHERE** — filters bindings (path expressions act existentially);
* **INCLUDE PATH** — copies every matched path into the output graph,
  with derivation-node closure (a derivation brings all its source and
  target tuple nodes);
* **RETURN** — projects bindings onto the distinguished variables;
* **EVALUATE/ASSIGNING** — annotates the output graph in a semiring
  and pairs each distinguished node with its annotation.

This engine is the semantic oracle for the SQL engine (Section 4) and
the only one supporting cyclic provenance graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import ProQLSemanticError
from repro.proql.ast import (
    Evaluation,
    LeafAssignClause,
    MappingAssignClause,
    PathCondition,
    PathExpr,
    Projection,
    Query,
    Step,
    TupleSpec,
)
from repro.proql.conditions import eval_condition, eval_operand
from repro.proql.parser import parse_query
from repro.provenance.annotate import annotate
from repro.provenance.graph import DerivationNode, ProvenanceGraph, TupleNode
from repro.relational.instance import Catalog
from repro.semirings.base import MappingFunction, Semiring
from repro.semirings.registry import get_semiring

Environment = dict[str, Any]


@dataclass
class ProQLResult:
    """Outcome of one ProQL query."""

    query: Query
    #: variable bindings satisfying FOR + WHERE
    bindings: list[Environment]
    #: RETURN-projected rows of graph nodes, deduplicated
    rows: list[tuple[Any, ...]]
    #: the projected output graph (union of INCLUDE PATH copies)
    graph: ProvenanceGraph
    #: tuple-node annotations, present for EVALUATE queries
    annotations: dict[TupleNode, Any] | None = None
    #: (node, value) pairs per RETURN row, present for EVALUATE queries
    annotated_rows: list[tuple[tuple[Any, Any], ...]] = field(default_factory=list)

    def annotation_of(self, node: TupleNode) -> Any:
        if self.annotations is None:
            raise ProQLSemanticError("projection query has no annotations")
        return self.annotations.get(node)


class GraphEngine:
    """Evaluates ProQL queries against a provenance graph."""

    def __init__(self, graph: ProvenanceGraph, catalog: Catalog) -> None:
        self.graph = graph
        self.catalog = catalog

    # -- public API ------------------------------------------------------------

    def run(self, query: str | Query) -> ProQLResult:
        ast = parse_query(query) if isinstance(query, str) else query
        projection = ast.projection if isinstance(ast, Evaluation) else ast
        bindings = self._solve_projection(projection)
        output = self._build_output_graph(projection, bindings)
        rows = self._return_rows(projection, bindings)
        result = ProQLResult(ast, bindings, rows, output)
        if isinstance(ast, Evaluation):
            self._annotate(ast, result)
        return result

    # -- FOR / WHERE ------------------------------------------------------------

    def _solve_projection(self, projection: Projection) -> list[Environment]:
        environments: list[Environment] = [{}]
        for path in projection.for_paths:
            extended: list[Environment] = []
            seen: set[frozenset] = set()
            for env in environments:
                for match in self.match_path(path, env):
                    key = frozenset(match.items())
                    if key not in seen:
                        seen.add(key)
                        extended.append(match)
            environments = extended
            if not environments:
                return []
        if projection.where is not None:
            environments = [
                env
                for env in environments
                if eval_condition(
                    projection.where, env, self.catalog, self._check_path
                )
            ]
        return environments

    def _check_path(self, condition: PathCondition, env: Environment) -> bool:
        return next(self.match_path(condition.path, dict(env)), None) is not None

    # -- path matching ------------------------------------------------------------

    def _spec_matches(
        self, spec: TupleSpec, node: TupleNode, env: Environment
    ) -> bool:
        if spec.relation is not None and node.relation != spec.relation:
            return False
        if spec.variable is not None and spec.variable in env:
            return env[spec.variable] == node
        return True

    def _spec_candidates(
        self, spec: TupleSpec, env: Environment
    ) -> Iterator[TupleNode]:
        if spec.variable is not None and spec.variable in env:
            node = env[spec.variable]
            if isinstance(node, TupleNode) and self._spec_matches(spec, node, env):
                yield node
            return
        if spec.relation is not None:
            yield from self.graph.tuples_in(spec.relation)
        else:
            yield from self.graph.tuples

    def _bind_spec(
        self, spec: TupleSpec, node: TupleNode, env: Environment
    ) -> Environment:
        if spec.variable is not None and spec.variable not in env:
            env = dict(env)
            env[spec.variable] = node
        return env

    def _reachable_up(
        self, node: TupleNode
    ) -> tuple[set[TupleNode], set[DerivationNode]]:
        """Nodes reachable from *node* by >= 1 backward step."""
        tuples: set[TupleNode] = set()
        derivations: set[DerivationNode] = set()
        stack = [node]
        first = True
        seen: set[TupleNode] = set()
        while stack:
            current = stack.pop()
            if not first and current in seen:
                continue
            if not first:
                seen.add(current)
            first = False
            for deriv in self.graph.derivations_of(current):
                if deriv in derivations:
                    continue
                derivations.add(deriv)
                for source in deriv.sources:
                    tuples.add(source)
                    if source not in seen:
                        stack.append(source)
        return tuples, derivations

    def match_path(
        self, path: PathExpr, env: Environment | None = None
    ) -> Iterator[Environment]:
        """Enumerate bindings of *path* consistent with *env*."""
        env = dict(env or {})

        def extend(
            node: TupleNode,
            steps: tuple[Step, ...],
            specs: tuple[TupleSpec, ...],
            current: Environment,
        ) -> Iterator[Environment]:
            if not steps:
                yield current
                return
            step, spec = steps[0], specs[0]
            if step.kind == "one":
                for deriv in sorted(self.graph.derivations_of(node), key=str):
                    if step.mapping is not None and deriv.mapping != step.mapping:
                        continue
                    if step.variable is not None and step.variable in current:
                        if current[step.variable] != deriv:
                            continue
                    step_env = dict(current)
                    if step.variable is not None:
                        step_env[step.variable] = deriv
                    for source in sorted(set(deriv.sources)):
                        if not self._spec_matches(spec, source, step_env):
                            continue
                        yield from extend(
                            source,
                            steps[1:],
                            specs[1:],
                            self._bind_spec(spec, source, step_env),
                        )
            else:  # plus
                ancestors, _ = self._reachable_up(node)
                for end in sorted(ancestors):
                    if not self._spec_matches(spec, end, current):
                        continue
                    yield from extend(
                        end,
                        steps[1:],
                        specs[1:],
                        self._bind_spec(spec, end, current),
                    )

        for start in sorted(self._spec_candidates(path.specs[0], env)):
            yield from extend(
                start, path.steps, path.specs[1:], self._bind_spec(
                    path.specs[0], start, env
                )
            )

    # -- INCLUDE PATH ------------------------------------------------------------

    def _build_output_graph(
        self, projection: Projection, bindings: list[Environment]
    ) -> ProvenanceGraph:
        output = ProvenanceGraph()
        for env in bindings:
            for path in projection.include_paths:
                for start in self._spec_candidates(path.specs[0], env):
                    self._include_from(
                        start, path.steps, path.specs[1:], env, output
                    )
            # Distinguished nodes are always part of the result.
            for variable in projection.return_vars:
                node = env.get(variable)
                if isinstance(node, TupleNode):
                    output.add_tuple(node)
                elif isinstance(node, DerivationNode):
                    output.add_derivation(node)
        return output

    def _include_from(
        self,
        node: TupleNode,
        steps: tuple[Step, ...],
        specs: tuple[TupleSpec, ...],
        env: Environment,
        output: ProvenanceGraph,
    ) -> bool:
        """Copy matched paths from *node* into *output*; True on match."""
        if not steps:
            output.add_tuple(node)
            return True
        step, spec = steps[0], specs[0]
        success = False
        if step.kind == "one":
            for deriv in self.graph.derivations_of(node):
                if step.mapping is not None and deriv.mapping != step.mapping:
                    continue
                if step.variable is not None and step.variable in env:
                    if env[step.variable] != deriv:
                        continue
                for source in set(deriv.sources):
                    if not self._spec_matches(spec, source, env):
                        continue
                    if self._include_from(
                        source, steps[1:], specs[1:], env, output
                    ):
                        output.add_tuple(node)
                        output.add_derivation(deriv)
                        success = True
        else:  # plus step: include everything between node and each end
            ancestors, ancestor_derivs = self._reachable_up(node)
            unrestricted = (
                len(steps) == 1
                and spec.relation is None
                and (spec.variable is None or spec.variable not in env)
            )
            if unrestricted:
                if ancestors:
                    output.add_tuple(node)
                    for deriv in ancestor_derivs:
                        output.add_derivation(deriv)
                    for tup in ancestors:
                        output.add_tuple(tup)
                    success = True
            else:
                for end in sorted(ancestors):
                    if not self._spec_matches(spec, end, env):
                        continue
                    if not self._include_from(
                        end, steps[1:], specs[1:], env, output
                    ):
                        continue
                    descendants, descendant_derivs = self.graph.descendants(end)
                    between_t = (ancestors | {node}) & (descendants | {end})
                    between_d = ancestor_derivs & descendant_derivs
                    output.add_tuple(node)
                    for deriv in between_d:
                        output.add_derivation(deriv)
                    for tup in between_t:
                        output.add_tuple(tup)
                    success = True
        return success

    # -- RETURN ------------------------------------------------------------

    def _return_rows(
        self, projection: Projection, bindings: list[Environment]
    ) -> list[tuple[Any, ...]]:
        rows: list[tuple[Any, ...]] = []
        seen: set[tuple[Any, ...]] = set()
        for env in bindings:
            row = []
            for variable in projection.return_vars:
                if variable not in env:
                    raise ProQLSemanticError(
                        f"RETURN variable ${variable} is not bound in FOR"
                    )
                row.append(env[variable])
            row_t = tuple(row)
            if row_t not in seen:
                seen.add(row_t)
                rows.append(row_t)
        return sorted(rows, key=str)

    # -- EVALUATE / ASSIGNING ------------------------------------------------------

    def _leaf_assignment(
        self, clause: LeafAssignClause | None, semiring: Semiring
    ) -> Callable[[TupleNode], Any]:
        if clause is None:
            return semiring.default_leaf

        def assign(node: TupleNode) -> Any:
            env = {clause.variable: node}
            for case in clause.cases:
                if eval_condition(case.condition, env, self.catalog):
                    return semiring.validate(
                        eval_operand(case.value, env, self.catalog)
                    )
            if clause.default is not None:
                return semiring.validate(
                    eval_operand(clause.default, env, self.catalog)
                )
            return semiring.one

        return assign

    def _mapping_functions(
        self,
        clause: MappingAssignClause | None,
        semiring: Semiring,
        mapping_names: set[str],
    ) -> dict[str, MappingFunction]:
        if clause is None:
            return {}
        functions: dict[str, MappingFunction] = {}
        for name in mapping_names:
            functions[name] = self._mapping_function(clause, semiring, name)
        return functions

    def _mapping_function(
        self, clause: MappingAssignClause, semiring: Semiring, name: str
    ) -> MappingFunction:
        def apply(value: Any) -> Any:
            # Function definitions must satisfy f(0) = 0 (Section 3.2.2).
            if semiring.is_zero(value):
                return semiring.zero
            env = {clause.variable: name, clause.parameter: value}
            for case in clause.cases:
                if eval_condition(case.condition, env, self.catalog):
                    return semiring.validate(
                        eval_operand(case.value, env, self.catalog)
                    )
            if clause.default is not None:
                return semiring.validate(
                    eval_operand(clause.default, env, self.catalog)
                )
            return value

        return apply

    def _annotate(self, evaluation: Evaluation, result: ProQLResult) -> None:
        semiring = get_semiring(evaluation.semiring)
        assign = self._leaf_assignment(evaluation.leaf_assign, semiring)
        functions = self._mapping_functions(
            evaluation.mapping_assign, semiring, result.graph.mappings_used()
        )
        values = annotate(
            result.graph,
            semiring,
            leaf_assignment=assign,
            mapping_functions=functions,
        )
        result.annotations = values
        result.annotated_rows = [
            tuple(
                (node, values.get(node, semiring.zero))
                for node in row
                if isinstance(node, TupleNode)
            )
            for row in result.rows
        ]
