"""Tokenizer for ProQL query text."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ProQLSyntaxError

#: Keywords (matched case-insensitively for the uppercase paper style;
#: ``leaf_node`` and ``mapping`` appear lowercase in the paper).
KEYWORDS = {
    "FOR",
    "WHERE",
    "INCLUDE",
    "PATH",
    "RETURN",
    "EVALUATE",
    "OF",
    "ASSIGNING",
    "EACH",
    "CASE",
    "SET",
    "DEFAULT",
    "AND",
    "OR",
    "NOT",
    "IN",
    "LEAF_NODE",
    "MAPPING",
    "TRUE",
    "FALSE",
}


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD, IDENT, VAR, NUMBER, STRING, or a literal symbol
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*|--[^\n]*)
  | (?P<plusarrow><-\+)
  | (?P<arrow><-)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<var>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[\[\]{}(),.:+*])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*, raising :class:`ProQLSyntaxError` with position
    info on illegal characters.

    >>> [t.kind for t in tokenize("FOR [O $x]")]
    ['KEYWORD', '[', 'IDENT', 'VAR', ']']
    """
    tokens: list[Token] = []
    line, line_start = 1, 0
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ProQLSyntaxError(
                f"unexpected character {text[pos]!r}",
                line,
                pos - line_start + 1,
            )
        kind = match.lastgroup or ""
        value = match.group()
        column = pos - line_start + 1
        pos = match.end()
        if kind in ("ws", "comment"):
            line += value.count("\n")
            if "\n" in value:
                line_start = pos - len(value.rsplit("\n", 1)[-1])
            continue
        if kind == "ident":
            if value.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", value.upper(), line, column))
            else:
                tokens.append(Token("IDENT", value, line, column))
        elif kind == "var":
            tokens.append(Token("VAR", value[1:], line, column))
        elif kind == "number":
            tokens.append(Token("NUMBER", value, line, column))
        elif kind == "string":
            tokens.append(Token("STRING", value, line, column))
        elif kind == "plusarrow":
            tokens.append(Token("<-+", value, line, column))
        elif kind == "arrow":
            tokens.append(Token("<-", value, line, column))
        elif kind == "op":
            tokens.append(Token("OP", value, line, column))
        else:  # punct
            tokens.append(Token(value, value, line, column))
    return tokens
