"""Recursive-descent parser for ProQL (grammar of Section 3.2 / [31])."""

from __future__ import annotations

from repro.errors import ProQLSyntaxError
from repro.proql.ast import (
    And,
    AttrAccess,
    BinaryOp,
    CaseClause,
    Compare,
    Condition,
    Evaluation,
    Identifier,
    LeafAssignClause,
    Literal,
    MappingAssignClause,
    Membership,
    Not,
    Operand,
    Or,
    PathCondition,
    PathExpr,
    Projection,
    Query,
    Step,
    TupleSpec,
    VarRef,
)
from repro.proql.lexer import Token, tokenize


class _Parser:
    def __init__(self, tokens: list[Token], text: str) -> None:
        self.tokens = tokens
        self.text = text
        self.pos = 0

    # -- token plumbing ---------------------------------------------------------

    def peek(self, offset: int = 0) -> Token | None:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise ProQLSyntaxError("unexpected end of query")
        self.pos += 1
        return token

    def error(self, message: str, token: Token | None = None) -> ProQLSyntaxError:
        token = token or self.peek()
        if token is None:
            return ProQLSyntaxError(f"{message} (at end of query)")
        return ProQLSyntaxError(
            f"{message}, found {token.value!r}", token.line, token.column
        )

    def at(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        if token is None or token.kind != kind:
            return False
        return value is None or token.value == value

    def at_keyword(self, word: str) -> bool:
        return self.at("KEYWORD", word)

    def expect(self, kind: str, value: str | None = None) -> Token:
        if not self.at(kind, value):
            raise self.error(f"expected {value or kind}")
        return self.next()

    def expect_keyword(self, word: str) -> Token:
        return self.expect("KEYWORD", word)

    # -- query ------------------------------------------------------------

    def parse_query(self) -> Query:
        if self.at_keyword("EVALUATE"):
            query: Query = self.parse_evaluation()
        else:
            query = self.parse_projection()
        if self.peek() is not None:
            raise self.error("trailing input after query")
        return query

    def parse_evaluation(self) -> Evaluation:
        self.expect_keyword("EVALUATE")
        semiring = self.expect("IDENT").value
        self.expect_keyword("OF")
        self.expect("{")
        projection = self.parse_projection()
        self.expect("}")
        leaf_assign = None
        mapping_assign = None
        while self.at_keyword("ASSIGNING"):
            self.next()
            self.expect_keyword("EACH")
            if self.at_keyword("LEAF_NODE"):
                if leaf_assign is not None:
                    raise self.error("duplicate leaf_node ASSIGNING clause")
                leaf_assign = self.parse_leaf_assign()
            elif self.at_keyword("MAPPING"):
                if mapping_assign is not None:
                    raise self.error("duplicate mapping ASSIGNING clause")
                mapping_assign = self.parse_mapping_assign()
            else:
                raise self.error("expected leaf_node or mapping")
        return Evaluation(semiring.upper(), projection, leaf_assign, mapping_assign)

    def parse_leaf_assign(self) -> LeafAssignClause:
        self.expect_keyword("LEAF_NODE")
        variable = self.expect("VAR").value
        cases, default = self.parse_case_block()
        return LeafAssignClause(variable, cases, default)

    def parse_mapping_assign(self) -> MappingAssignClause:
        self.expect_keyword("MAPPING")
        variable = self.expect("VAR").value
        self.expect("(")
        parameter = self.expect("VAR").value
        self.expect(")")
        cases, default = self.parse_case_block()
        return MappingAssignClause(variable, parameter, cases, default)

    def parse_case_block(self) -> tuple[tuple[CaseClause, ...], Operand | None]:
        self.expect("{")
        cases: list[CaseClause] = []
        default: Operand | None = None
        while not self.at("}"):
            if self.at_keyword("CASE"):
                self.next()
                condition = self.parse_condition()
                self.expect(":")
                self.expect_keyword("SET")
                value = self.parse_value_expression()
                cases.append(CaseClause(condition, value))
            elif self.at_keyword("DEFAULT"):
                if default is not None:
                    raise self.error("duplicate DEFAULT")
                self.next()
                self.expect(":")
                self.expect_keyword("SET")
                default = self.parse_value_expression()
            else:
                raise self.error("expected CASE or DEFAULT")
        self.expect("}")
        return tuple(cases), default

    # -- projection ------------------------------------------------------------

    def parse_projection(self) -> Projection:
        self.expect_keyword("FOR")
        for_paths = [self.parse_path()]
        while self.at(","):
            self.next()
            for_paths.append(self.parse_path())
        where = None
        if self.at_keyword("WHERE"):
            self.next()
            where = self.parse_condition()
        include_paths: list[PathExpr] = []
        if self.at_keyword("INCLUDE"):
            self.next()
            self.expect_keyword("PATH")
            include_paths.append(self.parse_path())
            while self.at(","):
                self.next()
                include_paths.append(self.parse_path())
        self.expect_keyword("RETURN")
        return_vars = [self.expect("VAR").value]
        while self.at(","):
            self.next()
            return_vars.append(self.expect("VAR").value)
        return Projection(
            tuple(for_paths), where, tuple(include_paths), tuple(return_vars)
        )

    # -- paths ------------------------------------------------------------

    def parse_path(self) -> PathExpr:
        specs = [self.parse_tuple_spec()]
        steps: list[Step] = []
        while True:
            step = self.try_parse_step()
            if step is None:
                break
            steps.append(step)
            specs.append(self.parse_tuple_spec())
        return PathExpr(tuple(specs), tuple(steps))

    def parse_tuple_spec(self) -> TupleSpec:
        self.expect("[")
        relation = None
        variable = None
        if self.at("IDENT"):
            relation = self.next().value
        if self.at("VAR"):
            variable = self.next().value
        self.expect("]")
        return TupleSpec(relation, variable)

    def try_parse_step(self) -> Step | None:
        if self.at("<-+"):
            self.next()
            return Step("plus")
        if self.at("<-"):
            self.next()
            return Step("one")
        if self.at("OP", "<"):
            # '<mapping' or '<$var' — only if followed by IDENT or VAR.
            after = self.peek(1)
            if after is not None and after.kind == "IDENT":
                self.next()
                return Step("one", mapping=self.next().value)
            if after is not None and after.kind == "VAR":
                self.next()
                return Step("one", variable=self.next().value)
        return None

    # -- conditions ------------------------------------------------------------

    def parse_condition(self) -> Condition:
        return self.parse_or()

    def parse_or(self) -> Condition:
        operands = [self.parse_and()]
        while self.at_keyword("OR"):
            self.next()
            operands.append(self.parse_and())
        return operands[0] if len(operands) == 1 else Or(tuple(operands))

    def parse_and(self) -> Condition:
        operands = [self.parse_not()]
        while self.at_keyword("AND"):
            self.next()
            operands.append(self.parse_not())
        return operands[0] if len(operands) == 1 else And(tuple(operands))

    def parse_not(self) -> Condition:
        if self.at_keyword("NOT"):
            self.next()
            return Not(self.parse_not())
        return self.parse_atom_condition()

    def parse_atom_condition(self) -> Condition:
        if self.at("("):
            self.next()
            inner = self.parse_condition()
            self.expect(")")
            return inner
        if self.at("["):
            # A path expression as an existential condition.
            return PathCondition(self.parse_path())
        if self.at("VAR") and self.peek(1) is not None and (
            self.peek(1).kind == "KEYWORD" and self.peek(1).value == "IN"
        ):
            variable = self.next().value
            self.next()  # IN
            relation = self.expect("IDENT").value
            return Membership(variable, relation)
        left = self.parse_value_expression()
        if not self.at("OP"):
            raise self.error("expected comparison operator")
        op = self.next().value
        right = self.parse_value_expression()
        return Compare(left, op, right)

    # -- value expressions ---------------------------------------------------------

    def parse_value_expression(self) -> Operand:
        left = self.parse_value_term()
        while self.at("+"):
            self.next()
            right = self.parse_value_term()
            left = BinaryOp("+", left, right)
        return left

    def parse_value_term(self) -> Operand:
        left = self.parse_value_atom()
        while self.at("*"):
            self.next()
            right = self.parse_value_atom()
            left = BinaryOp("*", left, right)
        return left

    def parse_value_atom(self) -> Operand:
        if self.at("NUMBER"):
            raw = self.next().value
            return Literal(float(raw) if "." in raw else int(raw))
        if self.at("STRING"):
            raw = self.next().value
            return Literal(raw[1:-1].replace("\\'", "'"))
        if self.at("KEYWORD", "TRUE"):
            self.next()
            return Literal(True)
        if self.at("KEYWORD", "FALSE"):
            self.next()
            return Literal(False)
        if self.at("VAR"):
            variable = self.next().value
            if self.at("."):
                self.next()
                attribute = self.expect("IDENT").value
                return AttrAccess(variable, attribute)
            return VarRef(variable)
        if self.at("IDENT"):
            return Identifier(self.next().value)
        if self.at("("):
            self.next()
            inner = self.parse_value_expression()
            self.expect(")")
            return inner
        raise self.error("expected a value expression")


def parse_query(text: str) -> Query:
    """Parse ProQL text into an AST.

    >>> query = parse_query("FOR [O $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
    >>> query.return_vars
    ('x',)
    """
    return _Parser(tokenize(text), text).parse_query()
