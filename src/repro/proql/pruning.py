"""Pruning oracle and rewriting-set factorization for rule unfolding.

The unfolder of Section 4.2.3-4.2.4 enumerates every derivation-tree
shape, including rewritings that provably cannot produce answers.
Following the rewriting-set optimizations of Gottlob/Orsi/Pieris
(*Query Rewriting and Optimization for Ontological Databases*), this
module makes the rewriting set smaller **before** any SQL runs:

* :class:`PruningOracle` — a least-fixpoint of *productive* relations
  (a relation that has local data, or some mapping into it all of
  whose sources are productive, can hold tuples; anything else is
  certainly empty).  The unfolder skips mapping steps through
  unproductive sources: such branches can never complete into a rule
  with non-empty joins.
* :class:`PatternViability` — the product of a path expression's NFA
  with the schema graph: a ``(state, relation)`` pair is *viable* when
  the remaining pattern can still be consumed by backward edges from
  that relation.  Unviable continuations are cut before unification;
  a query whose start states are all unviable is statically empty
  (diagnostic RA501).
* :func:`subsumes` / :func:`factorize` — homomorphism-based
  containment between unfolded rules (the factorization step).  A rule
  is dropped only when a kept rule covers its answers **and** its
  derivation specs, so subgraph reconstruction and annotation
  computation are preserved, not just the answer set.
* :class:`UnfoldCache` — the unfolded program memoized per (query
  fingerprint, order-normalized mapping fingerprint, data-bearing
  relations), mirroring how ``CDSS.plan_cache`` keys compiled exchange
  plans; repeat queries skip unfolding entirely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro.datalog.atoms import Atom
from repro.datalog.terms import Term, Variable
from repro.proql.ast import PathExpr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.proql.schema_graph import SchemaGraph
    from repro.proql.unfolding import UnfoldedRule


class PruningOracle:
    """Productive-relation fixpoint over the schema graph.

    A relation is **productive** when it can possibly hold tuples after
    an exchange: it has local contributions, or some mapping into it
    has only productive sources.  The complement is *certainly empty* —
    independent of join selectivity — so any rewriting that scans an
    unproductive relation (or steps through a mapping that could never
    have fired) is dead and safe to prune.

    ``has_local_data`` is evaluated once per construction; build a
    fresh oracle per unfolding run so data changes are picked up.
    """

    def __init__(
        self,
        graph: "SchemaGraph",
        has_local_data: Callable[[str], bool],
    ) -> None:
        self.graph = graph
        self._productive = self._fixpoint(graph, has_local_data)
        self._useful: dict[str, tuple[str, ...]] = {}

    @staticmethod
    def _fixpoint(
        graph: "SchemaGraph", has_local_data: Callable[[str], bool]
    ) -> frozenset[str]:
        productive = {r for r in graph.relations if has_local_data(r)}
        # Worklist over mappings whose sources just became productive.
        changed = True
        while changed:
            changed = False
            for name, mapping in graph.mappings.items():
                sources = mapping.source_relations()
                if not all(s in productive for s in sources):
                    continue
                for target in mapping.target_relations():
                    if target not in productive:
                        productive.add(target)
                        changed = True
        return frozenset(productive)

    def productive(self, relation: str) -> bool:
        """True when *relation* can possibly be non-empty."""
        return relation in self._productive

    def useful_mappings(self, relation: str) -> tuple[str, ...]:
        """Mappings into *relation* whose every source is productive.

        A mapping with an unproductive source never fired, so its
        ``P_m`` table is empty and any derivation step through it is
        dead.
        """
        cached = self._useful.get(relation)
        if cached is None:
            cached = tuple(
                name
                for name in self.graph.mappings_into(relation)
                if all(
                    s in self._productive
                    for s in self.graph.sources_of(name)
                )
            )
            self._useful[relation] = cached
        return cached


class PatternViability:
    """Backward viability of the NFA-x-schema-graph product.

    State ``(p, R)`` is viable when the pattern suffix ``steps[p:]``
    can be fully consumed starting from relation ``R`` (acceptance at
    ``p == len(steps)`` is always viable — the pattern may stop there).
    Computed as a backward fixpoint; ``get_allowed`` carries per-step
    mapping restrictions from ``<m`` steps and WHERE constraints, the
    same callback the unfolder's pattern mode uses.

    ``local_edges=True`` additionally models the local-contribution
    derivation ``R → R_l``: the graph engine counts it as one backward
    step, so a pattern whose **last** step has no mapping restriction
    (or names the ``L_R`` rule) and whose final spec names no relation
    can always finish at a leaf.  The unfolder keeps the default
    (mapping-only) semantics — its pattern mode never traverses local
    edges — while the RA501 static check opts in to stay conservative
    with respect to the graph engine.
    """

    def __init__(
        self,
        graph: "SchemaGraph",
        path: PathExpr,
        get_allowed: Callable[..., set[str] | None] | None = None,
        local_edges: bool = False,
    ) -> None:
        self.graph = graph
        self.path = path
        self._final = len(path.steps)
        self.local_edges = local_edges
        self._viable = self._compute(get_allowed or (lambda step: None))

    def _step_mappings(
        self,
        position: int,
        relation: str,
        get_allowed: Callable[..., set[str] | None],
    ) -> Iterable[str]:
        step = self.path.steps[position]
        allowed = get_allowed(step)
        for name in self.graph.mappings_into(relation):
            if step.mapping is not None and step.mapping != name:
                continue
            if allowed is not None and name not in allowed:
                continue
            yield name

    def _compute(
        self, get_allowed: Callable[..., set[str] | None]
    ) -> frozenset[tuple[int, str]]:
        steps, specs = self.path.steps, self.path.specs
        final = self._final
        viable: set[tuple[int, str]] = {
            (final, relation) for relation in self.graph.relations
        }
        if self.local_edges and final > 0 and specs[final].relation is None:
            # The last step may consume the R -> R_l local-contribution
            # edge and finish at the leaf (leaves derive nothing, so
            # this only works on the final step with an unnamed spec).
            from repro.cdss.system import local_rule_name

            last = steps[final - 1]
            allowed = get_allowed(last)
            for relation in self.graph.relations:
                name = local_rule_name(relation)
                if last.mapping is not None and last.mapping != name:
                    continue
                if allowed is not None and name not in allowed:
                    continue
                viable.add((final - 1, relation))
        # Backward fixpoint: (p, R) viable when some mapping step from
        # R leads to a viable (q, S).  The "plus" self-loop makes this
        # genuinely recursive, hence the iteration to fixpoint.
        changed = True
        while changed:
            changed = False
            for position in range(final - 1, -1, -1):
                next_spec = specs[position + 1]
                for relation in self.graph.relations:
                    if (position, relation) in viable:
                        continue
                    for name in self._step_mappings(
                        position, relation, get_allowed
                    ):
                        hit = False
                        for source in set(self.graph.sources_of(name)):
                            accepts = (
                                next_spec.relation is None
                                or next_spec.relation == source
                            )
                            if steps[position].kind == "one":
                                candidates = (
                                    [position + 1] if accepts else []
                                )
                            else:
                                candidates = [position]
                                if accepts:
                                    candidates.append(position + 1)
                            if any(
                                (q, source) in viable for q in candidates
                            ):
                                hit = True
                                break
                        if hit:
                            viable.add((position, relation))
                            changed = True
                            break
        return frozenset(viable)

    def viable(self, state: int, relation: str) -> bool:
        """Can the pattern suffix from *state* still be consumed?"""
        return (state, relation) in self._viable

    def start_viable(self, relation: str) -> bool:
        """Can the whole pattern match starting at *relation*?"""
        return (0, relation) in self._viable

    def reachable_relations(
        self, anchors: Iterable[str]
    ) -> frozenset[str]:
        """Relations a successful match of this path can touch.

        Forward product reachability from the viable start states,
        intersected with backward viability — a relation outside this
        set can never appear on a match (diagnostic RA503's "the
        rewriting set never touches it").
        """
        steps, specs = self.path.steps, self.path.specs
        final = self._final
        seen: set[tuple[int, str]] = set()
        stack = [
            (0, a)
            for a in anchors
            if a in self.graph.relations and self.viable(0, a)
        ]
        while stack:
            state = stack.pop()
            if state in seen:
                continue
            seen.add(state)
            position, relation = state
            if position >= final:
                continue
            next_spec = specs[position + 1]
            for name in self.graph.mappings_into(relation):
                step = steps[position]
                if step.mapping is not None and step.mapping != name:
                    continue
                for source in set(self.graph.sources_of(name)):
                    accepts = (
                        next_spec.relation is None
                        or next_spec.relation == source
                    )
                    if step.kind == "one":
                        nexts = [position + 1] if accepts else []
                    else:
                        nexts = [position]
                        if accepts:
                            nexts.append(position + 1)
                    for q in nexts:
                        if self.viable(q, source):
                            stack.append((q, source))
        return frozenset(relation for _, relation in seen)


# -- subsumption factorization ----------------------------------------------------


def _signature(rule: "UnfoldedRule") -> dict[tuple[str, str], int]:
    """Cheap necessary condition for a homomorphism to exist."""
    out: dict[tuple[str, str], int] = {}
    for item in rule.items:
        key = (item.kind, item.atom.relation)
        out[key] = out.get(key, 0) + 1
    return out


def _extend(
    src: Term, dst: Term, mapping: dict[Variable, Term]
) -> dict[Variable, Term] | None:
    if isinstance(src, Variable):
        bound = mapping.get(src)
        if bound is None:
            extended = dict(mapping)
            extended[src] = dst
            return extended
        return mapping if bound == dst else None
    return mapping if src == dst else None


def _match_atoms(
    src: Atom, dst: Atom, mapping: dict[Variable, Term]
) -> dict[Variable, Term] | None:
    if src.relation != dst.relation or src.arity != dst.arity:
        return None
    current: dict[Variable, Term] | None = mapping
    for s, d in zip(src.terms, dst.terms):
        current = _extend(s, d, current)
        if current is None:
            return None
    return current


def _image_spec(
    spec_key: tuple[str, tuple[Term, ...]], theta: Mapping[Variable, Term]
) -> tuple[str, tuple[Term, ...]]:
    mapping, key = spec_key
    return (
        mapping,
        tuple(
            theta.get(t, t) if isinstance(t, Variable) else t for t in key
        ),
    )


def subsumes(
    general: "UnfoldedRule",
    specific: "UnfoldedRule",
    sig_g: frozenset[tuple[str, str]] | None = None,
    sig_s: frozenset[tuple[str, str]] | None = None,
) -> bool:
    """Does *general* make *specific* redundant?

    Requires a homomorphism ``h`` from *general* into *specific*
    (mapping the anchor onto the anchor and every body item onto a
    same-kind item), under which **every derivation spec of *specific*
    is the image of a spec of *general***.  The first condition gives
    answer containment; the second makes the kept rule reconstruct at
    least the derivation subgraph (and annotation monomials) the
    dropped rule would have contributed.

    ``sig_g``/``sig_s`` accept precomputed ``(kind, relation)`` key
    sets so incremental callers (:class:`Factorizer`) skip the rebuild.
    """
    if sig_g is None:
        sig_g = frozenset(_signature(general))
    if sig_s is None:
        sig_s = frozenset(_signature(specific))
    # h maps items of general ONTO items of specific: every kind/
    # relation of specific must be hit, so general must offer at least
    # one atom per (kind, relation) of specific, and vice versa no
    # general atom may lack a target.
    if sig_g != sig_s or len(general.items) < len(specific.items):
        return False
    spec_keys_g = [(s.mapping, s.key) for s in general.specs]
    spec_keys_s = {(s.mapping, s.key) for s in specific.specs}
    if len(spec_keys_g) < len(spec_keys_s):
        return False

    items_s = specific.items
    items_g = general.items

    def search(
        index: int, theta: dict[Variable, Term], hit: frozenset[int]
    ) -> bool:
        if index == len(items_g):
            if len(hit) != len(items_s):
                return False  # some atom of specific not covered
            image = {_image_spec(k, theta) for k in spec_keys_g}
            return spec_keys_s <= image
        src = items_g[index]
        for t_index, dst in enumerate(items_s):
            if dst.kind != src.kind:
                continue
            extended = _match_atoms(src.atom, dst.atom, theta)
            if extended is None:
                continue
            if search(index + 1, extended, hit | {t_index}):
                return True
        return False

    start = _match_atoms(general.anchor, specific.anchor, {})
    if start is None:
        return False
    return search(0, start, frozenset())


class Factorizer:
    """Incremental subsumption factorization of a rewriting set.

    Keeps :attr:`rules` minimal under :func:`subsumes` as rules are
    admitted one at a time; ``(kind, relation)`` signatures are
    computed once per rule, so the all-distinct common case (e.g. the
    fig08 chain) costs one frozenset comparison per kept rule.  The
    list object behind :attr:`rules` is mutated in place, so callers
    may hold it as their result list.
    """

    __slots__ = ("rules", "_sigs", "dropped")

    def __init__(self) -> None:
        self.rules: list["UnfoldedRule"] = []
        self._sigs: list[frozenset[tuple[str, str]]] = []
        #: rewritings dropped as subsumed so far.
        self.dropped = 0

    def admit(self, rule: "UnfoldedRule") -> bool:
        """Add *rule* unless subsumed; evict rules it subsumes."""
        sig = frozenset(_signature(rule))
        for kept, kept_sig in zip(self.rules, self._sigs):
            if subsumes(kept, rule, kept_sig, sig):
                self.dropped += 1
                return False
        survivors: list["UnfoldedRule"] = []
        survivor_sigs: list[frozenset[tuple[str, str]]] = []
        for kept, kept_sig in zip(self.rules, self._sigs):
            if subsumes(rule, kept, sig, kept_sig):
                self.dropped += 1
            else:
                survivors.append(kept)
                survivor_sigs.append(kept_sig)
        survivors.append(rule)
        survivor_sigs.append(sig)
        self.rules[:] = survivors
        self._sigs[:] = survivor_sigs
        return True


def factorize(
    rules: Sequence["UnfoldedRule"],
) -> tuple[list["UnfoldedRule"], int]:
    """Drop rules subsumed by another rule of the set.

    Returns ``(kept, dropped)``.  Quadratic with a cheap signature
    prefilter; rewriting sets are at most a few hundred rules.
    """
    factorizer = Factorizer()
    for rule in rules:
        factorizer.admit(rule)
    return factorizer.rules, factorizer.dropped


# -- the unfolded-program cache ---------------------------------------------------


class UnfoldCache:
    """Memoizes unfolded programs, keyed like ``CDSS.plan_cache``.

    The key combines a **query fingerprint** (mode, anchor relations,
    path text, resolved per-step mapping restrictions), the
    **order-normalized mapping fingerprint** (the same digest the
    compiled-exchange cache uses, so reordering mappings still hits),
    the set of **data-bearing local relations** (unfolding prunes local
    stops on empty tables, so the rewriting set is a function of which
    relations have data), and whether pruning was on.  Any drift in one
    of those misses safely; :meth:`invalidate` exists for hygiene when
    the owning CDSS's program changes.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, tuple["UnfoldedRule", ...]] = {}
        #: lookups answered from the cache.
        self.hits = 0
        #: lookups that had to unfold.
        self.misses = 0
        #: explicit invalidations (program changed).
        self.invalidations = 0

    def get(self, key: tuple) -> list["UnfoldedRule"] | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return list(entry)

    def put(self, key: tuple, rules: Iterable["UnfoldedRule"]) -> None:
        self._entries[key] = tuple(rules)

    def invalidate(self) -> None:
        """Drop every entry (the owning CDSS's program changed)."""
        if self._entries:
            self._entries.clear()
        self.invalidations += 1

    def __len__(self) -> int:
        return len(self._entries)
