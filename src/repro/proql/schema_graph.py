"""The provenance schema graph (Section 4.2.1, Figure 3).

A schema-level abstraction of possible derivations: one *relation
node* per public relation, one *mapping node* per schema mapping, with
edges source-relation → mapping → target-relation.  Intuitively a
Dataguide over the provenance; ProQL patterns are matched against it
to decide which mappings and relations can participate in a query
before any data is touched (Section 4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.cdss.mapping import SchemaMapping
from repro.cdss.system import CDSS
from repro.errors import ProQLSemanticError


@dataclass
class SchemaGraph:
    """Bipartite relation/mapping graph with backward traversal."""

    mappings: dict[str, SchemaMapping]
    #: relation -> mappings that have it among their targets
    into: dict[str, list[str]]
    #: relation -> mappings that have it among their sources
    out_of: dict[str, list[str]]
    relations: set[str]

    @classmethod
    def of(cls, cdss: CDSS) -> "SchemaGraph":
        into: dict[str, list[str]] = {}
        out_of: dict[str, list[str]] = {}
        relations: set[str] = set()
        for mapping in cdss.mappings.values():
            for relation in set(mapping.target_relations()):
                into.setdefault(relation, []).append(mapping.name)
                relations.add(relation)
            for relation in set(mapping.source_relations()):
                out_of.setdefault(relation, []).append(mapping.name)
                relations.add(relation)
        for peer in cdss.peers.values():
            relations.update(peer.relation_names())
        return cls(dict(cdss.mappings), into, out_of, relations)

    # -- traversal -----------------------------------------------------------

    def mappings_into(self, relation: str) -> list[str]:
        """Mappings that can derive tuples of *relation*."""
        return list(self.into.get(relation, ()))

    def mappings_from(self, relation: str) -> list[str]:
        """Mappings that consume tuples of *relation*."""
        return list(self.out_of.get(relation, ()))

    def sources_of(self, mapping: str) -> tuple[str, ...]:
        return self.mappings[mapping].source_relations()

    def targets_of(self, mapping: str) -> tuple[str, ...]:
        return self.mappings[mapping].target_relations()

    def check_relation(self, relation: str) -> str:
        if relation not in self.relations:
            raise ProQLSemanticError(f"unknown relation {relation!r} in pattern")
        return relation

    # -- reachability -----------------------------------------------------------

    def upstream_mappings(
        self, anchors: Iterable[str], allowed: set[str] | None = None
    ) -> set[str]:
        """All mappings on backward paths from the *anchors* relations.

        ``allowed`` optionally restricts the mapping universe (used when
        WHERE constrains a derivation variable to specific mappings).
        """
        seen_relations: set[str] = set()
        seen_mappings: set[str] = set()
        stack = list(anchors)
        while stack:
            relation = stack.pop()
            if relation in seen_relations:
                continue
            seen_relations.add(relation)
            for name in self.mappings_into(relation):
                if allowed is not None and name not in allowed:
                    continue
                if name in seen_mappings:
                    continue
                seen_mappings.add(name)
                stack.extend(self.sources_of(name))
        return seen_mappings

    def simple_paths_into(
        self,
        anchor: str,
        max_length: int | None = None,
    ) -> Iterator[tuple[str, ...]]:
        """Enumerate simple backward mapping paths ending at *anchor*.

        Yields tuples of mapping names ordered downstream-first (the
        mapping deriving *anchor* first), never repeating a mapping
        within one path (Section 4.2.2 prevents paths from cycling).
        """

        def walk(
            relation: str, used: tuple[str, ...]
        ) -> Iterator[tuple[str, ...]]:
            if max_length is not None and len(used) >= max_length:
                return
            for name in self.mappings_into(relation):
                if name in used:
                    continue
                extended = used + (name,)
                yield extended
                for source in set(self.sources_of(name)):
                    yield from walk(source, extended)

        yield from walk(anchor, ())
