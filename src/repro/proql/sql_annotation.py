"""SQL-side annotation aggregation (Section 4.2.4, last paragraph).

The paper pushes annotation computation into the RDBMS: each unfolded
conjunctive rule is compiled with an additional column holding the
semiring expression of its derivation-tree shape, the blocks are
combined with UNION ALL, and an aggregation query GROUPs BY the tuple,
combining the per-tree annotations — SUM for derivability/trust
(0/1-encoded, thresholded with HAVING > 0) and for the number of
derivations, MIN for weight/cost.

This module implements exactly that for the SQL-friendly semirings
(DERIVABILITY, TRUST, WEIGHT/COST, COUNT) and the standard annotation
query shape ``EVALUATE S OF { FOR [R $x] INCLUDE PATH [$x] <-+ []
RETURN $x }``.  Leaf CASE conditions compile to SQL CASE expressions
over the leaf relations' columns; mapping functions must be the
identity or constants (the paper's Nm / Dm).  Anything richer falls
back to the graph-side evaluator, which remains the general path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cdss.system import CDSS
from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Variable
from repro.errors import ProQLSemanticError
from repro.proql.ast import (
    And,
    AttrAccess,
    Compare,
    Condition,
    Evaluation,
    Identifier,
    LeafAssignClause,
    Literal,
    MappingAssignClause,
    Membership,
    Not,
    Operand,
    Or,
    VarRef,
)
from repro.proql.sql_translator import SchemaLookup
from repro.proql.unfolding import DerivSpec, UnfoldedRule
from repro.relational.schema import public_name
from repro.semirings.base import Semiring
from repro.semirings.registry import get_semiring
from repro.storage.encoding import ValueCodec, quote_identifier

#: Semirings whose values and operations have direct SQL encodings.
SQL_SEMIRINGS = {
    "DERIVABILITY": ("SUM", "> 0"),
    "TRUST": ("SUM", "> 0"),
    "WEIGHT": ("MIN", None),
    "COST": ("MIN", None),
    "COUNT": ("SUM", None),
    "DERIVATIONS": ("SUM", None),
}


def _sql_literal(semiring: Semiring, value: object) -> str:
    value = semiring.validate(value)
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    raise ProQLSemanticError(
        f"cannot encode {value!r} as a SQL annotation literal"
    )


def _one_literal(semiring: Semiring) -> str:
    return _sql_literal(semiring, semiring.one)


class _RuleExpression:
    """Builds the per-rule annotation expression column."""

    def __init__(
        self,
        rule: UnfoldedRule,
        semiring: Semiring,
        cdss: CDSS,
        locations: Mapping[Variable, tuple[str, str]],
        leaf_clause: LeafAssignClause | None,
        mapping_values: Mapping[str, object | None],
    ) -> None:
        self.rule = rule
        self.semiring = semiring
        self.cdss = cdss
        self.locations = locations
        self.leaf_clause = leaf_clause
        self.mapping_values = mapping_values
        self._head_index: dict[Atom, DerivSpec] = {}
        for spec in rule.specs:
            for atom in spec.head:
                self._head_index.setdefault(atom, spec)

    # -- leaf CASE compilation ------------------------------------------------------

    def _column(self, atom: Atom, attribute: str) -> str:
        schema = self.cdss.catalog[public_name(atom.relation)]
        position = schema.position_of(attribute)
        term = atom.terms[position]
        if isinstance(term, Constant):
            return _value_literal(term.value)
        if isinstance(term, Variable) and term in self.locations:
            alias, column = self.locations[term]
            if alias:
                return f"{alias}.{quote_identifier(column)}"
            return quote_identifier(column)
        raise ProQLSemanticError(
            f"attribute {attribute} of {atom} is not available in SQL"
        )

    def _condition_sql(self, condition: Condition, atom: Atom, var: str) -> str:
        """Compile a CASE condition to SQL over the leaf atom.

        Membership tests resolve statically against the leaf's
        relation; attribute accesses become column references.
        """
        if isinstance(condition, Membership):
            matches = public_name(atom.relation) == condition.relation
            return "1 = 1" if matches else "1 = 0"
        if isinstance(condition, Compare):
            from repro.errors import SchemaError

            try:
                left = self._operand_sql(condition.left, atom, var)
                right = self._operand_sql(condition.right, atom, var)
            except SchemaError:
                # Attribute absent from this leaf's relation: the
                # comparison is statically false, mirroring the graph
                # engine's semantics for heterogeneous leaves.
                return "1 = 0"
            operator = "=" if condition.op == "=" else condition.op
            return f"({left} {operator} {right})"
        if isinstance(condition, And):
            inner = " AND ".join(
                self._condition_sql(c, atom, var) for c in condition.operands
            )
            return f"({inner})"
        if isinstance(condition, Or):
            inner = " OR ".join(
                self._condition_sql(c, atom, var) for c in condition.operands
            )
            return f"({inner})"
        if isinstance(condition, Not):
            return f"(NOT {self._condition_sql(condition.operand, atom, var)})"
        raise ProQLSemanticError(
            f"condition {condition!r} is not SQL-compilable"
        )

    def _operand_sql(self, operand: Operand, atom: Atom, var: str) -> str:
        if isinstance(operand, Literal):
            return _value_literal(operand.value)
        if isinstance(operand, Identifier):
            return _value_literal(operand.name)
        if isinstance(operand, AttrAccess):
            if operand.variable != var:
                raise ProQLSemanticError(
                    f"CASE condition references ${operand.variable}, "
                    f"expected ${var}"
                )
            return self._column(atom, operand.attribute)
        raise ProQLSemanticError(f"operand {operand!r} is not SQL-compilable")

    def _leaf_sql(self, atom: Atom) -> str:
        if self.leaf_clause is None:
            return _one_literal(self.semiring)
        clause = self.leaf_clause
        default = (
            _sql_literal(self.semiring, _constant_of(clause.default))
            if clause.default is not None
            else _one_literal(self.semiring)
        )
        expression = default
        # Build nested CASEs from the last case outwards so the first
        # matching CASE wins (footnote 3 of the paper).
        for case in reversed(clause.cases):
            condition = self._condition_sql(case.condition, atom, clause.variable)
            value = _sql_literal(self.semiring, _constant_of(case.value))
            expression = f"CASE WHEN {condition} THEN {value} ELSE {expression} END"
        return expression

    # -- derivation-tree expression ----------------------------------------------------

    def _product(self, parts: list[str]) -> str:
        if len(parts) == 1:
            return parts[0]
        name = self.semiring.name
        if name in ("DERIVABILITY", "TRUST"):
            return f"MIN({', '.join(parts)})"
        if name in ("WEIGHT", "COST"):
            return f"({' + '.join(parts)})"
        return f"({' * '.join(parts)})"  # COUNT

    def expression(self, atom: Atom, depth: int = 0) -> str:
        if depth > 200:  # pragma: no cover - cyclic specs are prevented upstream
            raise ProQLSemanticError("annotation expression too deep")
        spec = self._head_index.get(atom)
        if spec is None:
            return self._leaf_sql(atom)
        constant = self.mapping_values.get(spec.mapping, None)
        if constant is not None:
            # A constant mapping function replaces the whole subtree
            # (its value on any non-zero input; the subtree's rows only
            # exist when the derivation does, so the input is non-zero).
            return _sql_literal(self.semiring, constant)
        parts = [self.expression(source, depth + 1) for source in spec.body]
        return self._product(parts)


def _value_literal(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    raise ProQLSemanticError(f"cannot encode {value!r} in SQL")


def _constant_of(operand: Operand) -> object:
    if isinstance(operand, Literal):
        return operand.value
    if isinstance(operand, Identifier):
        return operand.name
    raise ProQLSemanticError(
        "SQL-side annotation supports constant SET values only "
        "(use the graph engine for value-dependent assignments)"
    )


def _mapping_constants(
    clause: MappingAssignClause | None, mappings: set[str]
) -> dict[str, object | None]:
    """Per-mapping constant value, or None for the identity function."""
    if clause is None:
        return {name: None for name in mappings}
    out: dict[str, object | None] = {}
    for name in mappings:
        value: object | None = None
        for case in clause.cases:
            names = _case_mapping_names(case.condition, clause.variable)
            if names is None:
                raise ProQLSemanticError(
                    "SQL-side annotation requires CASE conditions of the "
                    "form $p = <mapping>"
                )
            if name in names:
                value = _constant_of(case.value)
                break
        else:
            if clause.default is not None and not _is_identity(
                clause.default, clause.parameter
            ):
                value = _constant_of(clause.default)
        out[name] = value
    return out


def _is_identity(operand: Operand, parameter: str) -> bool:
    return isinstance(operand, VarRef) and operand.name == parameter


def _case_mapping_names(condition: Condition, variable: str) -> set[str] | None:
    from repro.proql.conditions import mapping_name_constraints

    return mapping_name_constraints(condition, variable)


@dataclass
class AnnotationQuery:
    """The full aggregation query plus decoding metadata."""

    sql: str
    parameters: tuple[object, ...]
    relation: str
    semiring: Semiring
    #: anchor attribute types, in schema order (for decoding)
    types: tuple[str, ...]


def compile_annotation_query(
    evaluation: Evaluation,
    rules: list[UnfoldedRule],
    cdss: CDSS,
    schema_lookup: SchemaLookup,
    codec: ValueCodec,
) -> AnnotationQuery:
    """Compile an EVALUATE query into one SQL aggregation statement.

    ``rules`` must be the full-ancestry unfolding of the projection's
    anchor relation (the caller checks the query shape).
    """
    name = evaluation.semiring
    if name not in SQL_SEMIRINGS:
        raise ProQLSemanticError(
            f"semiring {name} has no SQL aggregation encoding; "
            "use the graph-side evaluator"
        )
    semiring = get_semiring(name)
    if not rules:
        raise ProQLSemanticError("no unfolded rules to aggregate over")
    relation = rules[0].anchor.relation
    schema = cdss.catalog[relation]
    mapping_names = {
        spec.mapping for rule in rules for spec in rule.specs
    }
    mapping_values = _mapping_constants(evaluation.mapping_assign, mapping_names)

    from repro.proql.sql_translator import compile_rule

    blocks: list[str] = []
    parameters: list[object] = []
    for rule in rules:
        compiled = compile_rule(rule, schema_lookup, codec)
        # Recover (alias, column) locations from the compiled SELECT:
        # compile_rule aliases each variable column by its name.
        locations = _locations_of(rule, schema_lookup)
        builder = _RuleExpression(
            rule,
            semiring,
            cdss,
            locations,
            evaluation.leaf_assign,
            mapping_values,
        )
        annotation = builder.expression(rule.anchor)
        anchor_columns = ", ".join(
            _anchor_column(rule, attribute_index, locations)
            for attribute_index in range(schema.arity)
        )
        inner_sql = compiled.sql
        blocks.append(
            f"SELECT {anchor_columns}, {annotation} AS ann "
            f"FROM ({inner_sql})"
        )
        parameters.extend(compiled.parameters)
    aggregate, having = SQL_SEMIRINGS[name]
    group_columns = ", ".join(f"a{i}" for i in range(schema.arity))
    union = "\nUNION ALL\n".join(blocks)
    sql = (
        f"SELECT {group_columns}, {aggregate}(ann) AS value FROM (\n"
        f"{union}\n) GROUP BY {group_columns}"
    )
    if having:
        sql += f" HAVING {aggregate}(ann) {having}"
    return AnnotationQuery(
        sql,
        tuple(parameters),
        relation,
        semiring,
        tuple(attribute.type for attribute in schema.attributes),
    )


def _locations_of(
    rule: UnfoldedRule, schema_lookup: SchemaLookup
) -> dict[Variable, tuple[str, str]]:
    """First-occurrence (alias, column) per variable — mirrors the
    traversal order of :func:`compile_rule`, but the expressions here
    wrap the compiled SELECT, so they address its *output* columns
    (aliased by variable name)."""
    locations: dict[Variable, tuple[str, str]] = {}
    for item in rule.items:
        for position, term in enumerate(item.atom.terms):
            if isinstance(term, Variable) and term not in locations:
                # compile_rule's SELECT exposes each variable as a
                # column named after it; address those.
                locations[term] = ("", term.name)
    return locations


def _anchor_column(
    rule: UnfoldedRule,
    position: int,
    locations: Mapping[Variable, tuple[str, str]],
) -> str:
    term = rule.anchor.terms[position]
    if isinstance(term, Constant):
        return f"{_value_literal(term.value)} AS a{position}"
    if isinstance(term, Variable):
        _, column = locations[term]
        return f"{quote_identifier(column)} AS a{position}"
    raise ProQLSemanticError(
        f"anchor term {term} is not SQL-compilable (Skolem in the head?)"
    )


def is_sql_aggregatable(evaluation: Evaluation) -> bool:
    """True iff the query matches the SQL-aggregation shape: a single
    anchored FOR spec with a full-ancestry INCLUDE and a supported
    semiring."""
    if evaluation.semiring not in SQL_SEMIRINGS:
        return False
    projection = evaluation.projection
    if len(projection.for_paths) != 1 or projection.where is not None:
        return False
    for_path = projection.for_paths[0]
    if for_path.steps or for_path.specs[0].relation is None:
        return False
    if len(projection.include_paths) != 1:
        return False
    include = projection.include_paths[0]
    return (
        len(include.steps) == 1
        and include.steps[0].kind == "plus"
        and include.specs[1].relation is None
        and include.specs[0].variable == for_path.specs[0].variable
    )
