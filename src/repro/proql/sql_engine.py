"""The SQL-backed ProQL engine (Section 4.2).

Pipeline, mirroring the paper's stages:

1. build the provenance **schema graph** from the mappings (shared
   across queries);
2. **match** each path expression against it (anchor relations,
   per-step mapping restrictions from ``<m`` steps and WHERE);
3. **unfold** into a union of conjunctive rules over provenance/local/
   base relations (optionally rewritten to use ASRs — Section 5);
4. **execute** each rule as SQL over the SQLite store, in a
   goal-directed fashion;
5. **reconstruct** the matched provenance subgraph from the result
   rows' derivation-tree specs, then evaluate bindings, INCLUDE paths,
   RETURN, and any annotation on that (small) subgraph with the
   reference semantics.

Step 5 guarantees the SQL engine agrees with the graph engine by
construction wherever both apply; the SQL work (unfolding + joins) is
what the paper measures, surfaced in :class:`SQLStats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.errors import ProQLSemanticError
from repro.obs.trace import NULL_TRACER
from repro.proql.ast import (
    Evaluation,
    PathCondition,
    PathExpr,
    Projection,
    Query,
    Step,
    TupleSpec,
)
from repro.proql.conditions import mapping_name_constraints
from repro.proql.graph_engine import GraphEngine, ProQLResult
from repro.proql.parser import parse_query
from repro.proql.schema_graph import SchemaGraph
from repro.proql.sql_translator import (
    CompiledRule,
    SchemaLookup,
    compile_rule,
    default_schema_lookup,
)
from repro.proql.unfolding import KIND_BASE, UnfoldedRule, Unfolder
from repro.provenance.graph import DerivationNode, ProvenanceGraph, TupleNode
from repro.storage.sqlite_backend import SQLiteStorage


@dataclass
class SQLStats:
    """Per-query pipeline metrics (the quantities of Figures 7-13)."""

    unfolded_rules: int = 0
    unfold_seconds: float = 0.0
    compile_seconds: float = 0.0
    sql_seconds: float = 0.0
    reconstruct_seconds: float = 0.0
    rows: int = 0
    max_join_width: int = 0

    @property
    def query_processing_seconds(self) -> float:
        """Unfolding + evaluation time, the paper's headline metric."""
        return (
            self.unfold_seconds
            + self.compile_seconds
            + self.sql_seconds
            + self.reconstruct_seconds
        )

    def merge(self, other: "SQLStats") -> None:
        self.unfolded_rules += other.unfolded_rules
        self.unfold_seconds += other.unfold_seconds
        self.compile_seconds += other.compile_seconds
        self.sql_seconds += other.sql_seconds
        self.reconstruct_seconds += other.reconstruct_seconds
        self.rows += other.rows
        self.max_join_width = max(self.max_join_width, other.max_join_width)


@dataclass
class SQLResult(ProQLResult):
    """ProQL result plus SQL pipeline statistics."""

    stats: SQLStats = field(default_factory=SQLStats)


#: Rewrites the unfolded rules (identity unless ASRs are registered).
RuleRewriter = Callable[[list[UnfoldedRule]], list[UnfoldedRule]]


class SQLEngine:
    """Evaluates ProQL over the relational provenance store."""

    def __init__(
        self,
        storage: SQLiteStorage,
        rewriter: RuleRewriter | None = None,
        schema_lookup: SchemaLookup | None = None,
        max_rules: int = 100_000,
        prune: bool = True,
    ) -> None:
        self.storage = storage
        self.cdss = storage.cdss
        self.schema_graph = SchemaGraph.of(self.cdss)
        self.tracer = getattr(self.cdss, "tracer", None) or NULL_TRACER
        # The unfolded-program cache lives on the CDSS (like
        # plan_cache) so repeat queries hit it across engine instances.
        cache = getattr(self.cdss, "unfold_cache", None)
        self.unfolder = Unfolder(
            self.cdss,
            self.schema_graph,
            max_rules=max_rules,
            tracer=self.tracer,
            prune=prune,
            cache=cache,
        )
        self.rewriter = rewriter
        self.schema_lookup = schema_lookup or default_schema_lookup(self.cdss)

    # -- helpers ------------------------------------------------------------

    def _public_relations(self) -> list[str]:
        return sorted(
            relation
            for peer in self.cdss.peers.values()
            for relation in peer.relation_names()
        )

    def _anchor_relations(self, spec: TupleSpec, var_relations: dict[str, str]) -> list[str]:
        if spec.relation is not None:
            return [self.schema_graph.check_relation(spec.relation)]
        if spec.variable is not None and spec.variable in var_relations:
            return [var_relations[spec.variable]]
        return self._public_relations()

    @staticmethod
    def _var_relations(projection: Projection) -> dict[str, str]:
        out: dict[str, str] = {}
        for path in projection.for_paths:
            for spec in path.specs:
                if spec.variable is not None and spec.relation is not None:
                    out.setdefault(spec.variable, spec.relation)
        return out

    @staticmethod
    def _step_mappings(
        projection: Projection,
    ) -> Callable[[Step], set[str] | None]:
        where = projection.where

        def allowed(step: Step) -> set[str] | None:
            if step.mapping is not None:
                return {step.mapping}
            if step.variable is not None:
                return mapping_name_constraints(where, step.variable)
            return None

        return allowed

    @staticmethod
    def _all_paths(projection: Projection) -> list[PathExpr]:
        paths = list(projection.for_paths)
        paths.extend(projection.include_paths)
        stack = [projection.where] if projection.where is not None else []
        while stack:
            condition = stack.pop()
            if isinstance(condition, PathCondition):
                paths.append(condition.path)
            for attr in ("operands", "operand"):
                inner = getattr(condition, attr, None)
                if inner is None:
                    continue
                if isinstance(inner, tuple):
                    stack.extend(inner)
                else:
                    stack.append(inner)
        return paths

    # -- rule execution ------------------------------------------------------------

    def _execute_rules(
        self,
        rules: Sequence[UnfoldedRule],
        stats: SQLStats,
        output: ProvenanceGraph | None,
    ) -> None:
        codec = self.storage.codec
        for rule in rules:
            t0 = time.perf_counter()
            compiled = compile_rule(rule, self.schema_lookup, codec)
            t1 = time.perf_counter()
            rows = self.storage.query(compiled.sql, compiled.parameters)
            t2 = time.perf_counter()
            stats.compile_seconds += t1 - t0
            stats.sql_seconds += t2 - t1
            stats.rows += len(rows)
            stats.max_join_width = max(stats.max_join_width, compiled.join_width)
            if output is not None:
                self._reconstruct(compiled, rows, output, stats)

    def _reconstruct(
        self,
        compiled: CompiledRule,
        rows: Iterable[tuple],
        output: ProvenanceGraph,
        stats: SQLStats,
    ) -> None:
        t0 = time.perf_counter()
        codec = self.storage.codec
        rule = compiled.rule
        for row in rows:
            binding = {
                var: codec.decode(value, compiled.types[var])
                for var, value in zip(compiled.variables, row)
            }
            for spec in rule.specs:
                sources = tuple(
                    TupleNode(a.relation, a.ground(binding)) for a in spec.body
                )
                targets = tuple(
                    TupleNode(a.relation, a.ground(binding)) for a in spec.head
                )
                output.add_derivation(
                    DerivationNode(spec.mapping, sources, targets)
                )
            for item in rule.items:
                if item.kind == KIND_BASE:
                    output.add_tuple(
                        TupleNode(item.atom.relation, item.atom.ground(binding))
                    )
            output.add_tuple(
                TupleNode(rule.anchor.relation, rule.anchor.ground(binding))
            )
        stats.reconstruct_seconds += time.perf_counter() - t0

    def _rewrite(self, rules: list[UnfoldedRule]) -> list[UnfoldedRule]:
        if self.rewriter is None:
            return rules
        return self.rewriter(rules)

    def _record_pipeline(self, stats: SQLStats) -> None:
        """Mirror the per-query :class:`SQLStats` timers into the trace.

        Compile/SQL/reconstruct time is accumulated per rule by the
        existing ``SQLStats`` counters; rather than a span per rule
        (hundreds on fig08 topologies) the totals become one
        pseudo-span each at the end of the pipeline.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return
        tracer.record(
            "query.compile", stats.compile_seconds, rules=stats.unfolded_rules
        )
        tracer.record("query.sql", stats.sql_seconds, rows=stats.rows)
        if stats.reconstruct_seconds:
            tracer.record("query.reconstruct", stats.reconstruct_seconds)

    # -- public API ------------------------------------------------------------

    def run(self, query: str | Query) -> SQLResult:
        """Full ProQL evaluation through the SQL pipeline."""
        ast = parse_query(query) if isinstance(query, str) else query
        projection = ast.projection if isinstance(ast, Evaluation) else ast
        stats = SQLStats()
        var_relations = self._var_relations(projection)
        step_mappings = self._step_mappings(projection)
        candidate = ProvenanceGraph()
        for path in self._all_paths(projection):
            anchors = self._anchor_relations(path.specs[0], var_relations)
            t0 = time.perf_counter()
            with self.tracer.span("query.unfold") as uspan:
                rules = self.unfolder.pattern(path, anchors, step_mappings)
                rules = self._rewrite(rules)
                uspan.set("mode", "pattern").set("rules", len(rules))
            stats.unfold_seconds += time.perf_counter() - t0
            stats.unfolded_rules += len(rules)
            self._execute_rules(rules, stats, candidate)
        self._record_pipeline(stats)
        inner = GraphEngine(candidate, self.cdss.catalog).run(ast)
        return SQLResult(
            query=inner.query,
            bindings=inner.bindings,
            rows=inner.rows,
            graph=inner.graph,
            annotations=inner.annotations,
            annotated_rows=inner.annotated_rows,
            stats=stats,
        )

    def run_annotation_sql(
        self, query: str | Query
    ) -> tuple[dict[TupleNode, object], SQLStats]:
        """Evaluate an EVALUATE query entirely inside SQL (§4.2.4).

        Compiles one UNION ALL + GROUP BY (+ HAVING) aggregation over
        the unfolded rules, with the semiring expression as an extra
        column — the paper's push-down scheme.  Supported for the
        standard query shape and the SQL-encodable semirings
        (derivability/trust as 0/1 + SUM, weight as MIN, count as SUM);
        raises :class:`ProQLSemanticError` otherwise, in which case
        :meth:`run` (graph-side aggregation) is the general fallback.

        Returns the (tuple node -> annotation) map — tuples filtered
        out by HAVING (underivable/untrusted) are absent, i.e. at the
        semiring's zero.
        """
        from repro.proql.sql_annotation import (
            compile_annotation_query,
            is_sql_aggregatable,
        )

        ast = parse_query(query) if isinstance(query, str) else query
        if not isinstance(ast, Evaluation) or not is_sql_aggregatable(ast):
            raise ProQLSemanticError(
                "query does not match the SQL-aggregation shape; use run()"
            )
        stats = SQLStats()
        anchor = ast.projection.for_paths[0].specs[0].relation
        t0 = time.perf_counter()
        with self.tracer.span("query.unfold") as uspan:
            rules = self.unfolder.full_ancestry(anchor)
            rules = self._rewrite(rules)
            uspan.set("mode", "full_ancestry").set("rules", len(rules))
        stats.unfold_seconds = time.perf_counter() - t0
        stats.unfolded_rules = len(rules)
        t1 = time.perf_counter()
        compiled = compile_annotation_query(
            ast, rules, self.cdss, self.schema_lookup, self.storage.codec
        )
        t2 = time.perf_counter()
        rows = self.storage.query(compiled.sql, compiled.parameters)
        t3 = time.perf_counter()
        stats.compile_seconds = t2 - t1
        stats.sql_seconds = t3 - t2
        stats.rows = len(rows)
        self._record_pipeline(stats)
        stats.max_join_width = max((len(r.items) for r in rules), default=0)
        codec = self.storage.codec
        annotations: dict[TupleNode, object] = {}
        for row in rows:
            values = tuple(
                codec.decode(value, type_)
                for value, type_ in zip(row, compiled.types)
            )
            annotation = compiled.semiring.validate(
                codec.decode(row[-1], "int")
                if compiled.semiring.name in ("DERIVABILITY", "TRUST", "COUNT")
                else row[-1]
            )
            if compiled.semiring.name in ("DERIVABILITY", "TRUST"):
                annotation = True  # HAVING > 0 already filtered
            annotations[TupleNode(compiled.relation, values)] = annotation
        return annotations, stats

    def run_target(
        self, relation: str, collect_graph: bool = False
    ) -> tuple[SQLStats, ProvenanceGraph | None]:
        """The experiments' target query (Section 6.1.2)::

            FOR [R0 $x] INCLUDE PATH [$x] <-+ [] RETURN $x

        Unfolds the full ancestry of *relation*, executes every rule,
        and reports pipeline statistics.  ``collect_graph`` additionally
        reconstructs the projected provenance subgraph (the paper's
        output tables); benchmarks measuring raw unfold+SQL cost leave
        it off.
        """
        stats = SQLStats()
        t0 = time.perf_counter()
        with self.tracer.span("query.unfold") as uspan:
            rules = self.unfolder.full_ancestry(relation)
            rules = self._rewrite(rules)
            uspan.set("mode", "full_ancestry").set("rules", len(rules))
        stats.unfold_seconds = time.perf_counter() - t0
        stats.unfolded_rules = len(rules)
        output = ProvenanceGraph() if collect_graph else None
        self._execute_rules(rules, stats, output)
        self._record_pipeline(stats)
        return stats, output
