"""Translation of unfolded rules into SQL (Section 4.2.4).

Each :class:`UnfoldedRule` becomes one ``SELECT DISTINCT`` block over
the provenance relations (``P_m``), local-contribution tables
(``R_l``), base relations, and — after ASR rewriting — access-support
relations.  Shared variables become equality join predicates; constants
become parameterized filters; the union of all blocks (executed
separately, or combined with UNION ALL for aggregation) covers every
derivation-tree shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cdss.mapping import provenance_relation_name
from repro.cdss.system import CDSS
from repro.datalog.terms import Constant, SkolemTerm, Variable
from repro.errors import ProQLSemanticError, StorageError
from repro.proql.unfolding import BodyItem, UnfoldedRule
from repro.relational.schema import RelationSchema
from repro.storage.encoding import ValueCodec, quote_identifier

#: Maps a body item to the schema of the table it scans.  Extended by
#: the ASR layer, which introduces tables outside the CDSS catalog.
SchemaLookup = Callable[[BodyItem], RelationSchema]


def default_schema_lookup(cdss: CDSS) -> SchemaLookup:
    """Schema lookup for plain (non-ASR) rules."""
    prov_schemas = {
        provenance_relation_name(m.name): m.provenance_schema()
        for m in cdss.mappings.values()
    }

    def lookup(item: BodyItem) -> RelationSchema:
        name = item.atom.relation
        if name in prov_schemas:
            return prov_schemas[name]
        return cdss.catalog[name]

    return lookup


@dataclass
class CompiledRule:
    """SQL form of one unfolded rule."""

    rule: UnfoldedRule
    sql: str
    parameters: tuple[object, ...]
    #: variables in SELECT order
    variables: tuple[Variable, ...]
    #: attribute type per selected variable (for decoding)
    types: dict[Variable, str]

    @property
    def join_width(self) -> int:
        return len(self.rule.items)


def compile_rule(
    rule: UnfoldedRule,
    schema_lookup: SchemaLookup,
    codec: ValueCodec,
) -> CompiledRule:
    """Compile one rule into a SELECT DISTINCT block.

    Raises :class:`StorageError` for rules SQLite cannot execute (more
    than 64 joined tables — the analogue of the paper's DB2 limit that
    capped their experiments at 80 peers) and
    :class:`ProQLSemanticError` for Skolem terms in body atoms (the
    graph engine handles those).
    """
    if len(rule.items) > 64:
        raise StorageError(
            f"rule joins {len(rule.items)} tables; SQLite allows at most 64 "
            "(cf. the paper's DB2 query-size limit beyond 80 peers)"
        )
    location: dict[Variable, tuple[str, str]] = {}
    types: dict[Variable, str] = {}
    from_parts: list[str] = []
    where_parts: list[str] = []
    parameters: list[object] = []
    for index, item in enumerate(rule.items):
        schema = schema_lookup(item)
        alias = f"t{index}"
        from_parts.append(f"{quote_identifier(schema.name)} AS {alias}")
        if item.atom.arity != schema.arity:
            raise ProQLSemanticError(
                f"atom {item.atom} does not match schema of {schema.name}"
            )
        for position, term in enumerate(item.atom.terms):
            attribute = schema.attributes[position]
            column = f"{alias}.{quote_identifier(attribute.name)}"
            if isinstance(term, Constant):
                where_parts.append(f"{column} = ?")
                parameters.append(codec.encode(term.value))
            elif isinstance(term, Variable):
                if term in location:
                    first_alias, first_attr = location[term]
                    where_parts.append(
                        f"{column} = {first_alias}.{quote_identifier(first_attr)}"
                    )
                else:
                    location[term] = (alias, attribute.name)
                    types[term] = attribute.type
            elif isinstance(term, SkolemTerm):
                raise ProQLSemanticError(
                    f"Skolem term {term} in a body atom cannot be compiled "
                    "to SQL; use the graph engine for this query"
                )
    for variable in sorted(rule.not_null, key=lambda v: v.name):
        if variable in location:
            alias, attribute = location[variable]
            where_parts.append(
                f"{alias}.{quote_identifier(attribute)} IS NOT NULL"
            )
    missing = [
        v for v in rule.variables() if v not in location
    ]
    if missing:
        raise ProQLSemanticError(
            f"rule variables {sorted(v.name for v in missing)} do not occur "
            f"in any body atom of {rule}"
        )
    variables = tuple(sorted(location, key=lambda v: v.name))
    select_list = ", ".join(
        f"{alias}.{quote_identifier(attr)} AS {quote_identifier(var.name)}"
        for var, (alias, attr) in sorted(
            location.items(), key=lambda kv: kv[0].name
        )
    )
    sql = f"SELECT DISTINCT {select_list} FROM {', '.join(from_parts)}"
    if where_parts:
        sql += f" WHERE {' AND '.join(where_parts)}"
    return CompiledRule(rule, sql, tuple(parameters), variables, types)
