"""Breadth-first rule unfolding (Section 4.2.3–4.2.4, Examples 4.2/4.3).

For acyclic provenance, each tuple has finitely many derivation-tree
shapes; unfolding enumerates them as a union of conjunctive rules over
provenance relations (``P_m``), local-contribution relations
(``R_l``), and — for pattern-bounded queries — plain public relations.

Two modes:

* :meth:`Unfolder.full_ancestry` — every atom unfolds down to local
  leaves, covering **complete derivations from leaf nodes** (needed by
  annotation computation and by the ``<-+ []`` target query of the
  experiments).  "For every join we need to consider all combinations
  for each side of the join" — this is the exponential blow-up of
  Figures 7–8.
* :meth:`Unfolder.pattern` — unfolding driven by a path expression's
  NFA over the provenance schema graph: the path continues through one
  source atom per derivation; off-path atoms stay as base-relation
  atoms (Example 4.3 keeps ``A(i, s, _)`` and ``N(i, n, false)``).

Both modes **merge derivation specs** that denote the same derivation
node: the provenance-relation columns functionally determine a firing,
so two specs of one mapping with syntactically equal key terms are the
same derivation, and their atom sets are unified.  This mirrors how a
multi-target mapping produces sibling tuples in one firing, and keeps
the rule count at one-rule-per-derivation-*shape*.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping

from repro.cdss.mapping import SchemaMapping, provenance_relation_name
from repro.cdss.system import CDSS, local_rule_name
from repro.datalog.atoms import Atom
from repro.datalog.terms import Term, Variable
from repro.datalog.unification import unify_atoms
from repro.errors import ProQLSemanticError
from repro.exchange.cache import program_fingerprint
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.proql.ast import PathExpr, Step, TupleSpec
from repro.proql.pruning import (
    Factorizer,
    PatternViability,
    PruningOracle,
    UnfoldCache,
)
from repro.proql.schema_graph import SchemaGraph
from repro.relational.schema import local_name


class _StageClock:
    """Per-stage time accumulators of one unfolding run.

    The worklist loop runs thousands of iterations on fig08-sized
    topologies, so stages are timed with plain guarded ``perf_counter``
    reads (no span per iteration); the accumulated totals are emitted
    as :meth:`~repro.obs.trace.Tracer.record` pseudo-spans at the end
    of the run.  ``expand`` includes the merge time spent inside
    :meth:`Unfolder._merge_specs`; the emitter subtracts it so the
    reported stages stay disjoint.  ``prune`` covers the subsumption
    factorization at rule-completion time; ``pruned_rules`` counts the
    rewritings it dropped.
    """

    __slots__ = ("enabled", "expand", "merge", "dedupe", "prune", "pruned_rules")

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.expand = 0.0
        self.merge = 0.0
        self.dedupe = 0.0
        self.prune = 0.0
        self.pruned_rules = 0

    def emit(self, tracer: "Tracer | NullTracer") -> None:
        if not self.enabled:
            return
        tracer.record("unfold.expand", max(0.0, self.expand - self.merge))
        tracer.record("unfold.merge_specs", self.merge)
        tracer.record("unfold.dedupe", self.dedupe)
        tracer.record("unfold.prune", self.prune, rules=self.pruned_rules)

KIND_OPEN = "open"
KIND_PROV = "prov"
KIND_LOCAL = "local"
KIND_BASE = "base"


@dataclass(frozen=True)
class BodyItem:
    """One body atom of a (partially) unfolded rule."""

    atom: Atom
    kind: str
    #: mappings already used on this branch (cycle prevention, §4.2.2)
    visited: frozenset = frozenset()
    #: pattern-NFA states (pattern mode only)
    states: frozenset = frozenset()

    def substitute(self, theta: Mapping[Variable, Term]) -> "BodyItem":
        atom = self.atom.substitute(theta)
        return self if atom is self.atom else replace(self, atom=atom)


@dataclass(frozen=True)
class DerivSpec:
    """One derivation node of the rule's derivation-tree shape."""

    mapping: str
    head: tuple[Atom, ...]
    body: tuple[Atom, ...]
    #: terms of the provenance columns — the derivation's identity
    key: tuple[Term, ...]

    def substitute(self, theta: Mapping[Variable, Term]) -> "DerivSpec":
        return DerivSpec(
            self.mapping,
            tuple(a.substitute(theta) for a in self.head),
            tuple(a.substitute(theta) for a in self.body),
            tuple(_substitute_term(t, theta) for t in self.key),
        )


def _substitute_term(term: Term, theta: Mapping[Variable, Term]) -> Term:
    from repro.datalog.terms import substitute

    return substitute(term, theta)


@dataclass
class UnfoldedRule:
    """A complete conjunctive rule plus its derivation-tree shape."""

    anchor: Atom
    items: tuple[BodyItem, ...]
    specs: tuple[DerivSpec, ...]
    not_null: frozenset = frozenset()
    completed: bool = False

    def substitute(self, theta: Mapping[Variable, Term]) -> "UnfoldedRule":
        return UnfoldedRule(
            self.anchor.substitute(theta),
            tuple(item.substitute(theta) for item in self.items),
            tuple(spec.substitute(theta) for spec in self.specs),
            frozenset(
                v
                for v in (
                    theta.get(var, var) for var in self.not_null
                )
                if isinstance(v, Variable)
            ),
            self.completed,
        )

    def variables(self) -> list[Variable]:
        seen: dict[Variable, None] = {}
        for atom in (self.anchor, *(item.atom for item in self.items)):
            for var in atom.variables():
                seen.setdefault(var)
        for spec in self.specs:
            for atom in spec.head + spec.body:
                for var in atom.variables():
                    seen.setdefault(var)
        return list(seen)

    def open_index(self) -> int | None:
        for index, item in enumerate(self.items):
            if item.kind == KIND_OPEN:
                return index
        return None

    def canonical_key(self) -> tuple:
        """Structure key for duplicate-rule elimination.

        Renames variables in first-occurrence order over the anchor and
        the (sorted) body, so alpha-equivalent rules collide.
        """
        renaming: dict[Variable, Variable] = {}

        def canon(atom: Atom) -> str:
            terms = []
            for term in atom.terms:
                if isinstance(term, Variable):
                    fresh = renaming.setdefault(
                        term, Variable(f"c{len(renaming)}")
                    )
                    terms.append(fresh.name)
                else:
                    terms.append(str(term))
            return f"{atom.relation}({','.join(terms)})"

        anchor_key = canon(self.anchor)
        # Canonicalize body atoms in a deterministic order: sort by
        # (kind, relation, raw string) first, then rename in that order.
        ordered = sorted(
            self.items, key=lambda it: (it.kind, it.atom.relation, str(it.atom))
        )
        body_key = tuple((item.kind, canon(item.atom)) for item in ordered)
        return (anchor_key, body_key)

    def __str__(self) -> str:
        body = ", ".join(
            f"{item.atom}" + ("" if item.kind != KIND_BASE else "°")
            for item in self.items
        )
        return f"{self.anchor} :- {body}"


class Unfolder:
    """Builds unions of conjunctive rules from the schema graph."""

    def __init__(
        self,
        cdss: CDSS,
        schema_graph: SchemaGraph | None = None,
        has_local_data: Callable[[str], bool] | None = None,
        max_rules: int = 100_000,
        tracer: "Tracer | NullTracer | None" = None,
        prune: bool = True,
        cache: UnfoldCache | None = None,
    ) -> None:
        self.cdss = cdss
        self.graph = schema_graph or SchemaGraph.of(cdss)
        if has_local_data is None:
            has_local_data = lambda relation: (
                self.cdss.instance.size(local_name(relation)) > 0
            )
        self.has_local_data = has_local_data
        self.max_rules = max_rules
        if tracer is None:
            tracer = getattr(cdss, "tracer", None) or NULL_TRACER
        self.tracer: "Tracer | NullTracer" = tracer
        #: apply the static pruning oracle + subsumption factorization
        #: (equivalence-preserving; ``False`` gives the exhaustive
        #: enumeration, kept for the property tests).
        self.prune = prune
        #: optional :class:`~repro.proql.pruning.UnfoldCache`; repeat
        #: queries over unchanged mappings/data skip unfolding.
        self.cache = cache
        self._clock = _StageClock(False)
        self._fresh = itertools.count()

    # -- shared helpers ------------------------------------------------------------

    def _fresh_mapping(self, mapping: SchemaMapping) -> tuple[
        Atom | None, tuple[Atom, ...], tuple[Atom, ...], tuple[Term, ...], str
    ]:
        """Rename a mapping apart; return (P-atom|None, head, body, key,
        rename suffix)."""
        suffix = f"__u{next(self._fresh)}"
        rule = mapping.rule.rename_variables(suffix)
        key_terms = tuple(
            Variable(column.name + suffix) for column in mapping.provenance_columns
        )
        prov_atom = None
        if not mapping.is_superfluous:
            prov_atom = Atom(provenance_relation_name(mapping.name), key_terms)
        return prov_atom, rule.head, rule.body, key_terms, suffix

    def _data_relations(self) -> frozenset[str]:
        """Public relations whose local tables currently hold data."""
        return frozenset(
            relation
            for relation in self.graph.relations
            if self.has_local_data(relation)
        )

    def _oracle(self) -> PruningOracle | None:
        """A fresh pruning oracle for one run (None with pruning off).

        Rebuilt per run because productivity depends on which local
        tables hold data *now*; the fixpoint is linear in the schema
        graph and costs microseconds next to the unfolding itself.
        """
        if not self.prune:
            return None
        return PruningOracle(self.graph, self.has_local_data)

    def _cache_key(self, mode: str, query_fingerprint: tuple) -> tuple:
        """(query fingerprint, mapping fingerprint, data, prune) key."""
        return (
            mode,
            query_fingerprint,
            program_fingerprint(m.rule for m in self.cdss.mappings.values()),
            self._data_relations(),
            self.prune,
        )

    def _cache_get(self, key: tuple | None) -> list[UnfoldedRule] | None:
        if self.cache is None or key is None:
            return None
        rules = self.cache.get(key)
        metrics = getattr(self.cdss, "metrics", None)
        if metrics is not None:
            metrics.add(
                "unfold.cache_hits" if rules is not None
                else "unfold.cache_misses"
            )
        return rules

    def _cache_put(
        self, key: tuple | None, rules: list[UnfoldedRule]
    ) -> None:
        if self.cache is not None and key is not None:
            self.cache.put(key, rules)

    def _anchor_atom(self, relation: str) -> Atom:
        schema = self.cdss.catalog[relation]
        suffix = f"__a{next(self._fresh)}"
        return Atom(
            relation,
            tuple(Variable(f"{name}{suffix}") for name in schema.attribute_names),
        )

    def _merge_specs(self, rule: UnfoldedRule) -> UnfoldedRule:
        """Unify derivation specs denoting the same derivation node.

        The provenance columns identify a firing, so specs of one
        mapping with equal key terms are the same derivation; their
        atoms are unified and one copy kept.  Grouping by (mapping,
        key) keeps this linear in the number of specs per pass.
        """
        clock = self._clock
        if not clock.enabled:
            return self._merge_specs_impl(rule)
        t0 = time.perf_counter()
        try:
            return self._merge_specs_impl(rule)
        finally:
            clock.merge += time.perf_counter() - t0

    def _merge_specs_impl(self, rule: UnfoldedRule) -> UnfoldedRule:
        while True:
            groups: dict[tuple, list[int]] = {}
            for index, spec in enumerate(rule.specs):
                groups.setdefault((spec.mapping, spec.key), []).append(index)
            duplicate = next(
                (indices for indices in groups.values() if len(indices) > 1),
                None,
            )
            if duplicate is None:
                break
            i, j = duplicate[0], duplicate[1]
            first, second = rule.specs[i], rule.specs[j]
            theta: dict[Variable, Term] = {}
            consistent = True
            # Unify with the *newer* spec on the left so its (freshly
            # renamed) variables bind toward the older spec's terms —
            # the substitution then touches as few atoms as possible.
            for b, a in zip(first.head + first.body, second.head + second.body):
                unifier = unify_atoms(a.substitute(theta), b.substitute(theta))
                if unifier is None:
                    consistent = False
                    break
                composed = {
                    var: _substitute_term(term, unifier)
                    for var, term in theta.items()
                }
                composed.update(unifier)
                theta = composed
            if not consistent:  # pragma: no cover - keys identify firings
                break
            merged = rule.substitute(theta) if theta else rule
            kept = list(merged.specs)
            del kept[j]
            rule = UnfoldedRule(
                merged.anchor,
                merged.items,
                tuple(kept),
                merged.not_null,
                merged.completed,
            )
        return self._dedupe_items(rule)

    @staticmethod
    def _dedupe_items(rule: UnfoldedRule) -> UnfoldedRule:
        """Collapse syntactically equal body atoms.

        Open duplicates keep the union of their visited sets and
        pattern states; a non-open copy of the same atom subsumes an
        open one only if kinds match, so open/prov/local/base are
        deduped within their own kind.
        """
        merged: dict[tuple[str, Atom], BodyItem] = {}
        order: list[tuple[str, Atom]] = []
        for item in rule.items:
            key = (item.kind, item.atom)
            if key in merged:
                existing = merged[key]
                merged[key] = replace(
                    existing,
                    visited=existing.visited | item.visited,
                    states=existing.states | item.states,
                )
            else:
                merged[key] = item
                order.append(key)
        return UnfoldedRule(
            rule.anchor,
            tuple(merged[key] for key in order),
            rule.specs,
            rule.not_null,
            rule.completed,
        )

    def _already_resolved(self, rule: UnfoldedRule, item: BodyItem) -> bool:
        """True iff the open atom's node already has a derivation in
        the rule.

        After a spec merge, the duplicate spec's source atoms reappear
        as open items; each denotes a tuple node whose derivation
        choice was already made on the first branch (a derivation tree
        gives every node one deriving rule).  Such items are dropped
        instead of re-expanded — both for correctness (one choice per
        node per tree shape) and to avoid exponential re-exploration.
        """
        atom = item.atom
        local_atom = Atom(local_name(atom.relation), atom.terms)
        for other in rule.items:
            if other.kind == KIND_LOCAL and other.atom == local_atom:
                return True
        for spec in rule.specs:
            if atom in spec.head:
                return True
        return False

    def _drop_item(self, rule: UnfoldedRule, index: int) -> UnfoldedRule:
        items = list(rule.items)
        del items[index]
        return UnfoldedRule(
            rule.anchor, tuple(items), rule.specs, rule.not_null, rule.completed
        )

    def _guard(self, count: int, relation: str) -> None:
        if count > self.max_rules:
            raise ProQLSemanticError(
                f"unfolding derivations of {relation!r} exceeded the "
                f"limit: {count} rules > max_rules={self.max_rules}.  "
                f"The mapping closure upstream of {relation!r} is too "
                "complex (see Figure 7's exponential growth); raise "
                "max_rules=, constrain the path with named mappings/"
                "relations, or prune the topology"
            )

    def _admit(
        self,
        rule: UnfoldedRule,
        complete: list[UnfoldedRule],
        factorizer: Factorizer | None,
        clock: _StageClock,
    ) -> None:
        """Append *rule* unless subsumed; evict rules it subsumes.

        The Gottlob et al. factorization step, run incrementally at
        rule-completion time so the worklist never re-explores a
        rewriting the factorizer already covered.  ``factorizer.rules``
        *is* ``complete`` (same list object, mutated in place).
        """
        if factorizer is None:
            complete.append(rule)
            return
        t0 = time.perf_counter() if clock.enabled else 0.0
        before = factorizer.dropped
        factorizer.admit(rule)
        clock.pruned_rules += factorizer.dropped - before
        if clock.enabled:
            clock.prune += time.perf_counter() - t0

    # -- mode B: full ancestry ------------------------------------------------------

    def full_ancestry(
        self,
        anchor_relation: str,
        allowed_mappings: set[str] | None = None,
    ) -> list[UnfoldedRule]:
        """All derivation-tree shapes for tuples of *anchor_relation*.

        Every atom unfolds to either its local-contribution table or a
        provenance step through an allowed mapping; rules whose atoms
        can do neither are dropped (their joins would be empty).  With
        :attr:`prune` on, the oracle cuts such branches *before* they
        are explored (unproductive relations can have no derivation)
        and subsumed rewritings are factorized away on completion.
        """
        if allowed_mappings is None:
            allowed_mappings = self.graph.upstream_mappings([anchor_relation])
        cache_key = self._cache_key(
            "full", (anchor_relation, tuple(sorted(allowed_mappings)))
        )
        cached = self._cache_get(cache_key)
        if cached is not None:
            return cached
        oracle = self._oracle()
        anchor = self._anchor_atom(anchor_relation)
        start = UnfoldedRule(
            anchor,
            (BodyItem(anchor, KIND_OPEN),),
            (),
            completed=True,
        )
        factorizer = Factorizer() if self.prune else None
        complete: list[UnfoldedRule] = (
            factorizer.rules if factorizer is not None else []
        )
        seen: set[tuple] = set()
        worklist = [start]
        clock = self._clock = _StageClock(self.tracer.enabled)
        if oracle is not None and not oracle.productive(anchor_relation):
            clock.emit(self.tracer)
            self._cache_put(cache_key, complete)
            return complete
        while worklist:
            rule = worklist.pop()
            index = rule.open_index()
            if index is None:
                t0 = time.perf_counter() if clock.enabled else 0.0
                key = rule.canonical_key()
                if clock.enabled:
                    clock.dedupe += time.perf_counter() - t0
                if key not in seen:
                    seen.add(key)
                    self._admit(rule, complete, factorizer, clock)
                    self._guard(len(complete), anchor_relation)
                continue
            if self._already_resolved(rule, rule.items[index]):
                worklist.append(self._drop_item(rule, index))
                continue
            t0 = time.perf_counter() if clock.enabled else 0.0
            worklist.extend(
                self._alternatives(rule, index, allowed_mappings, oracle)
            )
            if clock.enabled:
                clock.expand += time.perf_counter() - t0
            self._guard(len(worklist) + len(complete), anchor_relation)
        clock.emit(self.tracer)
        self._cache_put(cache_key, complete)
        return complete

    def _alternatives(
        self,
        rule: UnfoldedRule,
        index: int,
        allowed_mappings: set[str],
        oracle: PruningOracle | None = None,
    ) -> list[UnfoldedRule]:
        """Local-stop and mapping-step alternatives for one open atom
        (full-ancestry mode)."""
        item = rule.items[index]
        relation = item.atom.relation
        if oracle is not None and not oracle.productive(relation):
            # No derivation can ground this atom: the whole rule is
            # dead, so stop exploring it (and its sibling atoms) now.
            return []
        out: list[UnfoldedRule] = []
        if self.has_local_data(relation):
            out.append(self._stop_local(rule, index))
        names = (
            oracle.useful_mappings(relation)
            if oracle is not None
            else self.graph.mappings_into(relation)
        )
        for name in names:
            if name not in allowed_mappings or name in item.visited:
                continue
            mapping = self.cdss.mappings[name]
            for unfolded in self._apply_mapping(rule, index, mapping):
                out.append(unfolded)
        return out

    def _stop_local(self, rule: UnfoldedRule, index: int) -> UnfoldedRule:
        item = rule.items[index]
        relation = item.atom.relation
        local_atom = Atom(local_name(relation), item.atom.terms)
        items = list(rule.items)
        items[index] = BodyItem(local_atom, KIND_LOCAL)
        spec = DerivSpec(
            local_rule_name(relation),
            (item.atom,),
            (local_atom,),
            item.atom.terms,
        )
        return self._dedupe_items(
            UnfoldedRule(
                rule.anchor,
                tuple(items),
                rule.specs + (spec,),
                rule.not_null,
                rule.completed,
            )
        )

    def _apply_mapping(
        self,
        rule: UnfoldedRule,
        index: int,
        mapping: SchemaMapping,
        continue_indices: Iterable[int] | None = None,
        new_states: frozenset = frozenset(),
    ) -> list[UnfoldedRule]:
        """Unfold the open atom at *index* through *mapping*.

        In full-ancestry mode every new body atom stays open
        (``continue_indices`` is None).  In pattern mode only the
        continuation atom keeps pattern states; its siblings become
        open with empty states (they still unfold to leaves in
        annotation-complete queries) — pattern mode instead passes an
        explicit list and marks the rest as base atoms.
        """
        item = rule.items[index]
        out: list[UnfoldedRule] = []
        for head_index, _ in enumerate(mapping.head):
            prov_atom, head, body, key, suffix = self._fresh_mapping(mapping)
            head_atom = head[head_index]
            if head_atom.relation != item.atom.relation:
                continue
            # Unify with the fresh head atom on the left so its renamed
            # variables bind toward the rule's terms: bindings for the
            # rule's own variables then only arise from repeated
            # variables or constants in the mapping head.  Splitting
            # theta on the rename suffix lets the (usually empty)
            # rule-side part skip the whole-rule substitution — the
            # dominant cost on fig08-sized unfoldings.
            theta = unify_atoms(head_atom, item.atom)
            if theta is None:
                continue
            rule_theta = {
                var: term
                for var, term in theta.items()
                if not var.name.endswith(suffix)
            }
            renamed = rule.substitute(rule_theta) if rule_theta else rule
            new_items = list(renamed.items)
            visited = item.visited | {mapping.name}
            replacement: list[BodyItem] = []
            if prov_atom is not None:
                replacement.append(
                    BodyItem(prov_atom.substitute(theta), KIND_PROV)
                )
            body_items: list[BodyItem] = []
            for body_index, body_atom in enumerate(body):
                substituted = body_atom.substitute(theta)
                if continue_indices is None:
                    body_items.append(
                        BodyItem(substituted, KIND_OPEN, visited=visited)
                    )
                elif body_index in set(continue_indices):
                    body_items.append(
                        BodyItem(
                            substituted,
                            KIND_OPEN,
                            visited=visited,
                            states=new_states,
                        )
                    )
                else:
                    body_items.append(BodyItem(substituted, KIND_BASE))
            replacement.extend(body_items)
            new_items[index : index + 1] = replacement
            spec = DerivSpec(
                mapping.name,
                tuple(a.substitute(theta) for a in head),
                tuple(a.substitute(theta) for a in body),
                tuple(_substitute_term(t, theta) for t in key),
            )
            candidate = UnfoldedRule(
                renamed.anchor,
                tuple(new_items),
                renamed.specs + (spec,),
                renamed.not_null,
                renamed.completed,
            )
            out.append(self._merge_specs(candidate))
        return out

    # -- mode A: pattern-driven ------------------------------------------------------

    def pattern(
        self,
        path: PathExpr,
        anchor_relations: Iterable[str],
        step_mappings: Callable[[Step], set[str] | None] | None = None,
    ) -> list[UnfoldedRule]:
        """Unfolded rules for one FOR/INCLUDE path expression.

        ``anchor_relations`` instantiates the leftmost spec (named
        relation, or every relation when unconstrained).
        ``step_mappings`` supplies per-step mapping restrictions (from
        ``<m`` steps and WHERE conditions on ``<$p`` variables).

        A single trailing ``<-+ []`` with an unrestricted endpoint is
        full ancestry — delegated to mode B, which covers the same
        subgraph with complete derivation trees.
        """
        steps, specs = path.steps, path.specs
        if (
            len(steps) == 1
            and steps[0].kind == "plus"
            and specs[1].relation is None
        ):
            rules: list[UnfoldedRule] = []
            for relation in anchor_relations:
                rules.extend(self.full_ancestry(relation))
            return rules
        get_allowed = step_mappings or (lambda step: None)
        anchors = tuple(anchor_relations)
        resolved_allowed = tuple(
            None if (allowed := get_allowed(step)) is None
            else tuple(sorted(allowed))
            for step in steps
        )
        cache_key = self._cache_key(
            "pattern", (str(path), tuple(sorted(anchors)), resolved_allowed)
        )
        cached = self._cache_get(cache_key)
        if cached is not None:
            return cached
        oracle = self._oracle()
        viability = (
            PatternViability(self.graph, path, get_allowed)
            if self.prune
            else None
        )
        factorizer = Factorizer() if self.prune else None
        complete: list[UnfoldedRule] = (
            factorizer.rules if factorizer is not None else []
        )
        seen: set[tuple] = set()
        worklist: list[UnfoldedRule] = []
        for relation in anchors:
            if viability is not None and not viability.start_viable(relation):
                # The path NFA cannot reach a final state from this
                # anchor over the schema graph: statically empty.
                continue
            anchor = self._anchor_atom(relation)
            worklist.append(
                UnfoldedRule(
                    anchor,
                    (
                        BodyItem(
                            anchor, KIND_OPEN, states=frozenset([0])
                        ),
                    ),
                    (),
                )
            )
        clock = self._clock = _StageClock(self.tracer.enabled)
        while worklist:
            rule = worklist.pop()
            index = rule.open_index()
            if index is None:
                if rule.completed:
                    t0 = time.perf_counter() if clock.enabled else 0.0
                    key = rule.canonical_key()
                    if clock.enabled:
                        clock.dedupe += time.perf_counter() - t0
                    if key not in seen:
                        seen.add(key)
                        self._admit(rule, complete, factorizer, clock)
                        self._guard(len(complete), rule.anchor.relation)
                continue
            item = rule.items[index]
            if not item.states and self._already_resolved(rule, item):
                worklist.append(self._drop_item(rule, index))
                continue
            t0 = time.perf_counter() if clock.enabled else 0.0
            worklist.extend(
                self._pattern_alternatives(
                    rule, index, path, get_allowed, oracle, viability
                )
            )
            if clock.enabled:
                clock.expand += time.perf_counter() - t0
            self._guard(
                len(worklist) + len(complete), rule.anchor.relation
            )
        clock.emit(self.tracer)
        self._cache_put(cache_key, complete)
        return complete

    def _pattern_alternatives(
        self,
        rule: UnfoldedRule,
        index: int,
        path: PathExpr,
        get_allowed: Callable[[Step], set[str] | None],
        oracle: PruningOracle | None = None,
        viability: PatternViability | None = None,
    ) -> list[UnfoldedRule]:
        item = rule.items[index]
        steps = path.steps
        out: list[UnfoldedRule] = []
        final = len(steps)
        # Stop option: pattern complete at this atom -> base atom.
        # With the oracle on, a base atom over an unproductive relation
        # is an empty join — skip emitting the rule at all.
        if final in item.states or not item.states:
            if oracle is None or oracle.productive(item.atom.relation):
                items = list(rule.items)
                items[index] = BodyItem(item.atom, KIND_BASE)
                out.append(
                    UnfoldedRule(
                        rule.anchor,
                        tuple(items),
                        rule.specs,
                        rule.not_null,
                        rule.completed or final in item.states,
                    )
                )
        # Continue options: one derivation step through each candidate
        # mapping, continuing the pattern through one source atom.
        active = [p for p in item.states if p < final]
        if not active:
            return out
        names = (
            oracle.useful_mappings(item.atom.relation)
            if oracle is not None
            else self.graph.mappings_into(item.atom.relation)
        )
        for name in names:
            if name in item.visited:
                continue
            mapping = self.cdss.mappings[name]
            # Which pattern states allow traversing this mapping?
            usable = []
            for p in active:
                allowed = get_allowed(steps[p])
                named = steps[p].mapping
                if named is not None and named != name:
                    continue
                if allowed is not None and name not in allowed:
                    continue
                usable.append(p)
            if not usable:
                continue
            for source_index, source_atom in enumerate(mapping.body):
                new_states = self._transition(
                    usable, steps, path.specs, source_atom.relation
                )
                if viability is not None:
                    # Drop NFA states that can no longer reach a final
                    # state from this relation over the schema graph.
                    new_states = frozenset(
                        q
                        for q in new_states
                        if viability.viable(q, source_atom.relation)
                    )
                if not new_states:
                    continue
                out.extend(
                    self._apply_mapping(
                        rule,
                        index,
                        mapping,
                        continue_indices=[source_index],
                        new_states=new_states,
                    )
                )
        return out

    @staticmethod
    def _transition(
        states: Iterable[int],
        steps: tuple[Step, ...],
        specs: tuple[TupleSpec, ...],
        to_relation: str,
    ) -> frozenset:
        """NFA transition: consume one backward edge into *to_relation*."""
        result: set[int] = set()
        for position in states:
            step = steps[position]
            next_spec = specs[position + 1]
            accepts = next_spec.relation is None or next_spec.relation == to_relation
            if step.kind == "one":
                if accepts:
                    result.add(position + 1)
            else:  # plus: stay inside, or exit at the endpoint spec
                result.add(position)
                if accepts:
                    result.add(position + 1)
        return frozenset(result)
