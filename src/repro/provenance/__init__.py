"""Provenance graphs, annotation evaluation, and export."""

from repro.provenance.annotate import LeafAssignment, annotate, provenance_polynomial
from repro.provenance.export import to_dot, to_json
from repro.provenance.graph import DerivationNode, ProvenanceGraph, TupleNode

__all__ = [
    "DerivationNode",
    "LeafAssignment",
    "ProvenanceGraph",
    "TupleNode",
    "annotate",
    "provenance_polynomial",
    "to_dot",
    "to_json",
]
