"""Bottom-up annotation of provenance graphs (Section 2.1).

Given a provenance (sub)graph, a semiring, an assignment of semiring
values to leaf tuple nodes, and unary functions per mapping, compute
the annotation of every node:

* a **derivation node** gets ``f_mapping(⊗ of its source values)``;
* a **tuple node** gets ``⊕ of its derivation values`` (a leaf gets its
  assigned base value).

Acyclic graphs are evaluated in one topological pass.  Cyclic graphs
(recursive mappings) are handled by Kleene fixpoint iteration starting
from all-``zero``, which converges for the idempotent + absorptive
semirings of Table 1; for the others a :class:`CycleError` is raised,
matching the paper's caveat that e.g. derivation counts may be
infinite.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Mapping

from repro.errors import CycleError, EvaluationError
from repro.provenance.graph import DerivationNode, ProvenanceGraph, TupleNode
from repro.semirings.base import MappingFunction, Semiring
from repro.semirings.polynomial import Polynomial, PolynomialSemiring

#: Assigns a base value to each leaf tuple node.
LeafAssignment = Callable[[TupleNode], Any]


def _resolve_mapping_functions(
    semiring: Semiring,
    mapping_functions: Mapping[str, MappingFunction] | None,
) -> Callable[[str], MappingFunction]:
    identity = semiring.identity_function()
    table = dict(mapping_functions or {})
    return lambda mapping: table.get(mapping, identity)


def annotate(
    graph: ProvenanceGraph,
    semiring: Semiring,
    leaf_assignment: LeafAssignment | Mapping[TupleNode, Any] | None = None,
    mapping_functions: Mapping[str, MappingFunction] | None = None,
    max_rounds: int = 10_000,
) -> dict[TupleNode, Any]:
    """Annotation of every tuple node of *graph* in *semiring*.

    ``leaf_assignment`` may be a callable or a dict; leaves absent from
    a dict (or a ``None`` assignment) default to ``semiring.one``, the
    identity element for ``·`` (Section 3.2.2's default rule).
    """
    if leaf_assignment is None:
        assign: LeafAssignment = semiring.default_leaf
    elif isinstance(leaf_assignment, Mapping):
        table = leaf_assignment
        assign = lambda node: (
            table[node] if node in table else semiring.default_leaf(node)
        )
    else:
        assign = leaf_assignment
    func_of = _resolve_mapping_functions(semiring, mapping_functions)

    if graph.is_acyclic():
        return _annotate_acyclic(graph, semiring, assign, func_of)
    if not semiring.cycle_safe:
        raise CycleError(
            f"provenance graph is cyclic and semiring {semiring.name} is not "
            "idempotent+absorptive; annotations may not converge"
        )
    return _annotate_fixpoint(graph, semiring, assign, func_of, max_rounds)


def _tuple_value(
    node: TupleNode,
    graph: ProvenanceGraph,
    semiring: Semiring,
    assign: LeafAssignment,
    derivation_values: Mapping[DerivationNode, Any],
) -> Any:
    derivations = graph.derivations_of(node)
    if not derivations:
        return semiring.validate(assign(node))
    return semiring.sum(
        derivation_values[d] for d in sorted(derivations, key=str)
    )


def _derivation_value(
    node: DerivationNode,
    semiring: Semiring,
    func_of: Callable[[str], MappingFunction],
    tuple_values: Mapping[TupleNode, Any],
) -> Any:
    product = semiring.product(tuple_values[s] for s in node.sources)
    return func_of(node.mapping)(product)


def _annotate_acyclic(
    graph: ProvenanceGraph,
    semiring: Semiring,
    assign: LeafAssignment,
    func_of: Callable[[str], MappingFunction],
) -> dict[TupleNode, Any]:
    # Kahn topological order over the bipartite dependency graph:
    # a derivation waits for all its sources; a tuple for all the
    # derivations targeting it.
    tuple_values: dict[TupleNode, Any] = {}
    derivation_values: dict[DerivationNode, Any] = {}

    pending_tuple: dict[TupleNode, int] = {
        t: len(graph.derivations_of(t)) for t in graph.tuples
    }
    pending_deriv: dict[DerivationNode, int] = {
        d: len(set(d.sources)) for d in graph.derivations
    }
    ready: deque = deque(t for t, n in pending_tuple.items() if n == 0)
    ready.extend(d for d, n in pending_deriv.items() if n == 0)

    processed = 0
    while ready:
        node = ready.popleft()
        processed += 1
        if isinstance(node, TupleNode):
            tuple_values[node] = _tuple_value(
                node, graph, semiring, assign, derivation_values
            )
            for deriv in graph.derivations_using(node):
                if deriv in pending_deriv:
                    pending_deriv[deriv] -= 1
                    if pending_deriv[deriv] == 0:
                        ready.append(deriv)
        else:
            derivation_values[node] = _derivation_value(
                node, semiring, func_of, tuple_values
            )
            for target in set(node.targets):
                pending_tuple[target] -= 1
                if pending_tuple[target] == 0:
                    ready.append(target)
    if processed != len(pending_tuple) + len(pending_deriv):
        raise EvaluationError("topological annotation missed nodes (cycle?)")
    return tuple_values


def _annotate_fixpoint(
    graph: ProvenanceGraph,
    semiring: Semiring,
    assign: LeafAssignment,
    func_of: Callable[[str], MappingFunction],
    max_rounds: int,
) -> dict[TupleNode, Any]:
    tuple_values: dict[TupleNode, Any] = {}
    for node in graph.tuples:
        if graph.is_leaf(node):
            tuple_values[node] = semiring.validate(assign(node))
        else:
            tuple_values[node] = semiring.zero
    derivations = sorted(graph.derivations, key=str)
    for _ in range(max_rounds):
        derivation_values = {
            d: _derivation_value(d, semiring, func_of, tuple_values)
            for d in derivations
        }
        changed = False
        for node in graph.tuples:
            if graph.is_leaf(node):
                continue
            value = _tuple_value(
                node, graph, semiring, assign, derivation_values
            )
            if value != tuple_values[node]:
                tuple_values[node] = value
                changed = True
        if not changed:
            return tuple_values
    raise EvaluationError(
        f"fixpoint annotation did not converge within {max_rounds} rounds"
    )


def derivability_partition(
    graph: ProvenanceGraph,
    leaf_assignment: LeafAssignment | Mapping[TupleNode, Any] | None = None,
) -> tuple[set[TupleNode], set[DerivationNode]]:
    """Split *graph* by the DERIVABILITY test (the paper's Q5).

    Annotates every tuple node in the DERIVABILITY semiring under
    *leaf_assignment* (typically "does the local tuple still exist")
    and returns ``(dead_tuples, dead_derivations)``: the underivable
    tuple nodes plus every derivation touching one of them as source or
    target (derivation-node inseparability, Section 3.1).  Cyclic
    graphs use the Kleene iteration from all-``false`` — the *least*
    fixpoint — so cyclically self-supporting tuples with no surviving
    base are dead.

    This single definition is the deletion-propagation semantics both
    engines implement: the memory engine applies it to the provenance
    graph directly, and the SQLite engine's relational fixpoint
    (:meth:`repro.exchange.sql_executor.SQLiteExchangeEngine.propagate_deletions`)
    computes the same least fixpoint over the stored firing history.
    """
    from repro.semirings.registry import get_semiring

    derivable = annotate(
        graph, get_semiring("DERIVABILITY"), leaf_assignment=leaf_assignment
    )
    dead_tuples = {node for node, value in derivable.items() if not value}
    if not dead_tuples:
        return dead_tuples, set()
    dead_derivations = {
        deriv
        for deriv in graph.derivations
        if any(src in dead_tuples for src in deriv.sources)
        or any(tgt in dead_tuples for tgt in deriv.targets)
    }
    return dead_tuples, dead_derivations


def lineage_of(graph: ProvenanceGraph, node: TupleNode) -> frozenset:
    """Lineage of one tuple node (the paper's Q6): the set of leaf
    (local base) tuples *node* derives from.

    Annotates in the LINEAGE semiring with each leaf assigned its own
    singleton — but only over *node*'s ancestor closure, not the whole
    graph: a tuple's annotation depends solely on its ancestors, so
    restricting first makes a single-node query cost the ancestry, not
    the instance.  (Co-target tuples the closed subgraph drags along
    are annotated too, but nothing of theirs flows into *node* — a
    co-target that fed an ancestor would itself be an ancestor.)

    Raises :class:`KeyError` when *node* is not in the graph, and is
    the single definition of lineage both engines implement: the
    SQLite engine's backward walk
    (:meth:`repro.exchange.graph_queries.StoreGraphQueries.lineage`)
    computes the same leaf set over the stored firing history.
    """
    from repro.semirings.events import BOTTOM
    from repro.semirings.registry import get_semiring

    if node not in graph:
        raise KeyError(node)
    tuples, derivations = graph.ancestors(node)
    closure = graph.subgraph(tuples, derivations)
    values = annotate(
        closure,
        get_semiring("LINEAGE"),
        leaf_assignment=lambda leaf: frozenset([leaf]),
    )
    result = values[node]
    return frozenset() if result is BOTTOM else result


def provenance_polynomial(
    graph: ProvenanceGraph,
    node: TupleNode,
    indeterminate: Callable[[TupleNode], object] = str,
) -> Polynomial:
    """The ℕ[X] provenance polynomial of *node* (Section 2.1).

    Leaves become indeterminates named by *indeterminate* (default:
    their string form).  Requires an acyclic graph — the polynomial of
    a cyclic derivation is an infinite formal power series.
    """
    if not graph.is_acyclic():
        raise CycleError("provenance polynomials require an acyclic graph")
    values = annotate(
        graph,
        PolynomialSemiring(),
        leaf_assignment=lambda leaf: Polynomial.variable(indeterminate(leaf)),
    )
    return values[node]
