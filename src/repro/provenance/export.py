"""Export provenance graphs for interactive browsers (Section 1).

Declarative ProQL projections produce subgraphs; these helpers render
them as Graphviz DOT or JSON so graphical tools can visualize "the
relationship between tuples in different relations, or the derivation
of certain results" without knowing the physical representation.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.provenance.graph import DerivationNode, ProvenanceGraph, TupleNode


def _tuple_id(node: TupleNode) -> str:
    return f"t_{abs(hash(node)):x}"


def _deriv_id(node: DerivationNode) -> str:
    return f"d_{abs(hash(node)):x}"


def to_dot(
    graph: ProvenanceGraph,
    annotations: Mapping[TupleNode, Any] | None = None,
    highlight: frozenset[TupleNode] | set[TupleNode] = frozenset(),
) -> str:
    """Render *graph* in Graphviz DOT, mirroring Figure 1's notation:
    rectangles for tuples, ellipses for derivations, bold for leaves
    (the paper's boldface base data)."""
    lines = [
        "digraph provenance {",
        "  rankdir=RL;",
        '  node [fontname="Helvetica"];',
    ]
    for node in sorted(graph.tuples):
        label = str(node)
        if annotations is not None and node in annotations:
            label += f"\\n= {annotations[node]}"
        style = "bold" if graph.is_leaf(node) else "solid"
        if node in highlight:
            style += ",filled"
        lines.append(
            f'  {_tuple_id(node)} [shape=box, style="{style}", label="{label}"];'
        )
    for deriv in sorted(graph.derivations):
        lines.append(
            f'  {_deriv_id(deriv)} [shape=ellipse, label="{deriv.mapping}"];'
        )
        for source in deriv.sources:
            lines.append(f"  {_tuple_id(source)} -> {_deriv_id(deriv)};")
        for target in deriv.targets:
            lines.append(f"  {_deriv_id(deriv)} -> {_tuple_id(target)};")
    lines.append("}")
    return "\n".join(lines)


def to_json(
    graph: ProvenanceGraph,
    annotations: Mapping[TupleNode, Any] | None = None,
) -> str:
    """Serialize *graph* as a JSON document with node/edge lists."""
    tuples = []
    for node in sorted(graph.tuples):
        entry: dict[str, Any] = {
            "id": _tuple_id(node),
            "relation": node.relation,
            "values": [repr(v) for v in node.values],
            "leaf": graph.is_leaf(node),
        }
        if annotations is not None and node in annotations:
            entry["annotation"] = repr(annotations[node])
        tuples.append(entry)
    derivations = [
        {
            "id": _deriv_id(deriv),
            "mapping": deriv.mapping,
            "sources": [_tuple_id(s) for s in deriv.sources],
            "targets": [_tuple_id(t) for t in deriv.targets],
        }
        for deriv in sorted(graph.derivations)
    ]
    return json.dumps({"tuples": tuples, "derivations": derivations}, indent=2)
