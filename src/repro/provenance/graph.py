"""The provenance graph of Figure 1.

Two node kinds:

* **tuple nodes** — one per (relation, tuple) pair, drawn as rectangles
  in the paper;
* **derivation nodes** — one per rule firing, drawn as ellipses and
  labeled with the mapping name.  A derivation node has ``m`` source
  tuple nodes (the joined body tuples) and ``n`` target tuple nodes
  (the head tuples of a GLAV mapping), and is "inseparable" from them:
  whenever a derivation node appears in a query answer, all its sources
  and targets are included too (Section 3.1).

The paper's ``+`` leaf markers (local/base contributions) are modeled
as derivations through local-contribution rules (``L1``–``L4`` of
Example 2.1), so graph leaves are exactly the tuples of ``R_l``
relations.

This in-memory graph has a relational twin (Section 4.1): a tuple node
is a stored row of its relation's table, and a derivation node is a
row of its mapping's ``P_m`` provenance relation (equivalently, a
satisfied body join over the stored instance — the store holds an
exchange fixpoint, so the two coincide).  Store-resident systems never
build this object at all; the graph queries of
:mod:`repro.exchange.graph_queries` traverse the twin instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.errors import ProvenanceError
from repro.relational.schema import is_local_name

Row = tuple[object, ...]


@dataclass(frozen=True, order=True)
class TupleNode:
    """A tuple node, identified by relation name and tuple values."""

    relation: str
    values: Row

    def __str__(self) -> str:
        inner = ",".join(str(v) for v in self.values)
        return f"{self.relation}({inner})"

    @property
    def is_local(self) -> bool:
        """True iff this tuple lives in a local-contribution relation."""
        return is_local_name(self.relation)


@dataclass(frozen=True, order=True)
class DerivationNode:
    """One rule firing: ``mapping`` joined ``sources`` to yield ``targets``.

    A base/local insertion is a derivation whose mapping is a local
    rule (``L*``) with the ``R_l`` tuple as its single source.
    """

    mapping: str
    sources: tuple[TupleNode, ...]
    targets: tuple[TupleNode, ...]

    def __str__(self) -> str:
        sources = " ⋈ ".join(str(s) for s in self.sources) or "∅"
        targets = ", ".join(str(t) for t in self.targets)
        return f"[{self.mapping}: {sources} → {targets}]"


class ProvenanceGraph:
    """Mutable provenance graph with adjacency indexes.

    ``derivations_of(t)`` — derivations with *t* among their targets
    (alternate ways of producing *t*; these represent **union**).
    ``derivations_using(t)`` — derivations with *t* among their sources.
    """

    def __init__(self) -> None:
        self._tuples: set[TupleNode] = set()
        self._derivations: set[DerivationNode] = set()
        self._of: dict[TupleNode, set[DerivationNode]] = {}
        self._using: dict[TupleNode, set[DerivationNode]] = {}

    # -- construction ---------------------------------------------------------

    def add_tuple(self, node: TupleNode) -> TupleNode:
        self._tuples.add(node)
        return node

    def add_derivation(self, node: DerivationNode) -> DerivationNode:
        if node in self._derivations:
            return node
        self._derivations.add(node)
        for tup in node.sources + node.targets:
            self._tuples.add(tup)
        for tup in node.targets:
            self._of.setdefault(tup, set()).add(node)
        for tup in node.sources:
            self._using.setdefault(tup, set()).add(node)
        return node

    def derive(
        self,
        mapping: str,
        sources: Iterable[TupleNode],
        targets: Iterable[TupleNode],
    ) -> DerivationNode:
        return self.add_derivation(
            DerivationNode(mapping, tuple(sources), tuple(targets))
        )

    # -- inspection -------------------------------------------------------------

    @property
    def tuples(self) -> frozenset[TupleNode]:
        return frozenset(self._tuples)

    @property
    def derivations(self) -> frozenset[DerivationNode]:
        return frozenset(self._derivations)

    def __contains__(self, node: TupleNode | DerivationNode) -> bool:
        if isinstance(node, TupleNode):
            return node in self._tuples
        return node in self._derivations

    def derivations_of(self, node: TupleNode) -> frozenset[DerivationNode]:
        return frozenset(self._of.get(node, ()))

    def derivations_using(self, node: TupleNode) -> frozenset[DerivationNode]:
        return frozenset(self._using.get(node, ()))

    def tuples_in(self, relation: str) -> Iterator[TupleNode]:
        return (t for t in self._tuples if t.relation == relation)

    def is_leaf(self, node: TupleNode) -> bool:
        """A leaf has no incoming derivations (EDB/local tuples)."""
        return not self._of.get(node)

    def leaves(self) -> Iterator[TupleNode]:
        return (t for t in self._tuples if self.is_leaf(t))

    def mappings_used(self) -> set[str]:
        return {d.mapping for d in self._derivations}

    def size(self) -> tuple[int, int]:
        """(number of tuple nodes, number of derivation nodes)."""
        return len(self._tuples), len(self._derivations)

    # -- traversal ------------------------------------------------------------

    def ancestors(
        self,
        node: TupleNode,
        through: Callable[[DerivationNode], bool] | None = None,
    ) -> tuple[set[TupleNode], set[DerivationNode]]:
        """All tuple and derivation nodes *node* is derivable from.

        Walks edges backwards (target → derivation → sources),
        optionally filtered by a derivation predicate.  The start node
        is included in the tuple set.  Safe on cyclic graphs.
        """
        seen_tuples: set[TupleNode] = set()
        seen_derivs: set[DerivationNode] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen_tuples:
                continue
            seen_tuples.add(current)
            for deriv in self._of.get(current, ()):
                if through is not None and not through(deriv):
                    continue
                if deriv in seen_derivs:
                    continue
                seen_derivs.add(deriv)
                stack.extend(deriv.sources)
        return seen_tuples, seen_derivs

    def descendants(
        self,
        node: TupleNode,
        through: Callable[[DerivationNode], bool] | None = None,
    ) -> tuple[set[TupleNode], set[DerivationNode]]:
        """All tuple and derivation nodes reachable forward from *node*."""
        seen_tuples: set[TupleNode] = set()
        seen_derivs: set[DerivationNode] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current in seen_tuples:
                continue
            seen_tuples.add(current)
            for deriv in self._using.get(current, ()):
                if through is not None and not through(deriv):
                    continue
                if deriv in seen_derivs:
                    continue
                seen_derivs.add(deriv)
                stack.extend(deriv.targets)
        return seen_tuples, seen_derivs

    def is_acyclic(self) -> bool:
        """True iff no tuple node is among its own proper ancestors."""
        # Colors: 0 = visiting, 1 = done.
        state: dict[TupleNode, int] = {}

        def visit(node: TupleNode) -> bool:
            mark = state.get(node)
            if mark == 0:
                return False
            if mark == 1:
                return True
            state[node] = 0
            for deriv in self._of.get(node, ()):
                for src in deriv.sources:
                    if not visit(src):
                        return False
            state[node] = 1
            return True

        return all(visit(t) for t in self._tuples)

    # -- subgraphs -------------------------------------------------------------

    def subgraph(
        self,
        tuples: Iterable[TupleNode],
        derivations: Iterable[DerivationNode],
    ) -> "ProvenanceGraph":
        """Closed subgraph over the given nodes.

        Derivation-node closure (Section 3.1): each included derivation
        brings *all* its source and target tuple nodes, preserving the
        arity/meaning of the mapping.
        """
        out = ProvenanceGraph()
        for node in tuples:
            if node not in self._tuples:
                raise ProvenanceError(f"tuple node {node} not in graph")
            out.add_tuple(node)
        for deriv in derivations:
            if deriv not in self._derivations:
                raise ProvenanceError(f"derivation node {deriv} not in graph")
            out.add_derivation(deriv)
        return out

    def remove_nodes(
        self,
        tuples: Iterable[TupleNode],
        derivations: Iterable[DerivationNode],
    ) -> None:
        """Remove the given nodes in place (deletion propagation).

        The caller must pass a derivation-closed cut — every derivation
        touching a removed tuple must itself be removed (which
        :func:`repro.provenance.annotate.derivability_partition`
        guarantees) — so the survivors keep the Section 3.1 invariant
        that a derivation's sources and targets are all present.
        Unlike :meth:`subgraph`, this does not rebuild the adjacency
        indexes, so collecting a few dead nodes costs the cut, not the
        whole graph.
        """
        for deriv in derivations:
            if deriv not in self._derivations:
                continue
            self._derivations.discard(deriv)
            for tup in deriv.targets:
                bucket = self._of.get(tup)
                if bucket is not None:
                    bucket.discard(deriv)
                    if not bucket:
                        del self._of[tup]
            for tup in deriv.sources:
                bucket = self._using.get(tup)
                if bucket is not None:
                    bucket.discard(deriv)
                    if not bucket:
                        del self._using[tup]
        for tup in tuples:
            self._tuples.discard(tup)
            self._of.pop(tup, None)
            self._using.pop(tup, None)

    def merge(self, other: "ProvenanceGraph") -> None:
        """Union *other* into this graph in place."""
        for node in other.tuples:
            self.add_tuple(node)
        for deriv in other.derivations:
            self.add_derivation(deriv)

    def copy(self) -> "ProvenanceGraph":
        out = ProvenanceGraph()
        out.merge(self)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProvenanceGraph):
            return NotImplemented
        return (
            self._tuples == other._tuples and self._derivations == other._derivations
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n_tuples, n_derivs = self.size()
        return f"<ProvenanceGraph tuples={n_tuples} derivations={n_derivs}>"
