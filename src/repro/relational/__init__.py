"""Relational substrate: schemas, catalogs, and set-semantics instances."""

from repro.relational.instance import Catalog, Instance, Row
from repro.relational.schema import (
    Attribute,
    RelationSchema,
    is_local_name,
    local_name,
    public_name,
)

__all__ = [
    "Attribute",
    "Catalog",
    "Instance",
    "RelationSchema",
    "Row",
    "is_local_name",
    "local_name",
    "public_name",
]
