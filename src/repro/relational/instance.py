"""In-memory database instances under set semantics.

An :class:`Instance` holds the extension of every relation in a
:class:`Catalog` of schemas.  Tuples are plain Python tuples of values;
identity is by value (set semantics), while the storage layer keys
tuples by their schema key (Section 4.1 of the paper).

Every relation additionally carries a **change journal** so external
mirrors (the SQLite :class:`~repro.exchange.sql_executor.ExchangeStore`)
can ship only what moved since their last sync instead of reloading the
whole relation:

* a *deletion epoch* that bumps on every successful delete — an epoch
  change tells a mirror its incremental log is no longer a superset of
  the relation, so it must reload in full;
* an *appended-row log* of the rows inserted since the epoch started,
  in insertion order, from which a mirror replays just the suffix past
  its high-water mark.

A journal position is the opaque pair ``(epoch, appended)`` returned by
:meth:`Instance.change_mark`; :meth:`Instance.changes_since` answers
"what happened after this mark" as either an appended-row suffix or
``None`` (reload required).

The log starts recording only once someone takes a relation's first
mark (a mirror that has never synced needs a full reload regardless,
so pre-mark inserts need no replay).  Workloads that never attach a
mirror therefore pay nothing; with a mirror attached the log holds one
reference per row inserted in the current epoch — bounded by the
relation's size, since any deletion clears it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.schema import RelationSchema

Row = tuple[object, ...]

#: Opaque journal position: (deletion epoch, appended-row count).
ChangeMark = tuple[int, int]


class _Journal:
    """Per-relation change journal (see module docstring)."""

    __slots__ = ("epoch", "appended", "observed")

    def __init__(self) -> None:
        self.epoch = 0
        self.appended: list[Row] = []
        self.observed = False

    def mark(self) -> ChangeMark:
        # Taking a mark is what turns recording on: replay is only ever
        # requested from a mark, and a caller without one full-reloads,
        # so rows inserted before the first mark need no log entry.
        self.observed = True
        return (self.epoch, len(self.appended))

    def record_insert(self, row: Row) -> None:
        if self.observed:
            self.appended.append(row)

    def record_delete(self) -> None:
        # The appended log only ever replays within one epoch; a
        # deletion forces mirrors into a full reload anyway, so the
        # log restarts empty.
        self.epoch += 1
        self.appended.clear()


class Catalog:
    """A named collection of relation schemas."""

    def __init__(self, schemas: Iterable[RelationSchema] = ()):
        self._schemas: dict[str, RelationSchema] = {}
        for schema in schemas:
            self.add(schema)

    def add(self, schema: RelationSchema) -> None:
        if schema.name in self._schemas and self._schemas[schema.name] != schema:
            raise SchemaError(f"conflicting redefinition of relation {schema.name}")
        self._schemas[schema.name] = schema

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name}") from None

    def get(self, name: str) -> RelationSchema | None:
        return self._schemas.get(name)

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._schemas.values())

    def names(self) -> list[str]:
        return list(self._schemas)

    def __len__(self) -> int:
        return len(self._schemas)


class Instance:
    """Mutable set-semantics instance over a :class:`Catalog`.

    >>> cat = Catalog([RelationSchema.of("R", ["a", "b"], key=["a"])])
    >>> inst = Instance(cat)
    >>> inst.insert("R", (1, 2))
    True
    >>> inst.insert("R", (1, 2))     # duplicate under set semantics
    False
    >>> sorted(inst["R"])
    [(1, 2)]
    """

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._data: dict[str, set[Row]] = {s.name: set() for s in catalog}
        self._journals: dict[str, _Journal] = {}

    # -- mutation -----------------------------------------------------------

    def _check(self, relation: str, row: Row) -> Row:
        schema = self.catalog[relation]
        row = tuple(row)
        if len(row) != schema.arity:
            raise SchemaError(
                f"arity mismatch inserting into {relation}: "
                f"got {len(row)}, expected {schema.arity}"
            )
        return row

    def insert(self, relation: str, row: Iterable[object]) -> bool:
        """Insert a tuple; returns True iff it was new."""
        row = self._check(relation, tuple(row))
        table = self._data.setdefault(relation, set())
        if row in table:
            return False
        table.add(row)
        self._journal(relation).record_insert(row)
        return True

    def insert_many(self, relation: str, rows: Iterable[Iterable[object]]) -> int:
        """Insert many tuples; returns the number actually added."""
        return sum(self.insert(relation, row) for row in rows)

    def delete(self, relation: str, row: Iterable[object]) -> bool:
        """Delete a tuple; returns True iff it was present."""
        row = self._check(relation, tuple(row))
        table = self._data.get(relation, set())
        if row in table:
            table.remove(row)
            self._journal(relation).record_delete()
            return True
        return False

    # -- change journal -----------------------------------------------------

    def _journal(self, relation: str) -> _Journal:
        journal = self._journals.get(relation)
        if journal is None:
            journal = self._journals[relation] = _Journal()
        return journal

    def change_mark(self, relation: str) -> ChangeMark:
        """Current journal position of *relation* (opaque; monotonic
        within a deletion epoch).  Two equal marks mean the relation is
        unchanged between them."""
        return self._journal(relation).mark()

    def changes_since(
        self, relation: str, mark: ChangeMark | None
    ) -> Sequence[Row] | None:
        """Rows appended to *relation* since *mark*, in insertion order.

        Returns ``None`` when an incremental replay is impossible — the
        caller has never synced (``mark is None``) or the relation saw a
        deletion since (epoch moved) — meaning a mirror must reload the
        relation in full.
        """
        journal = self._journal(relation)
        if mark is None or mark[0] != journal.epoch:
            return None
        return journal.appended[mark[1]:]

    # -- access -------------------------------------------------------------

    def __getitem__(self, relation: str) -> frozenset[Row]:
        if relation not in self.catalog:
            raise SchemaError(f"unknown relation {relation!r}")
        return frozenset(self._data.get(relation, ()))

    def contains(self, relation: str, row: Iterable[object]) -> bool:
        return tuple(row) in self._data.get(relation, set())

    def relations(self) -> list[str]:
        return self.catalog.names()

    def size(self, relation: str | None = None) -> int:
        """Number of tuples in one relation, or in the whole instance."""
        if relation is not None:
            return len(self._data.get(relation, ()))
        return sum(len(rows) for rows in self._data.values())

    def non_empty_relations(self) -> list[str]:
        return [name for name, rows in self._data.items() if rows]

    def as_dict(self) -> Mapping[str, frozenset[Row]]:
        return {name: frozenset(rows) for name, rows in self._data.items()}

    def copy(self) -> "Instance":
        clone = Instance(self.catalog)
        for name, rows in self._data.items():
            clone._data[name] = set(rows)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{name}:{len(rows)}" for name, rows in sorted(self._data.items()) if rows
        )
        return f"<Instance {parts}>"
