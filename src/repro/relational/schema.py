"""Relation schemas: named attributes, types, and keys.

The paper's storage encoding (Section 4.1) identifies every tuple by the
key of its relation, so keys are first-class here: each
:class:`RelationSchema` declares which attributes form its primary key,
and :meth:`RelationSchema.key_of` projects a tuple onto that key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import SchemaError

#: Attribute types supported by the relational substrate.  These map
#: directly onto SQLite storage classes in :mod:`repro.storage`.
ATTRIBUTE_TYPES = ("int", "str", "float", "bool")


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a relation."""

    name: str
    type: str = "int"

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid attribute name: {self.name!r}")
        if self.type not in ATTRIBUTE_TYPES:
            raise SchemaError(
                f"invalid attribute type {self.type!r} for {self.name!r}; "
                f"expected one of {ATTRIBUTE_TYPES}"
            )


@dataclass(frozen=True)
class RelationSchema:
    """Schema of one relation: name, ordered attributes, and key.

    Parameters
    ----------
    name:
        Relation name (used in Datalog atoms, ProQL patterns, SQL tables).
    attributes:
        Ordered attributes.
    key:
        Names of the key attributes.  Defaults to *all* attributes
        (set semantics: the whole tuple identifies itself).
    """

    name: str
    attributes: tuple[Attribute, ...]
    key: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in {self.name}: {names}")
        if not self.key:
            object.__setattr__(self, "key", tuple(names))
        unknown = [k for k in self.key if k not in names]
        if unknown:
            raise SchemaError(f"key attributes {unknown} not in relation {self.name}")

    # -- accessors ---------------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def position_of(self, attribute: str) -> int:
        """Index of *attribute* in the schema, or raise SchemaError."""
        try:
            return self.attribute_names.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation {self.name} has no attribute {attribute!r}"
            ) from None

    @property
    def key_positions(self) -> tuple[int, ...]:
        return tuple(self.position_of(k) for k in self.key)

    def key_of(self, values: Sequence[object]) -> tuple[object, ...]:
        """Project a tuple of attribute values onto the key."""
        if len(values) != self.arity:
            raise SchemaError(
                f"tuple arity {len(values)} != schema arity {self.arity} "
                f"for relation {self.name}"
            )
        return tuple(values[i] for i in self.key_positions)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def of(
        cls,
        name: str,
        attributes: Iterable[str | tuple[str, str] | Attribute],
        key: Iterable[str] | None = None,
    ) -> "RelationSchema":
        """Convenient constructor.

        ``attributes`` items may be plain names (typed ``int``),
        ``(name, type)`` pairs, or :class:`Attribute` instances.

        >>> RelationSchema.of("A", ["id", ("name", "str")], key=["id"]).arity
        2
        """
        attrs = []
        for item in attributes:
            if isinstance(item, Attribute):
                attrs.append(item)
            elif isinstance(item, tuple):
                attrs.append(Attribute(*item))
            else:
                attrs.append(Attribute(item))
        return cls(name, tuple(attrs), tuple(key) if key is not None else ())

    def local_contribution(self) -> "RelationSchema":
        """Schema of this relation's local-contribution table ``<name>_l``.

        The paper (Example 2.1) names these ``Al, Cl, Nl, Ol``; we use an
        ``_l`` suffix to keep names unambiguous for multi-letter relations.
        """
        return RelationSchema(local_name(self.name), self.attributes, self.key)


def local_name(relation_name: str) -> str:
    """Name of the local-contribution table for *relation_name*."""
    return f"{relation_name}_l"


def is_local_name(relation_name: str) -> bool:
    """True iff *relation_name* denotes a local-contribution table."""
    return relation_name.endswith("_l")


def public_name(relation_name: str) -> str:
    """Inverse of :func:`local_name` (identity for non-local names)."""
    if is_local_name(relation_name):
        return relation_name[: -len("_l")]
    return relation_name
