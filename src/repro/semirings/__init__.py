"""Semiring provenance framework (Section 2.1, Table 1)."""

from repro.semirings.base import MappingFunction, Semiring
from repro.semirings.events import (
    BOTTOM,
    EventDNF,
    LineageSemiring,
    ProbabilitySemiring,
    event,
)
from repro.semirings.polynomial import Polynomial, PolynomialSemiring
from repro.semirings.registry import get_semiring, known_semirings, register
from repro.semirings.standard import (
    BooleanSemiring,
    ConfidentialitySemiring,
    CountingSemiring,
    TrustSemiring,
    WeightSemiring,
)

__all__ = [
    "BOTTOM",
    "BooleanSemiring",
    "ConfidentialitySemiring",
    "CountingSemiring",
    "EventDNF",
    "LineageSemiring",
    "MappingFunction",
    "Polynomial",
    "PolynomialSemiring",
    "ProbabilitySemiring",
    "Semiring",
    "TrustSemiring",
    "WeightSemiring",
    "event",
    "get_semiring",
    "known_semirings",
    "register",
]
