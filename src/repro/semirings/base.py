"""Commutative semiring abstraction (Section 2.1, Table 1).

A semiring supplies a domain of annotation values, an abstract sum
``⊕`` (combining *alternative* derivations — union), an abstract
product ``⊗`` (combining *joined* sources), and their identities
``zero``/``one``.  Provenance graphs are evaluated bottom-up under a
chosen semiring to turn base-tuple annotations into annotations for
every derived tuple.

Two structural properties matter for cyclic provenance (Section 2.1):
``idempotent_plus`` (``a ⊕ a = a``) and ``absorptive``
(``a ⊕ (a ⊗ b) = a``).  Semirings with both are guaranteed to reach a
fixpoint on cyclic graphs; the number-of-derivations semiring has
neither and may diverge, which the annotator detects.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import reduce
from typing import Any, Callable, Iterable

from repro.errors import SemiringError

#: A unary function on semiring values, used for per-mapping functions
#: (e.g. the paper's neutral Nm and distrust Dm).  Must satisfy
#: f(zero) = zero and commute with (finite) sums.
MappingFunction = Callable[[Any], Any]


class Semiring(ABC):
    """Abstract commutative semiring over annotation values."""

    #: Canonical name used in ProQL's ``EVALUATE <name> OF`` clause.
    name: str = "abstract"
    #: a ⊕ a = a
    idempotent_plus: bool = False
    #: a ⊕ (a ⊗ b) = a
    absorptive: bool = False

    @property
    @abstractmethod
    def zero(self) -> Any:
        """Identity of ⊕; annotation of underivable/absent tuples."""

    @property
    @abstractmethod
    def one(self) -> Any:
        """Identity of ⊗; the default annotation for leaf nodes."""

    @abstractmethod
    def plus(self, left: Any, right: Any) -> Any:
        """Abstract sum: combine alternative derivations."""

    @abstractmethod
    def times(self, left: Any, right: Any) -> Any:
        """Abstract product: combine joined sources."""

    def validate(self, value: Any) -> Any:
        """Check (and possibly normalize) an externally supplied value.

        Subclasses override to reject values outside their domain.
        Returns the normalized value.
        """
        return value

    # -- n-ary conveniences --------------------------------------------------

    def sum(self, values: Iterable[Any]) -> Any:
        return reduce(self.plus, values, self.zero)

    def product(self, values: Iterable[Any]) -> Any:
        return reduce(self.times, values, self.one)

    def is_zero(self, value: Any) -> bool:
        return value == self.zero

    #: Overrides the idempotent+absorptive criterion when convergence is
    #: guaranteed another way (e.g. lineage: a bounded join-semilattice).
    cycle_safe_override: bool | None = None

    @property
    def cycle_safe(self) -> bool:
        """True iff fixpoint annotation of cyclic graphs converges."""
        if self.cycle_safe_override is not None:
            return self.cycle_safe_override
        return self.idempotent_plus and self.absorptive

    def default_leaf(self, node: Any) -> Any:
        """Table 1's *base value* for a leaf node with no explicit
        assignment.

        Most semirings use ``one`` (true / weight 0 / count 1 ...);
        LINEAGE and PROBABILITY override this to the node's own
        identity ("tuple id" / "tuple probabilistic event"), which is
        what makes their annotations informative without an ASSIGNING
        clause.
        """
        return self.one

    def identity_function(self) -> MappingFunction:
        """The neutral mapping function Nm (returns input unchanged)."""
        return lambda value: value

    def constant_function(self, constant: Any) -> MappingFunction:
        """A mapping function returning *constant* on every non-zero
        input (and zero on zero, as the paper requires: one cannot
        specify an assignment returning non-zero on zero input)."""
        constant = self.validate(constant)

        def apply(value: Any) -> Any:
            return self.zero if self.is_zero(value) else constant

        return apply

    def check_mapping_function(self, function: MappingFunction) -> None:
        """Sanity-check the f(0) = 0 restriction of Section 3.2.2."""
        if not self.is_zero(function(self.zero)):
            raise SemiringError(
                f"mapping function violates f(0) = 0 in semiring {self.name}"
            )

    def __repr__(self) -> str:
        return f"<Semiring {self.name}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Semiring) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)
