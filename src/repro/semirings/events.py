"""Set-valued semirings of Table 1: lineage and probabilistic events.

*Lineage* (row 5) is the set of all base tuples contributing to some
derivation — both operations are set union, but the ⊕-identity must be
a distinguished bottom element (the union-identity ``∅`` is the
⊗-identity instead), so we use an explicit :data:`BOTTOM` sentinel.

*Probability* (row 6) annotates tuples with *event expressions*:
positive Boolean formulas over base-tuple events, kept in a canonical
absorption-minimized DNF.  Computing actual probabilities is
#P-complete in general (footnote 2 of the paper); we provide exact
inclusion–exclusion for small expressions and a seeded Monte-Carlo
estimator for larger ones.
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Iterable, Mapping

from repro.errors import SemiringError
from repro.semirings.base import Semiring


class _Bottom:
    """Unique ⊕-identity for the lineage semiring."""

    _instance: "_Bottom | None" = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"


BOTTOM = _Bottom()


class LineageSemiring(Semiring):
    """(P(X) ∪ {⊥}, ∪, ∪, ⊥, ∅) — which-provenance (use case Q6).

    Values are frozensets of base-tuple identifiers.  ⊥ absorbs in
    products (a join with an underivable tuple is underivable) and is
    the identity of sums.
    """

    name = "LINEAGE"
    idempotent_plus = True
    #: Union grows under products, so a ⊕ (a ⊗ b) = a ∪ b ≠ a in
    #: general — lineage is *not* absorptive.  Cyclic evaluation still
    #: converges because values live in a bounded join-semilattice
    #: (subsets of the finite leaf set) and both operations are
    #: monotone, hence the explicit override.
    absorptive = False
    cycle_safe_override = True

    @property
    def zero(self) -> Any:
        return BOTTOM

    @property
    def one(self) -> frozenset:
        return frozenset()

    def plus(self, left: Any, right: Any) -> Any:
        if left is BOTTOM:
            return right
        if right is BOTTOM:
            return left
        return left | right

    def times(self, left: Any, right: Any) -> Any:
        if left is BOTTOM or right is BOTTOM:
            return BOTTOM
        return left | right

    def validate(self, value: Any) -> Any:
        if value is BOTTOM:
            return value
        if isinstance(value, (set, frozenset)):
            return frozenset(value)
        # A bare identifier is promoted to a singleton lineage set.
        if isinstance(value, (str, int, tuple)):
            return frozenset([value])
        raise SemiringError(f"{self.name} expects a set or id, got {value!r}")

    def default_leaf(self, node: Any) -> Any:
        """Table 1: the base value of a leaf is its own tuple id."""
        return frozenset([node])


#: A positive-DNF event expression: a frozenset of clauses, each clause
#: a frozenset of base event identifiers (conjunction of events).
EventDNF = frozenset


def _absorb(clauses: Iterable[frozenset]) -> EventDNF:
    """Drop clauses that are supersets of other clauses (absorption)."""
    unique = sorted(set(clauses), key=len)
    kept: list[frozenset] = []
    for clause in unique:
        if not any(k <= clause for k in kept):
            kept.append(clause)
    return frozenset(kept)


def event(identifier: object) -> EventDNF:
    """The atomic event expression for one base tuple."""
    return frozenset([frozenset([identifier])])


class ProbabilitySemiring(Semiring):
    """Positive event expressions in absorption-minimized DNF.

    ⊗ is event intersection (AND), ⊕ is event union (OR); ``zero`` is
    the impossible event (empty DNF), ``one`` the certain event (the
    DNF holding the empty clause).  Idempotent and absorptive, hence
    cycle-safe.
    """

    name = "PROBABILITY"
    idempotent_plus = True
    absorptive = True

    @property
    def zero(self) -> EventDNF:
        return frozenset()

    @property
    def one(self) -> EventDNF:
        return frozenset([frozenset()])

    def plus(self, left: EventDNF, right: EventDNF) -> EventDNF:
        return _absorb(itertools.chain(left, right))

    def times(self, left: EventDNF, right: EventDNF) -> EventDNF:
        return _absorb(a | b for a in left for b in right)

    def validate(self, value: Any) -> EventDNF:
        if isinstance(value, frozenset) and all(
            isinstance(c, frozenset) for c in value
        ):
            return _absorb(value)
        if isinstance(value, (str, int, tuple)):
            return event(value)
        raise SemiringError(
            f"{self.name} expects an event DNF or atomic event id, got {value!r}"
        )

    def default_leaf(self, node: Any) -> EventDNF:
        """Table 1: the base value of a leaf is its own atomic event."""
        return event(node)

    # -- probability computation ------------------------------------------------

    @staticmethod
    def probability(
        expression: EventDNF,
        probabilities: Mapping[object, float],
        exact_limit: int = 16,
        samples: int = 20000,
        seed: int = 0,
    ) -> float:
        """P[expression] under independent base events.

        Uses exact inclusion–exclusion when the DNF has at most
        ``exact_limit`` clauses, otherwise a seeded Monte-Carlo
        estimate with ``samples`` draws.
        """
        clauses = list(expression)
        if not clauses:
            return 0.0
        if any(len(c) == 0 for c in clauses):
            return 1.0
        for clause in clauses:
            for base_event in clause:
                if base_event not in probabilities:
                    raise SemiringError(f"no probability for event {base_event!r}")
        if len(clauses) <= exact_limit:
            return ProbabilitySemiring._inclusion_exclusion(clauses, probabilities)
        return ProbabilitySemiring._monte_carlo(clauses, probabilities, samples, seed)

    @staticmethod
    def _inclusion_exclusion(
        clauses: list[frozenset], probabilities: Mapping[object, float]
    ) -> float:
        total = 0.0
        for size in range(1, len(clauses) + 1):
            sign = 1.0 if size % 2 == 1 else -1.0
            for subset in itertools.combinations(clauses, size):
                union: set = set()
                for clause in subset:
                    union |= clause
                term = 1.0
                for base_event in union:
                    term *= probabilities[base_event]
                total += sign * term
        return min(max(total, 0.0), 1.0)

    @staticmethod
    def _monte_carlo(
        clauses: list[frozenset],
        probabilities: Mapping[object, float],
        samples: int,
        seed: int,
    ) -> float:
        rng = random.Random(seed)
        events = sorted({e for clause in clauses for e in clause}, key=repr)
        hits = 0
        for _ in range(samples):
            world = {e for e in events if rng.random() < probabilities[e]}
            if any(clause <= world for clause in clauses):
                hits += 1
        return hits / samples
