"""Free provenance polynomials ℕ[X] (Green–Karvounarakis–Tannen).

The provenance graph of Figure 1 "encodes a (possibly recursively
defined) set of provenance polynomials in a provenance semiring"
(Section 2.1).  :class:`Polynomial` makes this encoding explicit:
a multivariate polynomial with natural coefficients over base-tuple
indeterminates.  Its universal property — evaluating the polynomial
homomorphically in any commutative semiring equals annotating the
graph directly in that semiring — is the key correctness invariant of
the whole system, and our property-based tests exercise it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import SemiringError
from repro.semirings.base import Semiring

#: A monomial: sorted tuple of (indeterminate, exponent) pairs.
Monomial = tuple[tuple[object, int], ...]


def _merge_monomials(left: Monomial, right: Monomial) -> Monomial:
    powers: dict[object, int] = {}
    for var, exp in left + right:
        powers[var] = powers.get(var, 0) + exp
    return tuple(sorted(powers.items(), key=lambda item: repr(item[0])))


@dataclass(frozen=True)
class Polynomial:
    """Immutable ℕ[X] polynomial: monomial → coefficient."""

    terms: tuple[tuple[Monomial, int], ...] = ()

    @staticmethod
    def _normalize(terms: Mapping[Monomial, int]) -> "Polynomial":
        cleaned = tuple(
            sorted(
                ((m, c) for m, c in terms.items() if c != 0),
                key=lambda item: repr(item[0]),
            )
        )
        return Polynomial(cleaned)

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def zero() -> "Polynomial":
        return Polynomial()

    @staticmethod
    def one() -> "Polynomial":
        return Polynomial((((), 1),))

    @staticmethod
    def variable(name: object) -> "Polynomial":
        return Polynomial(((((name, 1),), 1),))

    @staticmethod
    def constant(value: int) -> "Polynomial":
        if value < 0:
            raise SemiringError("ℕ[X] has natural coefficients only")
        return Polynomial() if value == 0 else Polynomial((((), value),))

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        terms = dict(self.terms)
        for monomial, coeff in other.terms:
            terms[monomial] = terms.get(monomial, 0) + coeff
        return Polynomial._normalize(terms)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        terms: dict[Monomial, int] = {}
        for m1, c1 in self.terms:
            for m2, c2 in other.terms:
                merged = _merge_monomials(m1, m2)
                terms[merged] = terms.get(merged, 0) + c1 * c2
        return Polynomial._normalize(terms)

    # -- inspection ------------------------------------------------------------

    def is_zero(self) -> bool:
        return not self.terms

    def variables(self) -> set[object]:
        return {var for monomial, _ in self.terms for var, _ in monomial}

    def degree(self) -> int:
        if not self.terms:
            return 0
        return max(
            (sum(exp for _, exp in monomial) for monomial, _ in self.terms),
            default=0,
        )

    def monomial_count(self) -> int:
        return len(self.terms)

    # -- the universal property ------------------------------------------------

    def evaluate(
        self,
        semiring: Semiring,
        assignment: Callable[[object], Any] | Mapping[object, Any],
    ) -> Any:
        """Evaluate homomorphically in *semiring* under *assignment*.

        ``assignment`` maps each indeterminate (base-tuple id) to a
        semiring value.  Coefficients ``c`` become ``1 ⊕ ... ⊕ 1`` and
        exponents ``e`` become ``x ⊗ ... ⊗ x``, as the freeness of
        ℕ[X] dictates.
        """
        if isinstance(assignment, Mapping):
            mapping = assignment
            lookup: Callable[[object], Any] = lambda var: mapping[var]
        else:
            lookup = assignment
        total = semiring.zero
        for monomial, coeff in self.terms:
            value = semiring.one
            for var, exp in monomial:
                base = semiring.validate(lookup(var))
                for _ in range(exp):
                    value = semiring.times(value, base)
            summed = semiring.zero
            for _ in range(coeff):
                summed = semiring.plus(summed, value)
            total = semiring.plus(total, summed)
        return total

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for monomial, coeff in self.terms:
            factors = [
                (str(var) if exp == 1 else f"{var}^{exp}") for var, exp in monomial
            ]
            body = "·".join(factors)
            if not body:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append(body)
            else:
                parts.append(f"{coeff}·{body}")
        return " + ".join(parts)


class PolynomialSemiring(Semiring):
    """ℕ[X] itself as a semiring — the most general how-provenance."""

    name = "POLYNOMIAL"
    idempotent_plus = False
    absorptive = False

    @property
    def zero(self) -> Polynomial:
        return Polynomial.zero()

    @property
    def one(self) -> Polynomial:
        return Polynomial.one()

    def plus(self, left: Polynomial, right: Polynomial) -> Polynomial:
        return left + right

    def times(self, left: Polynomial, right: Polynomial) -> Polynomial:
        return left * right

    def validate(self, value: Any) -> Polynomial:
        if isinstance(value, Polynomial):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return Polynomial.constant(value)
        if isinstance(value, (str, tuple)):
            return Polynomial.variable(value)
        raise SemiringError(f"{self.name} expects a polynomial, got {value!r}")
