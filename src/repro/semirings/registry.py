"""Name-based semiring registry backing ``EVALUATE <name> OF``.

The built-in names mirror Table 1 and Section 3.2.2 (Q5–Q10):
``DERIVABILITY``, ``TRUST``, ``CONFIDENTIALITY``, ``WEIGHT``,
``LINEAGE``, ``PROBABILITY``, ``COUNT``, plus ``POLYNOMIAL`` for raw
how-provenance.  "Future implementers of ProQL may wish to add
additional semirings" — :func:`register` supports exactly that.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SemiringError
from repro.semirings.base import Semiring
from repro.semirings.events import LineageSemiring, ProbabilitySemiring
from repro.semirings.polynomial import PolynomialSemiring
from repro.semirings.standard import (
    BooleanSemiring,
    ConfidentialitySemiring,
    CountingSemiring,
    TrustSemiring,
    WeightSemiring,
)

_FACTORIES: dict[str, Callable[[], Semiring]] = {}


def register(name: str, factory: Callable[[], Semiring]) -> None:
    """Register a semiring factory under *name* (case-insensitive)."""
    _FACTORIES[name.upper()] = factory


def get_semiring(name: str) -> Semiring:
    """Instantiate the semiring registered under *name*.

    >>> get_semiring("derivability").name
    'DERIVABILITY'
    """
    try:
        factory = _FACTORIES[name.upper()]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise SemiringError(f"unknown semiring {name!r}; known: {known}") from None
    return factory()


def known_semirings() -> list[str]:
    return sorted(_FACTORIES)


register("DERIVABILITY", BooleanSemiring)
register("TRUST", TrustSemiring)
register("CONFIDENTIALITY", ConfidentialitySemiring)
register("WEIGHT", WeightSemiring)
register("COST", WeightSemiring)  # paper names the row "weight/cost"
register("LINEAGE", LineageSemiring)
register("PROBABILITY", ProbabilitySemiring)
register("COUNT", CountingSemiring)
register("DERIVATIONS", CountingSemiring)  # "number of derivations"
register("POLYNOMIAL", PolynomialSemiring)
