"""Scalar semirings of Table 1: derivability, trust, confidentiality,
weight/cost, and number-of-derivations."""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.errors import SemiringError
from repro.semirings.base import Semiring


class BooleanSemiring(Semiring):
    """(bool, OR, AND, False, True).

    Covers both the *derivability* use case (all base tuples annotated
    ``True``) and the *trust* use case (base tuples annotated by trust
    condition, mappings optionally distrusting — Table 1 rows 1–2).
    """

    name = "DERIVABILITY"
    idempotent_plus = True
    absorptive = True

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def plus(self, left: bool, right: bool) -> bool:
        return left or right

    def times(self, left: bool, right: bool) -> bool:
        return left and right

    def validate(self, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if value in (0, 1):
            return bool(value)
        raise SemiringError(f"{self.name} expects a boolean, got {value!r}")


class TrustSemiring(BooleanSemiring):
    """Same algebra as derivability; distinct name for ProQL's
    ``EVALUATE TRUST OF`` and the distrust mapping function Dm."""

    name = "TRUST"

    def distrust_function(self):
        """The paper's Dm: returns false on all inputs."""
        return self.constant_function(False)


class ConfidentialitySemiring(Semiring):
    """Ordered confidentiality/access-control levels (Table 1 row 3).

    ``levels`` are ordered from *least* to *most* secure.  The product
    is ``more_secure`` (a join of sources requires the strictest level
    of any input — use case Q10) and the sum is ``less_secure`` (an
    alternative derivation may lower the requirement).

    ``one`` is the least secure level (joining with public data changes
    nothing); ``zero`` is a synthetic top element stricter than every
    real level (an underivable tuple is visible to no one).
    """

    name = "CONFIDENTIALITY"
    idempotent_plus = True
    absorptive = True

    DEFAULT_LEVELS = ("P", "C", "S", "TS")  # public .. top-secret

    def __init__(self, levels: Sequence[str] = DEFAULT_LEVELS):
        if not levels or len(set(levels)) != len(levels):
            raise SemiringError("confidentiality levels must be distinct, non-empty")
        self.levels = tuple(levels)
        self._rank = {level: i for i, level in enumerate(self.levels)}
        self._top = "__NOACCESS__"
        self._rank[self._top] = len(self.levels)

    @property
    def zero(self) -> str:
        return self._top

    @property
    def one(self) -> str:
        return self.levels[0]

    def plus(self, left: str, right: str) -> str:
        """less_secure(left, right)."""
        return left if self._rank[left] <= self._rank[right] else right

    def times(self, left: str, right: str) -> str:
        """more_secure(left, right)."""
        return left if self._rank[left] >= self._rank[right] else right

    def validate(self, value: Any) -> str:
        if value in self._rank:
            return value
        raise SemiringError(
            f"unknown confidentiality level {value!r}; expected one of {self.levels}"
        )


class WeightSemiring(Semiring):
    """The tropical min/plus semiring (Table 1 row 4).

    Joined sources *add* their weights; alternative derivations keep
    the *minimum*.  Used for ranked/keyword-search scoring (Q8).
    Absorptive only over non-negative weights, which :meth:`validate`
    enforces, so cyclic evaluation is safe.
    """

    name = "WEIGHT"
    idempotent_plus = True
    absorptive = True

    @property
    def zero(self) -> float:
        return math.inf

    @property
    def one(self) -> float:
        return 0.0

    def plus(self, left: float, right: float) -> float:
        return min(left, right)

    def times(self, left: float, right: float) -> float:
        return left + right

    def validate(self, value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SemiringError(f"{self.name} expects a number, got {value!r}")
        if value < 0:
            raise SemiringError(
                f"{self.name} requires non-negative weights (got {value}) "
                "for absorption/cycle-safety"
            )
        return float(value)


class CountingSemiring(Semiring):
    """Natural numbers (ℕ, +, ×, 0, 1): number of derivations
    (Table 1 row 7, the bag relational model).

    Neither idempotent nor absorptive — annotation of cyclic graphs may
    diverge (infinite counts), which the annotator reports.
    """

    name = "COUNT"
    idempotent_plus = False
    absorptive = False

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def plus(self, left: int, right: int) -> int:
        return left + right

    def times(self, left: int, right: int) -> int:
        return left * right

    def validate(self, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SemiringError(f"{self.name} expects an integer, got {value!r}")
        if value < 0:
            raise SemiringError(f"{self.name} expects a natural number, got {value}")
        return value
