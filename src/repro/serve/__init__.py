"""Concurrent serving tier: one writer, many read-only snapshots.

The resident-mode store (``CDSS.exchange(resident=True)`` on an
on-disk path) is WAL-journaled and carries a persisted reachability
index, so any number of *read-only* connections can answer provenance
queries while the single writer keeps exchanging.  This package is
that read side plus the writer-facing discipline:

* :class:`ReaderSession` / :class:`ReaderPool` — ``mode=ro`` snapshot
  connections answering ``lineage`` / ``derivability`` / ``trusted``
  at the epoch they observe (stale index → bounded retry, never a
  wrong answer);
* :class:`StoreServer` — a thread-based dispatcher handing out
  futures over a pool;
* :class:`BackoffPolicy` / :func:`run_with_retry` /
  :func:`checkpoint_with_retry` — SQLITE_BUSY and stale-snapshot
  retry, and the writer's checkpoint discipline;
* :class:`StepGate` (``repro.serve.testing``) — the deterministic
  interleaving harness the concurrency tests are built on.

See docs/serving.md for the protocol and its soundness argument.
"""

from repro.errors import ServeError, ServeUnavailable, StaleSnapshotError
from repro.serve.reader import (
    ReaderPool,
    ReaderSession,
    ReadStats,
    SnapshotState,
)
from repro.serve.retry import (
    BackoffPolicy,
    checkpoint_with_retry,
    is_busy_error,
    run_with_retry,
)
from repro.serve.server import StoreServer
from repro.serve.testing import StepGate

__all__ = [
    "BackoffPolicy",
    "ReadStats",
    "ReaderPool",
    "ReaderSession",
    "ServeError",
    "ServeUnavailable",
    "SnapshotState",
    "StaleSnapshotError",
    "StepGate",
    "StoreServer",
    "checkpoint_with_retry",
    "is_busy_error",
    "run_with_retry",
]
