"""Read-only serving sessions over a resident store file.

A :class:`ReaderSession` opens its *own* SQLite connection to the store
path with ``mode=ro`` + ``PRAGMA query_only`` — it shares nothing with
the writer but the WAL file — and answers ``lineage`` /
``derivability`` / ``trusted`` from the persisted reachability index
(PR 9's ``__ridx_*`` tables) at the epoch its snapshot observes.

The consistency protocol (docs/serving.md spells out why it is sound):

1. ``BEGIN`` — the first read pins a WAL snapshot for the whole query.
2. Read ``index_state`` / ``index_epoch`` / ``dirty_run`` from
   ``__meta`` *inside* the snapshot.  Every writer commit that mutates
   relation content either bumps the epoch in the same transaction or
   happens while the state is ``stale``/dirty, so a snapshot showing
   ``current`` + clean is index-consistent at its epoch.
3. Not servable → release, back off, retry (bounded); the session
   *never* extrapolates — a reader answer is always exactly right for
   the epoch it reports.
4. Epoch drift → drop the per-epoch caches and rebuild them under the
   new snapshot.
5. Answer, then ``ROLLBACK`` so the snapshot never outlives the query
   (a held snapshot is what makes writer checkpoints report busy).

Read-only connections cannot create TEMP tables, so the queries here
are pure SELECTs (shapes shared with the writer via
:mod:`repro.exchange.reach_index`) plus Python-side fixpoints.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Sequence
from urllib.parse import quote

from repro.errors import (
    ServeError,
    ServeUnavailable,
    StaleSnapshotError,
)
from repro.exchange.reach_index import (
    ANCESTOR_CTE_SQL,
    INTERVAL_PROBE_SQL,
    INTERVAL_WINDOW_SQL,
    REL_SHIFT,
    RESULT_CACHE_CAP,
    liveness_over_edges,
    load_edges,
    load_relnos,
)
from repro.exchange.sql_executor import normalize_store_path
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.provenance.graph import TupleNode
from repro.relational.instance import Catalog
from repro.relational.schema import is_local_name
from repro.serve.retry import BackoffPolicy, is_busy_error, run_with_retry
from repro.storage.encoding import ValueCodec, quote_identifier as _q

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cdss.trust import TrustPolicy

__all__ = [
    "ReadStats",
    "ReaderPool",
    "ReaderSession",
    "SnapshotState",
]

#: default retry budget for pinning a servable snapshot: ~40 attempts
#: with a 50 ms cap totals about two seconds of sleep — enough to ride
#: out an index rebuild on soak-sized stores.
DEFAULT_RETRY = BackoffPolicy(
    attempts=40, base_delay=0.001, multiplier=2.0, max_delay=0.05
)

#: rows fetched per chunked ``rowid IN (...)`` leaf lookup.
_LEAF_CHUNK = 256

#: sentinel cached for lineage probes on unknown/unstored nodes, so a
#: repeated miss is a cache hit that re-raises ``KeyError``.
_KEY_ERROR = object()

_META_SQL = (
    'SELECT key, value FROM "__meta" WHERE key IN '
    "('index_state', 'index_epoch', 'dirty_run', "
    "'index_enc_epoch', 'index_tree_exact')"
)


@dataclass(frozen=True)
class SnapshotState:
    """The ``__meta`` fields a pinned snapshot observed."""

    state: str
    epoch: int
    dirty: bool
    enc_epoch: int
    tree_exact: bool

    @property
    def servable(self) -> bool:
        """True iff the index is consistent at :attr:`epoch`."""
        return self.state == "current" and not self.dirty

    @property
    def interval_ready(self) -> bool:
        """True iff the interval encoding covers this epoch."""
        return self.tree_exact and self.enc_epoch == self.epoch


@dataclass(frozen=True)
class ReadStats:
    """Bookkeeping for the last query a session answered."""

    kind: str
    epoch: int
    cache_hit: bool
    retries: int
    wall_seconds: float
    #: ``"cache"``, ``"interval"``, ``"cte"``, ``"fixpoint"`` or
    #: ``"miss"`` (a lineage probe on an unknown/unstored node).
    path: str


class _EpochCache:
    """Everything a session memoizes for one observed epoch."""

    __slots__ = ("epoch", "results", "nodes", "edges", "refs")

    def __init__(self, epoch: int) -> None:
        self.epoch = epoch
        #: query key -> answer (FIFO-capped like the writer's cache).
        self.results: dict[object, object] = {}
        #: relation -> [(node id, TupleNode), ...]
        self.nodes: dict[str, list[tuple[int, TupleNode]]] = {}
        #: (fires, bodies) from the index edge tables, or None.
        self.edges: (
            tuple[dict[int, tuple[str, int]], dict[int, tuple[int, ...]]]
            | None
        ) = None
        #: strong refs keeping id()-keyed trust conditions alive.
        self.refs: list[object] = []


class ReaderSession:
    """One read-only connection serving index queries at its snapshot
    epoch.

    Sessions are cheap (the connection opens lazily) and single-user:
    share a store between threads with one session per thread or a
    :class:`ReaderPool`, never one session across threads concurrently.
    """

    def __init__(
        self,
        path: str,
        catalog: Catalog,
        *,
        retry: BackoffPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        on_pinned: Callable[[SnapshotState], None] | None = None,
    ) -> None:
        self.path = normalize_store_path(path)
        if self.path == ":memory:":
            raise ServeError(
                "reader sessions need an on-disk store path; an in-memory "
                "store is private to the writer's connection"
            )
        self.catalog = catalog
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        #: test hook: called with the observed state while the snapshot
        #: is still pinned (the deterministic harness parks readers
        #: here to schedule writer steps against a held snapshot).
        self.on_pinned = on_pinned
        self.last_read: ReadStats | None = None
        self.closed = False
        self._conn: sqlite3.Connection | None = None
        self._codec = ValueCodec()
        self._relnos: dict[str, int] = {}
        self._cache: _EpochCache | None = None
        self._prepared: dict[object, str] = {}
        self.prepared_hits = 0
        self.prepared_misses = 0

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ReaderSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def close(self) -> None:
        """Release the connection; the session cannot be reused."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        self.closed = True

    # -- connection / snapshot plumbing --------------------------------------

    def _open(self) -> sqlite3.Connection:
        uri = f"file:{quote(self.path, safe='/')}?mode=ro"
        conn = sqlite3.connect(
            uri,
            uri=True,
            timeout=0.5,
            isolation_level=None,
            check_same_thread=False,
            cached_statements=512,
        )
        conn.execute("PRAGMA query_only = ON")
        return conn

    def _connect(self) -> sqlite3.Connection:
        if self.closed:
            raise ServeError("reader session is closed")
        conn = self._conn
        if conn is None:

            def on_retry(attempt: int, error: BaseException) -> None:
                self.metrics.add("serve.busy_retries")

            conn = run_with_retry(
                self._open,
                self.retry,
                retryable=lambda e: isinstance(e, sqlite3.OperationalError),
                on_retry=on_retry,
            )
            self._conn = conn
        return conn

    @contextmanager
    def _pin(self) -> Iterator[sqlite3.Connection]:
        conn = self._connect()
        conn.execute("BEGIN")
        try:
            yield conn
        finally:
            conn.execute("ROLLBACK")

    def _read_state(self, conn: sqlite3.Connection) -> SnapshotState:
        try:
            meta = dict(conn.execute(_META_SQL))
        except sqlite3.OperationalError as error:
            if "no such table" in str(error):
                raise ServeError(
                    f"{self.path} is not a resident exchange store "
                    "(missing __meta table)"
                ) from error
            raise
        return SnapshotState(
            state=str(meta.get("index_state") or ""),
            epoch=int(meta.get("index_epoch") or 0),
            dirty=bool(int(meta.get("dirty_run") or 0)),
            enc_epoch=int(meta.get("index_enc_epoch") or -1),
            tree_exact=bool(int(meta.get("index_tree_exact") or 0)),
        )

    def _epoch_cache(self, state: SnapshotState) -> _EpochCache:
        cache = self._cache
        if cache is None or cache.epoch != state.epoch:
            if cache is not None:
                self.metrics.add("serve.snapshot_refreshes")
            cache = _EpochCache(state.epoch)
            self._cache = cache
            # New relations may have been registered since the last
            # epoch; re-read the relno map under the fresh snapshot.
            self._relnos = {}
        return cache

    def _prepared_sql(self, key: object, build: Callable[[], str]) -> str:
        sql = self._prepared.get(key)
        if sql is None:
            self.prepared_misses += 1
            sql = build()
            self._prepared[key] = sql
        else:
            self.prepared_hits += 1
        return sql

    # -- query driver --------------------------------------------------------

    def _answer(
        self,
        kind: str,
        key: object,
        compute: Callable[
            [sqlite3.Connection, SnapshotState, _EpochCache],
            tuple[object, str],
        ],
    ) -> object:
        """Pin a servable snapshot (with retry), serve *key* from the
        epoch cache or *compute*, and record :attr:`last_read`."""
        started = time.perf_counter()
        retries = 0

        def attempt() -> tuple[object, SnapshotState, bool, str]:
            with self._pin() as conn:
                state = self._read_state(conn)
                if self.on_pinned is not None:
                    self.on_pinned(state)
                if not state.servable:
                    raise StaleSnapshotError(
                        f"index {state.state or 'absent'!r}"
                        f"{' (dirty run)' if state.dirty else ''} "
                        f"at epoch {state.epoch}"
                    )
                cache = self._epoch_cache(state)
                if key in cache.results:
                    return cache.results[key], state, True, "cache"
                value, path = compute(conn, state, cache)
                if len(cache.results) >= RESULT_CACHE_CAP:
                    cache.results.pop(next(iter(cache.results)))
                cache.results[key] = value
                return value, state, False, path

        def on_retry(attempt_no: int, error: BaseException) -> None:
            nonlocal retries
            retries = attempt_no
            name = (
                "serve.busy_retries"
                if is_busy_error(error)
                else "serve.stale_retries"
            )
            self.metrics.add(name)

        try:
            value, state, hit, path = run_with_retry(
                attempt,
                self.retry,
                retryable=lambda e: (
                    isinstance(e, StaleSnapshotError) or is_busy_error(e)
                ),
                on_retry=on_retry,
            )
        except StaleSnapshotError as error:
            self.metrics.add("serve.unavailable")
            raise ServeUnavailable(
                f"no servable snapshot after {self.retry.attempts} "
                f"attempts: {error}"
            ) from error
        wall = time.perf_counter() - started
        self.metrics.add("serve.queries")
        if hit:
            self.metrics.add("serve.cache_hits")
        self.last_read = ReadStats(
            kind=kind,
            epoch=state.epoch,
            cache_hit=hit,
            retries=retries,
            wall_seconds=wall,
            path=path,
        )
        with self.tracer.span("serve.query") as span:
            span.set("kind", kind).set("epoch", state.epoch)
            span.set("cache_hit", hit).set("path", path)
        return value

    # -- shared read shapes --------------------------------------------------

    def _relno(self, conn: sqlite3.Connection, relation: str) -> int | None:
        if relation not in self._relnos:
            self._relnos = load_relnos(conn)
        return self._relnos.get(relation)

    def _covered(self, conn: sqlite3.Connection) -> list[str]:
        """Catalog relations the index numbers, in catalog order."""
        if not self._relnos:
            self._relnos = load_relnos(conn)
        return [
            name for name in self.catalog.names() if name in self._relnos
        ]

    def _nodes(
        self,
        conn: sqlite3.Connection,
        cache: _EpochCache,
        relation: str,
        relno: int,
    ) -> list[tuple[int, TupleNode]]:
        nodes = cache.nodes.get(relation)
        if nodes is None:
            base = relno * REL_SHIFT
            schema = self.catalog[relation]
            codec = self._codec
            sql = self._prepared_sql(
                ("nodes", relation),
                lambda: f"SELECT rowid, * FROM {_q(relation)}",
            )
            nodes = [
                (
                    base + rowid,
                    TupleNode(relation, codec.decode_row(raw, schema)),
                )
                for rowid, *raw in conn.execute(sql)
            ]
            cache.nodes[relation] = nodes
        return nodes

    def _edges(
        self, conn: sqlite3.Connection, cache: _EpochCache
    ) -> tuple[dict[int, tuple[str, int]], dict[int, tuple[int, ...]]]:
        if cache.edges is None:
            cache.edges = load_edges(conn)
        return cache.edges

    # -- lineage -------------------------------------------------------------

    def lineage(self, node: TupleNode) -> frozenset[TupleNode]:
        """Set of local base tuples *node* derives from (Q6), at the
        session's observed epoch.

        Raises :class:`KeyError` when *node* is not a stored tuple —
        the same contract as :meth:`repro.cdss.system.CDSS.lineage`.
        """
        key = ("lineage", node.relation, tuple(node.values))
        value = self._answer(
            "lineage",
            key,
            lambda conn, state, cache: self._lineage(
                conn, state, cache, node
            ),
        )
        if value is _KEY_ERROR:
            raise KeyError(node)
        if not isinstance(value, frozenset):  # pragma: no cover - invariant
            raise ServeError("lineage cache corrupted")
        return value

    def _lineage(
        self,
        conn: sqlite3.Connection,
        state: SnapshotState,
        cache: _EpochCache,
        node: TupleNode,
    ) -> tuple[object, str]:
        if node.relation not in self.catalog:
            return _KEY_ERROR, "miss"
        relno = self._relno(conn, node.relation)
        if relno is None:
            # Registration precedes every maintained epoch; a missing
            # relno with rows present means this snapshot predates the
            # index — not servable, retry.
            if self._stored_rowid(conn, node) is None:
                return _KEY_ERROR, "miss"
            raise StaleSnapshotError(
                f"{node.relation} not registered in the index"
            )
        rowid = self._stored_rowid(conn, node)
        if rowid is None:
            return _KEY_ERROR, "miss"
        qid = relno * REL_SHIFT + rowid
        if state.interval_ready:
            closure, path = self._interval_closure(conn, qid)
        else:
            closure, path = self._cte_closure(conn, qid)
        leaves: set[TupleNode] = set()
        for relation in self._covered(conn):
            if not is_local_name(relation):
                continue
            leaf_relno = self._relnos[relation]
            base = leaf_relno * REL_SHIFT
            rowids = [
                nid - base
                for nid in closure
                if base <= nid < base + REL_SHIFT
            ]
            if rowids:
                leaves.update(
                    self._leaf_nodes(conn, cache, relation, rowids)
                )
        return frozenset(leaves), path

    def _stored_rowid(
        self, conn: sqlite3.Connection, node: TupleNode
    ) -> int | None:
        schema = self.catalog[node.relation]
        encoded = self._codec.encode_row(tuple(node.values))
        sql = self._prepared_sql(
            ("rowid", node.relation),
            lambda: (
                f"SELECT rowid FROM {_q(node.relation)} WHERE "
                + " AND ".join(
                    f"{_q(c)} IS ?" for c in schema.attribute_names
                )
            ),
        )
        try:
            found = conn.execute(sql, encoded).fetchone()
        except sqlite3.OperationalError as error:
            if "no such table" in str(error):
                return None
            raise
        return None if found is None else int(found[0])

    def _interval_closure(
        self, conn: sqlite3.Connection, qid: int
    ) -> tuple[set[int], str]:
        row = conn.execute(INTERVAL_PROBE_SQL, (qid,)).fetchone()
        if row is None:
            # No info row: the node has no edges; closure is itself.
            return {qid}, "interval"
        (t,) = row
        ids = {
            int(i) for (i,) in conn.execute(INTERVAL_WINDOW_SQL, (t, t))
        }
        return ids, "interval"

    def _cte_closure(
        self, conn: sqlite3.Connection, qid: int
    ) -> tuple[set[int], str]:
        ids = {int(i) for (i,) in conn.execute(ANCESTOR_CTE_SQL, (qid,))}
        return ids, "cte"

    def _leaf_nodes(
        self,
        conn: sqlite3.Connection,
        cache: _EpochCache,
        relation: str,
        rowids: Sequence[int],
    ) -> list[TupleNode]:
        # If the whole relation is already decoded for this epoch, slice
        # it instead of re-querying.
        cached = cache.nodes.get(relation)
        if cached is not None:
            base = self._relnos[relation] * REL_SHIFT
            wanted = {base + rowid for rowid in rowids}
            return [node for nid, node in cached if nid in wanted]
        schema = self.catalog[relation]
        codec = self._codec
        out: list[TupleNode] = []
        for start in range(0, len(rowids), _LEAF_CHUNK):
            chunk = list(rowids[start:start + _LEAF_CHUNK])
            size = len(chunk)
            sql = self._prepared_sql(
                ("leaves", relation, size),
                lambda relation=relation, size=size: (
                    f"SELECT * FROM {_q(relation)} WHERE rowid IN "
                    f"({', '.join('?' for _ in range(size))})"
                ),
            )
            out.extend(
                TupleNode(relation, codec.decode_row(raw, schema))
                for raw in conn.execute(sql, chunk)
            )
        return out

    # -- derivability / trust ------------------------------------------------

    def derivability(self) -> dict[TupleNode, bool]:
        """Derivability annotation of every stored tuple (Q5) at the
        session's observed epoch."""
        value = self._answer(
            "derivability",
            ("derivability",),
            lambda conn, state, cache: (
                self._annotate(conn, cache, None),
                "fixpoint",
            ),
        )
        if not isinstance(value, dict):  # pragma: no cover - invariant
            raise ServeError("derivability cache corrupted")
        return dict(value)

    def trusted(self, policy: "TrustPolicy") -> dict[TupleNode, bool]:
        """Trust annotation of every stored tuple under *policy* (Q7)
        at the session's observed epoch."""
        distrusted = frozenset(policy.distrusted_mappings)
        conditions: list[tuple[str, object]] = []
        for relation in self.catalog.names():
            if not is_local_name(relation):
                continue
            condition = policy.condition_for(relation)
            if condition is not None:
                conditions.append((relation, condition))
        key = (
            "trusted",
            policy.default_trust,
            distrusted,
            tuple(
                (relation, id(condition))
                for relation, condition in sorted(
                    conditions, key=lambda item: item[0]
                )
            ),
        )

        def compute(
            conn: sqlite3.Connection,
            state: SnapshotState,
            cache: _EpochCache,
        ) -> tuple[object, str]:
            # The key holds id()s of the conditions; pin the objects so
            # a collected callable's id cannot alias a new one.
            cache.refs.extend(condition for _, condition in conditions)
            return self._annotate(conn, cache, policy), "fixpoint"

        value = self._answer("trusted", key, compute)
        if not isinstance(value, dict):  # pragma: no cover - invariant
            raise ServeError("trusted cache corrupted")
        return dict(value)

    def _annotate(
        self,
        conn: sqlite3.Connection,
        cache: _EpochCache,
        policy: "TrustPolicy | None",
    ) -> dict[TupleNode, bool]:
        covered = self._covered(conn)
        seeds: set[int] = set()
        for relation in covered:
            if not is_local_name(relation):
                continue
            relno = self._relnos[relation]
            base = relno * REL_SHIFT
            condition = (
                None if policy is None else policy.condition_for(relation)
            )
            if condition is None:
                if policy is not None and not policy.default_trust:
                    continue
                sql = self._prepared_sql(
                    ("seed", relation),
                    lambda relation=relation: (
                        f"SELECT rowid FROM {_q(relation)}"
                    ),
                )
                seeds.update(base + int(r) for (r,) in conn.execute(sql))
            else:
                seeds.update(
                    nid
                    for nid, node in self._nodes(conn, cache, relation, relno)
                    if condition(node.values)
                )
        fires, bodies = self._edges(conn, cache)
        distrusted: frozenset[str] = (
            frozenset() if policy is None
            else frozenset(policy.distrusted_mappings)
        )
        live = liveness_over_edges(fires, bodies, seeds, distrusted)
        values: dict[TupleNode, bool] = {}
        for relation in covered:
            relno = self._relnos[relation]
            for nid, node in self._nodes(conn, cache, relation, relno):
                values[node] = nid in live
        return values


class ReaderPool:
    """A bounded pool of :class:`ReaderSession` instances.

    Sessions are created lazily up to *size* and handed out one per
    :meth:`session` context; a checkout blocks (up to *timeout*
    seconds) when all sessions are busy.  All sessions share one
    metrics registry, whose counters are therefore approximate under
    concurrency (increments may race); exact assertions belong on
    single-threaded sessions.
    """

    def __init__(
        self,
        path: str,
        catalog: Catalog,
        *,
        size: int = 4,
        retry: BackoffPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        timeout: float = 30.0,
    ) -> None:
        if size < 1:
            raise ServeError("reader pool needs at least one session")
        self.path = normalize_store_path(path)
        self.catalog = catalog
        self.size = size
        self.retry = retry
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.timeout = timeout
        self.closed = False
        self._lock = threading.Condition()
        self._idle: list[ReaderSession] = []
        self._created = 0

    def __enter__(self) -> "ReaderPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _checkout(self) -> ReaderSession:
        with self._lock:
            deadline = time.monotonic() + self.timeout
            while True:
                if self.closed:
                    raise ServeError("reader pool is closed")
                if self._idle:
                    return self._idle.pop()
                if self._created < self.size:
                    self._created += 1
                    return ReaderSession(
                        self.path,
                        self.catalog,
                        retry=self.retry,
                        metrics=self.metrics,
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServeUnavailable(
                        f"no reader session free within {self.timeout:g}s "
                        f"(pool size {self.size})"
                    )
                self._lock.wait(remaining)

    def _checkin(self, session: ReaderSession) -> None:
        with self._lock:
            if self.closed:
                session.close()
                self._created -= 1
            else:
                self._idle.append(session)
            self._lock.notify()

    @contextmanager
    def session(self) -> Iterator[ReaderSession]:
        """Check a session out for the duration of the ``with`` block."""
        session = self._checkout()
        try:
            yield session
        finally:
            self._checkin(session)

    def close(self) -> None:
        """Close idle sessions and refuse further checkouts.

        Sessions currently checked out are closed as they come back.
        """
        with self._lock:
            self.closed = True
            for session in self._idle:
                session.close()
                self._created -= 1
            self._idle.clear()
            self._lock.notify_all()
