"""Bounded exponential-backoff retry for the serving tier.

Two things go transiently wrong while a writer and many readers share a
resident store file:

* a reader pins a snapshot whose reachability index is mid-maintenance
  (``index_state != 'current'`` or a dirty run is in flight) — raised as
  :class:`repro.errors.StaleSnapshotError`;
* SQLite reports ``SQLITE_BUSY``/``SQLITE_LOCKED`` while opening the
  read-only connection (shm init races) or while the writer checkpoints
  against a pinned reader snapshot.

Both are *retry-then-succeed* conditions, never correctness hazards: the
policy here sleeps an exponentially growing, capped delay between
bounded attempts and re-raises (readers wrap the terminal stale case in
:class:`repro.errors.ServeUnavailable`) once the budget is exhausted.
"""

from __future__ import annotations

import sqlite3
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, TypeVar

from repro.errors import ServeError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exchange.sql_executor import ExchangeStore

T = TypeVar("T")

#: substrings of sqlite3.OperationalError messages that mean
#: SQLITE_BUSY / SQLITE_LOCKED (the dbapi does not expose result codes
#: on all supported Python versions).
_BUSY_MARKERS = ("database is locked", "database table is locked")


def is_busy_error(error: BaseException) -> bool:
    """True iff *error* is SQLite's BUSY/LOCKED contention signal."""
    return isinstance(error, sqlite3.OperationalError) and any(
        marker in str(error) for marker in _BUSY_MARKERS
    )


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff: ``attempts`` tries separated by
    ``base_delay * multiplier**i`` seconds, capped at ``max_delay``.

    The defaults budget roughly half a second of total sleep — enough
    to ride out an index maintenance pass on soak-sized stores while
    keeping a hard bound on reader latency.  Callers that must survive
    full exchanges pick more attempts with a finer cap.
    """

    attempts: int = 10
    base_delay: float = 0.002
    multiplier: float = 2.0
    max_delay: float = 0.1

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ServeError("BackoffPolicy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0 or self.multiplier <= 0:
            raise ServeError("BackoffPolicy delays must be non-negative")

    def delays(self) -> Iterator[float]:
        """The sleep before each retry (``attempts - 1`` values)."""
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            yield min(delay, self.max_delay)
            delay *= self.multiplier


def run_with_retry(
    operation: Callable[[], T],
    policy: BackoffPolicy,
    *,
    retryable: Callable[[BaseException], bool],
    on_retry: Callable[[int, BaseException], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Run *operation* under *policy*, retrying errors *retryable* accepts.

    Non-retryable errors propagate immediately; the last attempt's error
    propagates unchanged when the budget runs out.  ``on_retry(attempt,
    error)`` fires before each backoff sleep (attempt numbers start at
    1), which is where the serving tier counts its retry metrics.
    """
    for attempt, delay in enumerate(policy.delays(), start=1):
        try:
            return operation()
        except Exception as error:
            if not retryable(error):
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            sleep(delay)
    return operation()


#: default writer checkpoint budget: short, fine-grained waits — a
#: reader snapshot only spans one query, so the window reopens fast.
CHECKPOINT_RETRY = BackoffPolicy(
    attempts=8, base_delay=0.005, multiplier=2.0, max_delay=0.05
)


def checkpoint_with_retry(
    store: "ExchangeStore",
    mode: str = "TRUNCATE",
    *,
    policy: BackoffPolicy = CHECKPOINT_RETRY,
    metrics: MetricsRegistry | None = None,
    tracer: "Tracer | NullTracer" = NULL_TRACER,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[int, int, int]:
    """Writer-side checkpoint discipline: retry while readers pin the WAL.

    ``PRAGMA wal_checkpoint`` never raises on reader contention — it
    reports ``busy`` in its result row — so this wraps
    :meth:`ExchangeStore.checkpoint` in the same bounded backoff and
    returns the *last* result.  A still-busy final result is not an
    error: PASSIVE progress was made and the caller retries at its next
    quiescent point (readers release their snapshot after every query,
    so starvation needs a permanently-pinned reader, which the serving
    tier never creates).
    """
    if metrics is not None:
        metrics.add("serve.checkpoints")
    attempts = 0
    result = store.checkpoint(mode)
    for delay in policy.delays():
        if result[0] == 0:
            break
        attempts += 1
        if metrics is not None:
            metrics.add("serve.checkpoint_retries")
        sleep(delay)
        result = store.checkpoint(mode)
    with tracer.span("serve.checkpoint") as span:
        span.set("mode", mode).set("busy", result[0])
        span.set("retries", attempts)
    return result
