"""A thread-based query server over a :class:`ReaderPool`.

:class:`StoreServer` is the convenience front end of the serving tier:
clients submit ``lineage`` / ``derivability`` / ``trusted`` requests
and get :class:`concurrent.futures.Future` handles back; a worker
thread checks a session out of the pool, answers at whatever epoch its
snapshot observes, and checks it back in.  Concurrency is bounded by
``min(workers, pool.size)`` — the pool is the actual resource, the
executor merely queues excess clients instead of failing them.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Callable

from repro.errors import ServeError
from repro.obs.metrics import MetricsRegistry
from repro.provenance.graph import TupleNode
from repro.serve.reader import ReaderPool, ReaderSession

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cdss.trust import TrustPolicy

__all__ = ["StoreServer"]


class StoreServer:
    """Dispatch concurrent index queries against one resident store.

    The server owns neither the store nor the writer: it is a pure
    read-side fan-out, safe to run while a writer exchanges in another
    thread or process.  Use as a context manager; :meth:`close` waits
    for in-flight queries, then closes the pool.
    """

    def __init__(self, pool: ReaderPool, *, workers: int | None = None):
        self.pool = pool
        count = pool.size if workers is None else min(workers, pool.size)
        if count < 1:
            raise ServeError("server needs at least one worker")
        self.workers = count
        self._executor: ThreadPoolExecutor | None = None

    @property
    def metrics(self) -> MetricsRegistry:
        """The pool's shared metrics registry (``serve.*`` counters)."""
        return self.pool.metrics

    def __enter__(self) -> "StoreServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def start(self) -> None:
        """Spin up the worker threads (idempotent)."""
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-serve",
            )

    def close(self) -> None:
        """Drain in-flight queries, stop workers, close the pool."""
        executor = self._executor
        if executor is not None:
            self._executor = None
            executor.shutdown(wait=True)
        self.pool.close()

    def _submit(
        self, fn: Callable[..., object], *args: object
    ) -> "Future[object]":
        executor = self._executor
        if executor is None:
            raise ServeError("server is not started")

        def task() -> object:
            with self.pool.session() as session:
                return fn(session, *args)

        return executor.submit(task)

    def lineage(self, node: TupleNode) -> "Future[object]":
        """Future of :meth:`ReaderSession.lineage` for *node*."""
        return self._submit(ReaderSession.lineage, node)

    def derivability(self) -> "Future[object]":
        """Future of :meth:`ReaderSession.derivability`."""
        return self._submit(ReaderSession.derivability)

    def trusted(self, policy: "TrustPolicy") -> "Future[object]":
        """Future of :meth:`ReaderSession.trusted` under *policy*."""
        return self._submit(ReaderSession.trusted, policy)
