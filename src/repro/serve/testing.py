"""Deterministic interleaving harness for reader/writer tests.

Thread schedules are the enemy of reproducible concurrency tests; the
:class:`StepGate` here replaces sleeps with explicit barriers.  A
participant thread calls ``gate.reach("label")`` at the point being
scheduled and blocks; the orchestrating test ``wait_reached("label")``s
to know the participant is parked, performs writer steps against the
held state, and ``release("label")``s to let the participant continue.
Labels are one-shot latches: releasing before the participant arrives
is fine (it passes straight through), and every wait carries a timeout
so a scheduling bug fails the test instead of hanging it.
"""

from __future__ import annotations

import threading

from repro.errors import ServeError

__all__ = ["StepGate"]


class StepGate:
    """Named one-shot barriers coordinating test threads."""

    def __init__(self, timeout: float = 10.0):
        self.timeout = timeout
        self._lock = threading.Condition()
        self._reached: set[str] = set()
        self._released: set[str] = set()

    def reach(self, label: str) -> None:
        """Announce arrival at *label* and block until released."""
        with self._lock:
            self._reached.add(label)
            self._lock.notify_all()
            if not self._lock.wait_for(
                lambda: label in self._released, self.timeout
            ):
                raise ServeError(f"gate {label!r} never released")

    def wait_reached(self, label: str) -> None:
        """Block until some thread has arrived at *label*."""
        with self._lock:
            if not self._lock.wait_for(
                lambda: label in self._reached, self.timeout
            ):
                raise ServeError(f"gate {label!r} never reached")

    def release(self, label: str) -> None:
        """Let the thread parked at *label* (now or later) continue."""
        with self._lock:
            self._released.add(label)
            self._lock.notify_all()
