"""Relational provenance storage over SQLite (Section 4.1)."""

from repro.storage.encoding import ValueCodec, quote_identifier, sql_type
from repro.storage.provrel import (
    binding_of,
    derivation_from_row,
    provenance_rows,
)
from repro.storage.sqlite_backend import SQLiteStorage

__all__ = [
    "SQLiteStorage",
    "ValueCodec",
    "binding_of",
    "derivation_from_row",
    "provenance_rows",
    "quote_identifier",
    "sql_type",
]
