"""Value encoding between Python tuples and SQLite storage classes.

SQLite natively stores ints, floats, and strings.  Booleans map to
0/1 (decoded back through the schema's declared attribute type), and
Skolem values (labeled nulls) are stored as tagged canonical-JSON
strings so that equal labeled nulls compare equal inside SQL joins —
the property data exchange needs from its canonical universal
solution.  The encoding is *self-describing*: a fresh codec (e.g. one
attached to a store reopened by path in a new connection or process)
reconstructs the ``SkolemValue`` — including nested Skolem arguments —
by parsing the string, with an intern cache only to keep one object
per distinct null within a codec.

Three more tagged encodings keep round-trips exact on edge values:

* Python ints outside SQLite's signed 64-bit range (which would raise
  ``OverflowError`` at bind time) are stored as ``@int:<decimal>``
  strings — equality-joinable, since the decimal rendering is
  canonical;
* non-finite floats (``nan``, ``±inf``) are stored as
  ``@float:<repr>`` strings: SQLite silently stores a bound NaN as
  NULL, which would round-trip as ``None`` and collide with
  labeled-null semantics, so they must never reach the binding layer
  raw.  The rendering is canonical, hence equality-joinable — SQL
  equality on the tag treats NaN as equal to itself.  The engines
  *share* that semantics: every NaN entering a CDSS is canonicalized
  to the single :data:`CANONICAL_NAN` object
  (:func:`canonical_value` / :func:`canonical_row`, applied at the
  ``insert_local``/``delete_local`` boundary), so the in-memory
  engine's hash joins — which compare tuple elements by identity
  before ``==`` — also see NaN as self-equal, and :meth:`decode`
  returns the same object for a stored ``@float:nan``.  A NaN used as
  a join variable therefore behaves identically on both engines
  (value semantics, not IEEE ``nan != nan``); see
  ``docs/architecture.md``;
* ordinary strings that *happen* to start with one of the tag prefixes
  are escaped with ``@str:`` so decoding is unambiguous.
"""

from __future__ import annotations

import json
import math
from typing import Sequence

from repro.datalog.terms import SkolemValue
from repro.errors import StorageError
from repro.relational.schema import RelationSchema

_SKOLEM_TAG = "@sk:"
_INT_TAG = "@int:"
_STR_TAG = "@str:"
_FLOAT_TAG = "@float:"
_TAGS = (_SKOLEM_TAG, _INT_TAG, _STR_TAG, _FLOAT_TAG)

#: SQLite INTEGER is a signed 64-bit value.
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: the one NaN object of the whole system.  CPython compares tuple
#: elements by identity before ``==`` and (since 3.10) hashes NaN by
#: object id, so funneling every NaN through this single object makes
#: NaN behave as an ordinary self-equal value in hash joins, dict
#: keys, and set membership — exactly the semantics the SQL engine
#: gets from the canonical ``@float:nan`` string encoding.
CANONICAL_NAN: float = float("nan")


def canonical_value(value: object) -> object:
    """*value*, with any float NaN replaced by :data:`CANONICAL_NAN`.

    Applied at CDSS data boundaries (local insertion/deletion) so both
    engines join NaN by value; all other values pass through untouched.
    """
    if isinstance(value, float) and math.isnan(value):
        return CANONICAL_NAN
    return value


def canonical_row(row: Sequence[object]) -> tuple[object, ...]:
    """Tuple of *row* with NaNs canonicalized (see
    :func:`canonical_value`)."""
    return tuple(canonical_value(v) for v in row)


def _skolem_to_jsonable(value: SkolemValue) -> dict:
    """Canonical JSON-able form of a labeled null (recursive)."""

    def enc(arg: object) -> object:
        if isinstance(arg, SkolemValue):
            return {"f": arg.function, "a": [enc(a) for a in arg.args]}
        if arg is None or isinstance(arg, (bool, int, float, str)):
            return arg
        raise StorageError(
            f"cannot store Skolem argument of type {type(arg).__name__}"
        )

    return enc(value)


def _skolem_from_jsonable(obj: object) -> object:
    """Inverse of :func:`_skolem_to_jsonable`.  Dicts can only be
    Skolem markers: plain dicts are rejected on the way in."""
    if isinstance(obj, dict):
        return SkolemValue(
            obj["f"], tuple(_skolem_from_jsonable(a) for a in obj["a"])
        )
    return obj


class ValueCodec:
    """Encodes/decodes tuple values; caches decoded Skolem values."""

    def __init__(self) -> None:
        self._skolems: dict[str, SkolemValue] = {}

    def encode(self, value: object) -> object:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, SkolemValue):
            # Canonical rendering (sorted keys, no whitespace): the
            # same labeled null always encodes to the same string, so
            # the strings are equality-joinable in SQL.
            key = _SKOLEM_TAG + json.dumps(
                _skolem_to_jsonable(value),
                sort_keys=True,
                separators=(",", ":"),
            )
            self._skolems.setdefault(key, value)
            return key
        if isinstance(value, int) and not _INT64_MIN <= value <= _INT64_MAX:
            return _INT_TAG + str(value)
        if isinstance(value, float) and not math.isfinite(value):
            return _FLOAT_TAG + repr(value)
        if isinstance(value, str) and value.startswith(_TAGS):
            return _STR_TAG + value
        if value is None or isinstance(value, (int, float, str)):
            return value
        raise StorageError(f"cannot store value of type {type(value).__name__}")

    def decode(self, value: object, attribute_type: str) -> object:
        if isinstance(value, str):
            if value.startswith(_SKOLEM_TAG):
                cached = self._skolems.get(value)
                if cached is not None:
                    return cached
                # Not seen by this codec (e.g. a store reopened by
                # path): the encoding is self-describing, so rebuild
                # the labeled null from its canonical JSON.
                try:
                    obj = json.loads(value[len(_SKOLEM_TAG):])
                    if not isinstance(obj, dict):
                        raise ValueError("not a Skolem object")
                    skolem = _skolem_from_jsonable(obj)
                except (ValueError, KeyError, TypeError):
                    raise StorageError(
                        f"unknown Skolem encoding {value!r}"
                    ) from None
                self._skolems[value] = skolem
                return skolem
            if value.startswith(_INT_TAG):
                return int(value[len(_INT_TAG):])
            if value.startswith(_FLOAT_TAG):
                decoded = float(value[len(_FLOAT_TAG):])
                # All NaNs decode to the one canonical object so
                # decoded rows compare equal to in-memory rows (see
                # CANONICAL_NAN).
                return CANONICAL_NAN if math.isnan(decoded) else decoded
            if value.startswith(_STR_TAG):
                return value[len(_STR_TAG):]
        if attribute_type == "bool" and isinstance(value, int):
            return bool(value)
        return value

    def encode_row(self, row: Sequence[object]) -> tuple[object, ...]:
        return tuple(self.encode(v) for v in row)

    def decode_row(
        self, row: Sequence[object], schema: RelationSchema
    ) -> tuple[object, ...]:
        if len(row) != schema.arity:
            raise StorageError(
                f"row arity {len(row)} != schema arity {schema.arity} "
                f"for {schema.name}"
            )
        return tuple(
            self.decode(value, attr.type)
            for value, attr in zip(row, schema.attributes)
        )


def sql_type(attribute_type: str) -> str:
    """SQLite column type for one of our attribute types."""
    return {
        "int": "INTEGER",
        "float": "REAL",
        "str": "TEXT",
        "bool": "INTEGER",
    }.get(attribute_type, "TEXT")


def quote_identifier(name: str) -> str:
    """Defensively quote an SQL identifier."""
    if '"' in name:
        raise StorageError(f"illegal identifier {name!r}")
    return f'"{name}"'
