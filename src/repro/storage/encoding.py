"""Value encoding between Python tuples and SQLite storage classes.

SQLite natively stores ints, floats, and strings.  Booleans map to
0/1 (decoded back through the schema's declared attribute type), and
Skolem values (labeled nulls) are interned as tagged strings so that
equal labeled nulls compare equal inside SQL joins — the property data
exchange needs from its canonical universal solution.

Two more tagged encodings keep round-trips exact on edge values:

* Python ints outside SQLite's signed 64-bit range (which would raise
  ``OverflowError`` at bind time) are stored as ``@int:<decimal>``
  strings — equality-joinable, since the decimal rendering is
  canonical;
* ordinary strings that *happen* to start with one of the tag prefixes
  are escaped with ``@str:`` so decoding is unambiguous.
"""

from __future__ import annotations

from typing import Sequence

from repro.datalog.terms import SkolemValue
from repro.errors import StorageError
from repro.relational.schema import RelationSchema

_SKOLEM_TAG = "@sk:"
_INT_TAG = "@int:"
_STR_TAG = "@str:"
_TAGS = (_SKOLEM_TAG, _INT_TAG, _STR_TAG)

#: SQLite INTEGER is a signed 64-bit value.
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class ValueCodec:
    """Encodes/decodes tuple values; interns Skolem values."""

    def __init__(self) -> None:
        self._skolems: dict[str, SkolemValue] = {}

    def encode(self, value: object) -> object:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, SkolemValue):
            key = _SKOLEM_TAG + str(value)
            self._skolems[key] = value
            return key
        if isinstance(value, int) and not _INT64_MIN <= value <= _INT64_MAX:
            return _INT_TAG + str(value)
        if isinstance(value, str) and value.startswith(_TAGS):
            return _STR_TAG + value
        if value is None or isinstance(value, (int, float, str)):
            return value
        raise StorageError(f"cannot store value of type {type(value).__name__}")

    def decode(self, value: object, attribute_type: str) -> object:
        if isinstance(value, str):
            if value.startswith(_SKOLEM_TAG):
                try:
                    return self._skolems[value]
                except KeyError:
                    raise StorageError(
                        f"unknown Skolem encoding {value!r}"
                    ) from None
            if value.startswith(_INT_TAG):
                return int(value[len(_INT_TAG):])
            if value.startswith(_STR_TAG):
                return value[len(_STR_TAG):]
        if attribute_type == "bool" and isinstance(value, int):
            return bool(value)
        return value

    def encode_row(self, row: Sequence[object]) -> tuple[object, ...]:
        return tuple(self.encode(v) for v in row)

    def decode_row(
        self, row: Sequence[object], schema: RelationSchema
    ) -> tuple[object, ...]:
        if len(row) != schema.arity:
            raise StorageError(
                f"row arity {len(row)} != schema arity {schema.arity} "
                f"for {schema.name}"
            )
        return tuple(
            self.decode(value, attr.type)
            for value, attr in zip(row, schema.attributes)
        )


def sql_type(attribute_type: str) -> str:
    """SQLite column type for one of our attribute types."""
    return {
        "int": "INTEGER",
        "float": "REAL",
        "str": "TEXT",
        "bool": "INTEGER",
    }.get(attribute_type, "TEXT")


def quote_identifier(name: str) -> str:
    """Defensively quote an SQL identifier."""
    if '"' in name:
        raise StorageError(f"illegal identifier {name!r}")
    return f'"{name}"'
