"""Relational encoding of the provenance graph (Section 4.1).

Each derivation node becomes one tuple in its mapping's provenance
relation ``P_m``, whose columns are the distinct key variables of the
mapping (equated/copied attributes stored once).  Superfluous
provenance relations — single-source projection mappings — are not
materialized; the storage layer defines them as virtual views over the
source relation (Fig. 2).

Derivation nodes record source/target *tuples*, not bindings, so this
module recovers the binding by matching the mapping's atoms against
the node's tuples.
"""

from __future__ import annotations

from typing import Iterator

from repro.cdss.mapping import SchemaMapping
from repro.datalog.atoms import match_tuple
from repro.datalog.terms import Variable
from repro.errors import StorageError
from repro.provenance.graph import DerivationNode, ProvenanceGraph, TupleNode


def binding_of(
    mapping: SchemaMapping, derivation: DerivationNode
) -> dict[Variable, object]:
    """Recover the rule-firing binding behind *derivation*.

    Matches body atoms against source tuples and head atoms against
    target tuples positionally (evaluation stores them in atom order).
    """
    if derivation.mapping != mapping.name:
        raise StorageError(
            f"derivation {derivation} does not belong to mapping {mapping.name}"
        )
    if len(derivation.sources) != len(mapping.body) or len(
        derivation.targets
    ) != len(mapping.head):
        raise StorageError(
            f"derivation {derivation} arity mismatch for mapping {mapping.name}"
        )
    binding: dict[Variable, object] | None = {}
    for atom, node in zip(
        mapping.body + mapping.head, derivation.sources + derivation.targets
    ):
        if atom.relation != node.relation:
            raise StorageError(
                f"derivation {derivation}: atom {atom} vs tuple {node}"
            )
        binding = match_tuple(atom, node.values, binding)
        if binding is None:
            raise StorageError(
                f"derivation {derivation} does not match mapping {mapping.name}"
            )
    return binding


def provenance_rows(
    mapping: SchemaMapping, graph: ProvenanceGraph
) -> Iterator[tuple[object, ...]]:
    """Yield the P_m rows encoding every derivation of *mapping*."""
    for derivation in sorted(graph.derivations, key=str):
        if derivation.mapping == mapping.name:
            yield mapping.derivation_key(binding_of(mapping, derivation))


def derivation_from_row(
    mapping: SchemaMapping,
    row: tuple[object, ...],
    attribute_values: dict[Variable, object],
) -> DerivationNode:
    """Rebuild a derivation node from a P_m row plus extra bindings.

    ``attribute_values`` must bind every non-key variable of the
    mapping (obtained by joining P_m back to the base relations);
    anonymous wildcard positions may be left unbound and are filled
    with None (the attribute is projected away by the mapping).
    """
    from repro.datalog.terms import is_wildcard

    binding: dict[Variable, object] = dict(attribute_values)
    for column, value in zip(mapping.provenance_columns, row):
        binding[column.variable] = value
    for atom in mapping.body + mapping.head:
        for variable in atom.variables():
            if variable not in binding:
                if not is_wildcard(variable):
                    raise StorageError(
                        f"derivation_from_row: unbound variable "
                        f"{variable.name} of mapping {mapping.name}"
                    )
                binding[variable] = None
    sources = tuple(
        TupleNode(atom.relation, atom.ground(binding)) for atom in mapping.body
    )
    targets = tuple(
        TupleNode(atom.relation, atom.ground(binding)) for atom in mapping.head
    )
    return DerivationNode(mapping.name, sources, targets)
