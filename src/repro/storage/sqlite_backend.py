"""SQLite-backed provenance storage (Section 4).

The paper stores base relations, local-contribution relations, and one
provenance relation per mapping inside an RDBMS (DB2 in their testbed);
we use Python's bundled SQLite, which executes the same translated SQL
(multi-way joins, UNION ALL, GROUP BY/HAVING) over the same encoding:

* one table per relation, typed columns, B-tree index on the key;
* one table ``P_m`` per non-superfluous mapping — one row per
  derivation node — indexed on every column (path traversals may enter
  a provenance relation from either side);
* one *view* ``P_m`` per superfluous (single-source) mapping, defined
  over its source relation (Fig. 2).
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Sequence

from repro.cdss.mapping import SchemaMapping, provenance_relation_name
from repro.cdss.system import CDSS
from repro.datalog.terms import Constant, Variable
from repro.errors import StorageError
from repro.relational.schema import RelationSchema
from repro.storage.encoding import ValueCodec, quote_identifier, sql_type
from repro.storage.provrel import provenance_rows


class SQLiteStorage:
    """Materializes a CDSS instance + provenance graph into SQLite."""

    def __init__(self, cdss: CDSS, path: str = ":memory:"):
        self.cdss = cdss
        self.codec = ValueCodec()
        self.connection = sqlite3.connect(path)
        self.connection.execute("PRAGMA synchronous = OFF")
        self.connection.execute("PRAGMA journal_mode = MEMORY")
        self._initialized = False
        self._closed = False

    # -- DDL ------------------------------------------------------------------

    def _create_relation_table(self, schema: RelationSchema) -> None:
        columns = ", ".join(
            f"{quote_identifier(a.name)} {sql_type(a.type)}"
            for a in schema.attributes
        )
        table = quote_identifier(schema.name)
        self.connection.execute(
            f"CREATE TABLE IF NOT EXISTS {table} ({columns})"
        )
        key_cols = ", ".join(quote_identifier(k) for k in schema.key)
        self.connection.execute(
            f"CREATE INDEX IF NOT EXISTS "
            f"{quote_identifier('ix_' + schema.name + '_key')} "
            f"ON {table} ({key_cols})"
        )

    def _create_provenance_table(self, mapping: SchemaMapping) -> None:
        schema = mapping.provenance_schema()
        table = quote_identifier(schema.name)
        columns = ", ".join(
            f"{quote_identifier(a.name)} {sql_type(a.type)}"
            for a in schema.attributes
        )
        self.connection.execute(
            f"CREATE TABLE IF NOT EXISTS {table} ({columns})"
        )
        for attribute in schema.attributes:
            self.connection.execute(
                f"CREATE INDEX IF NOT EXISTS "
                f"{quote_identifier(f'ix_{schema.name}_{attribute.name}')} "
                f"ON {table} ({quote_identifier(attribute.name)})"
            )

    def _create_provenance_view(self, mapping: SchemaMapping) -> None:
        """Virtual P_m for a superfluous mapping: a projection of its
        single source relation, filtered by any body constants."""
        (body_atom,) = mapping.body
        source_schema = self.cdss.catalog[body_atom.relation]
        select_parts: list[str] = []
        where_parts: list[str] = []
        positions: dict[Variable, int] = {}
        for position, term in enumerate(body_atom.terms):
            attribute = quote_identifier(source_schema.attributes[position].name)
            if isinstance(term, Variable):
                if term in positions:
                    first = quote_identifier(
                        source_schema.attributes[positions[term]].name
                    )
                    where_parts.append(f"{first} = {attribute}")
                else:
                    positions[term] = position
            elif isinstance(term, Constant):
                value = self.codec.encode(term.value)
                literal = repr(value) if isinstance(value, str) else str(value)
                where_parts.append(f"{attribute} = {literal}")
        for column in mapping.provenance_columns:
            if column.variable not in positions:
                raise StorageError(
                    f"superfluous mapping {mapping.name}: column "
                    f"{column.name} not recoverable from the source atom"
                )
            attribute = source_schema.attributes[positions[column.variable]].name
            select_parts.append(
                f"{quote_identifier(attribute)} AS {quote_identifier(column.name)}"
            )
        view = quote_identifier(provenance_relation_name(mapping.name))
        source = quote_identifier(body_atom.relation)
        where = f" WHERE {' AND '.join(where_parts)}" if where_parts else ""
        self.connection.execute(
            f"CREATE VIEW IF NOT EXISTS {view} AS "
            f"SELECT {', '.join(select_parts)} "
            f"FROM {source}{where}"
        )

    def initialize(self) -> None:
        """Create all tables, indexes, and superfluous-mapping views.

        Idempotent: every DDL statement is ``IF NOT EXISTS``, so
        repeated ``prepare_storage``/``load`` calls (and re-opening an
        on-disk database that already has the schema) are safe.
        """
        for schema in self.cdss.catalog:
            self._create_relation_table(schema)
        for mapping in self.cdss.mappings.values():
            if mapping.is_superfluous:
                self._create_provenance_view(mapping)
            else:
                self._create_provenance_table(mapping)
        self.connection.commit()
        self._initialized = True

    # -- loading ------------------------------------------------------------

    def _insert_rows(
        self, table_name: str, arity: int, rows: Iterable[Sequence[object]]
    ) -> int:
        placeholders = ", ".join("?" for _ in range(arity))
        statement = (
            f"INSERT INTO {quote_identifier(table_name)} VALUES ({placeholders})"
        )
        encoded = [self.codec.encode_row(row) for row in rows]
        self.connection.executemany(statement, encoded)
        return len(encoded)

    def load(self) -> int:
        """(Re)load every relation and provenance table from the CDSS.

        Returns the total number of rows written.
        """
        if not self._initialized:
            self.initialize()
        total = 0
        for schema in self.cdss.catalog:
            table = quote_identifier(schema.name)
            self.connection.execute(f"DELETE FROM {table}")
            total += self._insert_rows(
                schema.name,
                schema.arity,
                # key=repr: deterministic order even for rows mixing
                # value types (None/int/str) that do not compare.
                sorted(self.cdss.instance[schema.name], key=repr),
            )
        for mapping in self.cdss.mappings.values():
            if mapping.is_superfluous:
                continue
            schema = mapping.provenance_schema()
            self.connection.execute(
                f"DELETE FROM {quote_identifier(schema.name)}"
            )
            total += self._insert_rows(
                schema.name,
                schema.arity,
                sorted(set(provenance_rows(mapping, self.cdss.graph)), key=repr),
            )
        self.connection.commit()
        return total

    # -- querying ------------------------------------------------------------

    def query(
        self, sql: str, parameters: Sequence[object] = ()
    ) -> list[tuple[object, ...]]:
        """Execute SQL and fetch all rows (raw, un-decoded values)."""
        try:
            cursor = self.connection.execute(sql, parameters)
        except sqlite3.Error as exc:
            raise StorageError(f"SQL failed: {exc}\n{sql}") from exc
        return cursor.fetchall()

    def table_size(self, name: str) -> int:
        (count,) = self.query(
            f"SELECT COUNT(*) FROM {quote_identifier(name)}"
        )[0]
        return int(count)

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if not self._closed:
            self.connection.close()
            self._closed = True

    def __enter__(self) -> "SQLiteStorage":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
