"""Synthetic workloads and the experiment harness (Section 6.1)."""

from repro.workloads.harness import (
    ExperimentResult,
    format_row,
    prepare_storage,
    run_target_query,
)
from repro.workloads.swissprot import (
    SwissProtEntry,
    generate_entries,
    partition_schemas,
)
from repro.workloads.topologies import (
    TopologySpec,
    branched,
    build_topology,
    chain,
    instance_tuple_count,
    leaf_peers,
    target_relation,
    upstream_data_peers,
)

__all__ = [
    "ExperimentResult",
    "SwissProtEntry",
    "TopologySpec",
    "branched",
    "build_topology",
    "chain",
    "format_row",
    "generate_entries",
    "instance_tuple_count",
    "leaf_peers",
    "partition_schemas",
    "prepare_storage",
    "run_target_query",
    "target_relation",
    "upstream_data_peers",
]
