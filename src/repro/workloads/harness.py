"""Experiment driver shared by the benchmarks (Section 6).

One :func:`run_experiment` call builds a workload CDSS, loads it into
SQLite, optionally materializes ASRs, runs the target query

    FOR [R0 $x] INCLUDE PATH [$x] <-+ [] RETURN $x

through the SQL pipeline, and reports the paper's metrics: number of
unfolded rules, unfolding time, SQL evaluation time, and materialized
instance size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.cdss.system import CDSS
from repro.indexing.advisor import asr_definitions_for
from repro.indexing.manager import ASRManager
from repro.proql.sql_engine import SQLEngine, SQLStats
from repro.storage.sqlite_backend import SQLiteStorage
from repro.workloads.topologies import instance_tuple_count, target_relation


@dataclass
class ExperimentResult:
    """Metrics of one target-query run.

    ``exchange_seconds`` is cumulative over all exchanges that built
    the CDSS; the engine counters describe the most recent exchange
    (:attr:`CDSS.last_exchange`), so benchmark rows can report the
    Datalog engine alongside the query pipeline.
    """

    stats: SQLStats
    instance_tuples: int
    exchange_seconds: float
    load_seconds: float
    #: wall-clock seconds of the most recent single ``exchange()`` call
    #: (:attr:`EvaluationResult.wall_seconds`); unlike the cumulative
    #: ``exchange_seconds`` this isolates one incremental exchange.
    last_exchange_seconds: float = 0.0
    asr_rows: int = 0
    plans_compiled: int = 0
    index_hits: int = 0
    dedup_skipped: int = 0
    #: engine of the most recent exchange ("memory" | "sqlite").
    engine: str = "memory"
    #: whether that exchange hit the compiled-program cache.
    plan_cache_hit: bool = False
    #: cumulative program-cache hits over the CDSS's lifetime.
    plan_cache_hits: int = 0
    #: rows shipped into the SQLite mirror by the most recent
    #: exchange's incremental sync (0 over unchanged relations).
    rows_mirrored: int = 0
    #: relations that sync had to touch.
    relations_synced: int = 0
    #: tuples killed by the most recent deletion propagation
    #: (:attr:`CDSS.last_deletion`; 0 when none ran).
    rows_deleted: int = 0
    #: P_m firing-history rows garbage-collected alongside it.
    pm_rows_collected: int = 0
    #: substrate that ran that propagation ("memory" graph test or
    #: "sqlite" relational fixpoint; "" when none ran).
    deletion_engine: str = ""
    #: substrate that answered the most recent graph query
    #: (:attr:`CDSS.last_graph_query`: "memory" in-memory graph or
    #: "sqlite" relational walk; "" when none ran).
    graph_query_engine: str = ""
    #: fixpoint/walk rounds of that query (0 on the memory engine).
    graph_query_iterations: int = 0
    #: firing-history rows the relational walk enumerated (0 on the
    #: memory engine).
    pm_rows_scanned: int = 0
    #: diagnostics of the most recent ``exchange(validate=...)``
    #: pre-flight (:attr:`CDSS.last_validation`; both 0 when no
    #: pre-flight ran or the program was clean).
    analysis_errors: int = 0
    analysis_warnings: int = 0

    @property
    def unfolded_rules(self) -> int:
        return self.stats.unfolded_rules

    @property
    def unfold_seconds(self) -> float:
        return self.stats.unfold_seconds

    @property
    def evaluation_seconds(self) -> float:
        return self.stats.compile_seconds + self.stats.sql_seconds

    @property
    def query_processing_seconds(self) -> float:
        return self.stats.query_processing_seconds


def prepare_storage(cdss: CDSS) -> SQLiteStorage:
    storage = SQLiteStorage(cdss)
    storage.load()
    return storage


def run_target_query(
    cdss: CDSS,
    storage: SQLiteStorage | None = None,
    asr_length: int | None = None,
    asr_kind: str = "complete",
    collect_graph: bool = False,
    max_rules: int = 100_000,
) -> ExperimentResult:
    """Run the experiments' target query over *cdss*.

    ``asr_length``/``asr_kind`` replicate Section 6.4's sweeps: ASRs of
    the given type covering upstream chains in windows of that length.
    """
    t0 = time.perf_counter()
    own_storage = storage is None
    if storage is None:
        storage = prepare_storage(cdss)
    load_seconds = time.perf_counter() - t0

    manager = None
    asr_rows = 0
    if asr_length is not None:
        manager = ASRManager(storage)
        manager.register_all(
            asr_definitions_for(
                cdss, target_relation(), asr_length, asr_kind
            )
        )
        asr_rows = sum(manager.table_sizes().values())

    engine = SQLEngine(
        storage,
        rewriter=manager.rewrite if manager else None,
        schema_lookup=manager.schema_lookup() if manager else None,
        max_rules=max_rules,
    )
    stats, _ = engine.run_target(target_relation(), collect_graph=collect_graph)
    exchange = cdss.last_exchange
    deletion = cdss.last_deletion
    graph_query = cdss.last_graph_query
    validation = cdss.last_validation
    result = ExperimentResult(
        stats=stats,
        instance_tuples=instance_tuple_count(cdss),
        exchange_seconds=cdss.exchange_seconds,
        load_seconds=load_seconds,
        last_exchange_seconds=exchange.wall_seconds if exchange else 0.0,
        asr_rows=asr_rows,
        plans_compiled=exchange.plans_compiled if exchange else 0,
        index_hits=exchange.index_hits if exchange else 0,
        dedup_skipped=exchange.dedup_skipped if exchange else 0,
        engine=exchange.engine if exchange else "memory",
        plan_cache_hit=exchange.plan_cache_hit if exchange else False,
        plan_cache_hits=cdss.plan_cache.hits,
        rows_mirrored=exchange.rows_mirrored if exchange else 0,
        relations_synced=exchange.relations_synced if exchange else 0,
        rows_deleted=deletion.rows_deleted if deletion else 0,
        pm_rows_collected=deletion.pm_rows_collected if deletion else 0,
        deletion_engine=deletion.engine if deletion else "",
        graph_query_engine=graph_query.engine if graph_query else "",
        graph_query_iterations=graph_query.iterations if graph_query else 0,
        pm_rows_scanned=graph_query.pm_rows_scanned if graph_query else 0,
        analysis_errors=len(validation.errors) if validation else 0,
        analysis_warnings=len(validation.warnings) if validation else 0,
    )
    if manager is not None:
        manager.drop_all()
    if own_storage:
        storage.close()
    return result


def format_row(label: str, result: ExperimentResult) -> str:
    """One printable series row (benchmarks tee these into reports)."""
    return (
        f"{label:>24}  rules={result.unfolded_rules:6d}  "
        f"unfold={result.unfold_seconds * 1e3:9.1f}ms  "
        f"eval={result.evaluation_seconds * 1e3:9.1f}ms  "
        f"total={result.query_processing_seconds * 1e3:9.1f}ms  "
        f"tuples={result.instance_tuples:8d}  "
        f"exchange={result.exchange_seconds * 1e3:9.1f}ms"
    )
