"""Many-client soak workload for the concurrent serving tier.

One writer thread loops insert → exchange → delete → propagate over a
resident chain store while N reader threads hammer ``lineage`` /
``derivability`` / ``trusted`` through a :class:`repro.serve.ReaderPool`.
The writer records a single-threaded *oracle* answer (the unindexed
relational paths of :class:`~repro.exchange.graph_queries.\
StoreGraphQueries`) for every epoch it creates; every reader records the
digest of every answer it got, keyed by the epoch its snapshot observed.
The run passes iff each reader digest equals the oracle digest *at that
reader's epoch* — the serving tier's whole contract in one assertion —
with zero escaped ``SQLITE_BUSY`` and zero reader errors.

Run the CI smoke variant from the command line::

    python -m repro.workloads.serving --smoke --trace serve-trace.jsonl

and the full acceptance shape (8 readers x 1000 queries x 25 cycles)
with ``--acceptance`` (what ``tests/test_serve_soak.py`` asserts on).
"""

from __future__ import annotations

import argparse
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.cdss.trust import TrustPolicy
from repro.exchange.graph_queries import StoreGraphQueries
from repro.provenance.graph import TupleNode
from repro.serve import (
    BackoffPolicy,
    ReaderPool,
    ReaderSession,
    ServeUnavailable,
    checkpoint_with_retry,
    is_busy_error,
)
from repro.workloads.swissprot import generate_entries
from repro.workloads.topologies import chain, peer_name, upstream_data_peers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cdss.system import CDSS

__all__ = ["SoakConfig", "SoakReport", "run_soak", "main"]

#: readers must ride out full exchange cycles, so their retry budget is
#: wider than a session default: ~4 s of fine-grained polling.
SOAK_RETRY = BackoffPolicy(
    attempts=200, base_delay=0.001, multiplier=1.5, max_delay=0.02
)


@dataclass(frozen=True)
class SoakConfig:
    """Shape of one soak run (defaults = the CI smoke size)."""

    peers: int = 4
    base_size: int = 12
    cycles: int = 3
    readers: int = 2
    queries_per_reader: int = 50
    inserts_per_cycle: int = 3
    checkpoint_every: int = 2
    deadline_seconds: float = 180.0

    @staticmethod
    def acceptance() -> "SoakConfig":
        """The acceptance-criteria shape: >= 8 readers x >= 1000
        queries each during >= 25 continuous exchange/delete cycles."""
        return SoakConfig(
            peers=4,
            base_size=20,
            cycles=25,
            readers=8,
            queries_per_reader=1000,
            inserts_per_cycle=3,
            checkpoint_every=5,
            deadline_seconds=300.0,
        )


@dataclass
class _ReaderLog:
    """What one reader thread observed."""

    queries: int = 0
    unavailable: int = 0
    busy_escapes: int = 0
    errors: list[str] = field(default_factory=list)
    #: (epoch, query key) -> answer digest, first observation wins;
    #: later observations of the same pair must agree (else recorded
    #: as an internal inconsistency in :attr:`errors`).
    seen: dict[tuple[int, object], object] = field(default_factory=dict)
    #: wall seconds of warm (result-cache hit) lineage answers.
    warm_lineage_seconds: list[float] = field(default_factory=list)


@dataclass
class SoakReport:
    """Outcome of :func:`run_soak` (what the soak test asserts on)."""

    config: SoakConfig
    cycles_run: int
    epochs_recorded: int
    total_queries: int
    reader_queries: list[int]
    mismatches: list[str]
    errors: list[str]
    busy_escapes: int
    unavailable: int
    warm_lineage_seconds: list[float]
    final_checkpoint: tuple[int, int, int]
    wall_seconds: float
    metrics: dict[str, float]

    @property
    def passed(self) -> bool:
        """Zero mismatches, zero escaped BUSY, zero reader errors."""
        return not self.mismatches and not self.errors and (
            self.busy_escapes == 0
        )

    def warm_median_seconds(self) -> float:
        """Median warm (cached) lineage latency, 0.0 when unmeasured."""
        if not self.warm_lineage_seconds:
            return 0.0
        ordered = sorted(self.warm_lineage_seconds)
        return ordered[len(ordered) // 2]

    def summary(self) -> str:
        """Human-readable one-screen result."""
        lines = [
            f"soak: {'PASS' if self.passed else 'FAIL'} "
            f"({self.wall_seconds:.1f}s wall)",
            f"  cycles: {self.cycles_run}/{self.config.cycles}  "
            f"epochs recorded: {self.epochs_recorded}",
            f"  queries: {self.total_queries} total "
            f"{self.reader_queries} per reader",
            f"  mismatches: {len(self.mismatches)}  "
            f"busy escapes: {self.busy_escapes}  "
            f"unavailable: {self.unavailable}  "
            f"errors: {len(self.errors)}",
            f"  warm lineage median: "
            f"{self.warm_median_seconds() * 1e6:.0f}us "
            f"over {len(self.warm_lineage_seconds)} samples",
            f"  final checkpoint (TRUNCATE): busy={self.final_checkpoint[0]} "
            f"wal_pages={self.final_checkpoint[1]}",
        ]
        for problem in (self.mismatches + self.errors)[:10]:
            lines.append(f"  ! {problem}")
        return "\n".join(lines)


def _digest(value: object) -> object:
    """Order-insensitive fingerprint of a query answer.

    Readers keep digests instead of full answers so a soak's
    observation log stays small; the writer digests its oracle answers
    with the same function before comparing.
    """
    if isinstance(value, dict):
        return hash(frozenset(value.items()))
    if isinstance(value, frozenset):
        return hash(value)
    return value


def _probe_nodes(config: SoakConfig) -> list[TupleNode]:
    """Deterministic lineage probes: seed leaves and their derived
    copies at the target peer, one never-stored node (KeyError parity),
    and the first cycle-0 entry — absent at first, present mid-run,
    then deleted again, so probes cross every lifecycle state."""
    probes: list[TupleNode] = []
    top = config.peers - 1
    for peer_index in upstream_data_peers(config.peers, 2):
        entry = generate_entries(
            1, seed=peer_index, key_offset=peer_index * 10_000_000
        )[0]
        name = peer_name(peer_index)
        probes.append(TupleNode(f"{name}_R1_l", entry.first_row()))
        probes.append(TupleNode("P0_R1", entry.first_row()))
    cycle_entry = _cycle_entries(config, 0)[0]
    probes.append(
        TupleNode(f"{peer_name(top)}_R1_l", cycle_entry.first_row())
    )
    probes.append(TupleNode("P0_R2", (999_999_999,) * 14))
    return probes


def _cycle_entries(config: SoakConfig, cycle: int):
    """The rows cycle *cycle* inserts at the most-upstream peer."""
    return generate_entries(
        config.inserts_per_cycle,
        seed=10_000 + cycle,
        key_offset=50_000_000 + cycle * 100_000,
    )


def _soak_policy() -> TrustPolicy:
    """A policy exercising both distrust axes deterministically."""
    policy = TrustPolicy()
    policy.distrust_mapping("m1")
    return policy


def run_soak(
    config: SoakConfig,
    path: "str | os.PathLike[str] | None" = None,
    trace: object | None = None,
) -> SoakReport:
    """Run one soak: build the resident chain, start the readers,
    drive the writer loop, join everything, compare against the oracle.

    *path* is the store file (a temporary directory is used when
    omitted); *trace* is forwarded to the writer CDSS and, after the
    threads stop, to one single-threaded reader pass so the trace
    artifact carries ``serve.query`` spans too.
    """
    started = time.perf_counter()
    cleanup: tempfile.TemporaryDirectory | None = None
    if path is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-soak-")
        path = os.path.join(cleanup.name, "store.db")
    try:
        return _run_soak(config, os.fspath(path), trace, started)
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def _run_soak(
    config: SoakConfig, path: str, trace: object, started: float
) -> SoakReport:
    cdss = chain(
        config.peers,
        base_size=config.base_size,
        engine="sqlite",
        exchange_path=path,
        resident=True,
        trace=trace,
    )
    store = cdss.exchange_store
    assert store is not None
    program, _ = cdss.plan_cache.fetch(cdss.program())
    oracle = StoreGraphQueries(
        store, program, cdss.catalog, cdss.mappings, use_index=False
    )
    policy = _soak_policy()
    probes = _probe_nodes(config)
    top = peer_name(config.peers - 1)

    oracle_digests: dict[int, dict[object, object]] = {}

    def record_oracle() -> None:
        """Oracle answers for the store's current epoch (writer thread
        only; runs after every epoch-creating operation, before the
        next one, so every epoch a reader can observe gets recorded)."""
        if store.meta_get("index_state") != "current" or store.dirty_run:
            return
        epoch = int(store.meta_get("index_epoch") or 0)
        if epoch in oracle_digests:
            return
        answers: dict[object, object] = {}
        for number, probe in enumerate(probes):
            try:
                value: object = oracle.lineage(probe)[0]
            except KeyError:
                value = "KeyError"
            answers[("lineage", number)] = _digest(value)
        answers[("derivability",)] = _digest(oracle.derivability()[0])
        answers[("trusted",)] = _digest(oracle.trusted(policy)[0])
        oracle_digests[epoch] = answers

    record_oracle()

    stop = threading.Event()
    deadline = time.monotonic() + config.deadline_seconds
    pool = ReaderPool(
        path,
        cdss.catalog,
        size=config.readers,
        retry=SOAK_RETRY,
        timeout=config.deadline_seconds,
    )
    logs = [_ReaderLog() for _ in range(config.readers)]
    query_kinds = len(probes) + 2

    def reader_main(index: int, log: _ReaderLog) -> None:
        with pool.session() as session:
            step = index  # stagger the probe rotation across readers
            while True:
                if log.queries >= config.queries_per_reader and stop.is_set():
                    return
                if time.monotonic() > deadline:
                    log.errors.append(f"reader {index}: deadline exceeded")
                    return
                choice = step % query_kinds
                step += 1
                try:
                    if choice < len(probes):
                        key: object = ("lineage", choice)
                        try:
                            answer: object = session.lineage(probes[choice])
                        except KeyError:
                            answer = "KeyError"
                    elif choice == len(probes):
                        key = ("derivability",)
                        answer = session.derivability()
                    else:
                        key = ("trusted",)
                        answer = session.trusted(policy)
                except ServeUnavailable:
                    log.unavailable += 1
                    continue
                except Exception as error:  # noqa: BLE001 - soak verdict
                    if is_busy_error(error):
                        log.busy_escapes += 1
                    else:
                        log.errors.append(f"reader {index}: {error!r}")
                    continue
                stats = session.last_read
                if stats is None:
                    log.errors.append(f"reader {index}: no read stats")
                    continue
                log.queries += 1
                digest = _digest(answer)
                seen_key = (stats.epoch, key)
                previous = log.seen.setdefault(seen_key, digest)
                if previous != digest:
                    log.errors.append(
                        f"reader {index}: epoch {stats.epoch} {key} "
                        "answered two different values"
                    )
                if stats.cache_hit and key[0] == "lineage":
                    log.warm_lineage_seconds.append(stats.wall_seconds)

    threads = [
        threading.Thread(
            target=reader_main,
            args=(index, log),
            name=f"soak-reader-{index}",
            daemon=True,
        )
        for index, log in enumerate(logs)
    ]
    for thread in threads:
        thread.start()

    writer_errors: list[str] = []
    cycles_run = 0
    try:
        for cycle in range(config.cycles):
            if time.monotonic() > deadline:
                writer_errors.append(f"writer: deadline at cycle {cycle}")
                break
            entries = _cycle_entries(config, cycle)
            for entry in entries:
                cdss.insert_local(f"{top}_R1", entry.first_row())
                cdss.insert_local(f"{top}_R2", entry.second_row())
            cdss.exchange(engine="sqlite", storage=path, resident=True)
            record_oracle()
            if cycle > 0:
                victim = _cycle_entries(config, cycle - 1)[0]
                cdss.delete_local(f"{top}_R1", victim.first_row())
                record_oracle()
                cdss.delete_local(f"{top}_R2", victim.second_row())
                record_oracle()
                cdss.propagate_deletions()
                record_oracle()
            if (cycle + 1) % config.checkpoint_every == 0:
                checkpoint_with_retry(
                    store,
                    "PASSIVE",
                    metrics=cdss.metrics,
                    tracer=cdss.tracer,
                )
            cycles_run += 1
    except Exception as error:  # noqa: BLE001 - soak verdict
        writer_errors.append(f"writer: {error!r}")
    finally:
        stop.set()

    for thread in threads:
        thread.join(max(0.0, deadline - time.monotonic()) + 10.0)
        if thread.is_alive():
            writer_errors.append(f"{thread.name}: did not stop")
    pool.close()

    # Quiescent point: every reader released its snapshot, so a
    # blocking checkpoint must fully truncate the WAL.
    final_checkpoint = checkpoint_with_retry(
        store, "TRUNCATE", metrics=cdss.metrics, tracer=cdss.tracer
    )

    # One single-threaded traced reader pass so the trace artifact
    # carries serve.query spans (reader threads never share the CDSS
    # tracer: tracers are deliberately single-threaded).
    with ReaderSession(
        path, cdss.catalog, metrics=cdss.metrics, tracer=cdss.tracer
    ) as traced:
        traced.lineage(probes[0])
        traced.derivability()

    mismatches: list[str] = []
    errors = list(writer_errors)
    for index, log in enumerate(logs):
        errors.extend(log.errors)
        for (epoch, key), digest in sorted(
            log.seen.items(), key=lambda item: (item[0][0], repr(item[0][1]))
        ):
            expected = oracle_digests.get(epoch)
            if expected is None:
                mismatches.append(
                    f"reader {index}: observed epoch {epoch} the writer "
                    f"never recorded ({key})"
                )
            elif expected.get(key) != digest:
                mismatches.append(
                    f"reader {index}: {key} at epoch {epoch} disagrees "
                    "with the oracle"
                )

    report = SoakReport(
        config=config,
        cycles_run=cycles_run,
        epochs_recorded=len(oracle_digests),
        total_queries=sum(log.queries for log in logs),
        reader_queries=[log.queries for log in logs],
        mismatches=mismatches,
        errors=errors,
        busy_escapes=sum(log.busy_escapes for log in logs),
        unavailable=sum(log.unavailable for log in logs),
        warm_lineage_seconds=[
            second for log in logs for second in log.warm_lineage_seconds
        ],
        final_checkpoint=final_checkpoint,
        wall_seconds=time.perf_counter() - started,
        metrics=cdss.metrics.snapshot(),
    )
    return report


def main(argv: "Sequence[str] | None" = None) -> int:
    """CLI entry point (the CI ``serve-smoke`` job)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.serving",
        description="Soak the concurrent serving tier against its oracle.",
    )
    parser.add_argument("--peers", type=int, default=None)
    parser.add_argument("--base-size", type=int, default=None)
    parser.add_argument("--cycles", type=int, default=None)
    parser.add_argument("--readers", type=int, default=None)
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument(
        "--path", default=None, help="store file (default: temp dir)"
    )
    parser.add_argument(
        "--trace", default=None, help="JSONL trace output path"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI smoke shape (2 readers, short writer loop)",
    )
    parser.add_argument(
        "--acceptance",
        action="store_true",
        help="full acceptance shape (8 readers x 1000 queries x 25 cycles)",
    )
    args = parser.parse_args(argv)
    config = (
        SoakConfig.acceptance() if args.acceptance else SoakConfig()
    )
    overrides = {
        "peers": args.peers,
        "base_size": args.base_size,
        "cycles": args.cycles,
        "readers": args.readers,
        "queries_per_reader": args.queries,
    }
    fields = {k: v for k, v in overrides.items() if v is not None}
    if fields:
        from dataclasses import replace

        config = replace(config, **fields)
    report = run_soak(config, path=args.path, trace=args.trace)
    print(report.summary())
    return 0 if report.passed else 1


if __name__ == "__main__":  # pragma: no cover - CLI
    raise SystemExit(main())
