"""Synthetic SWISS-PROT-style workload data (Section 6.1.1).

The paper partitions the 25 attributes of the SWISS-PROT universal
relation into two relations joined by a shared key, and replaces large
strings with integer hash surrogates.  This module generates the same
shape synthetically: a seeded universal relation of 25 integer
attributes, split as ``(key, a1..a12)`` and ``(key, a13..a25)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relational.schema import RelationSchema

#: Attribute count of the SWISS-PROT universal relation (paper §6.1.1).
UNIVERSAL_ATTRIBUTES = 25
#: Attributes in the first partition (the second gets the rest).
FIRST_PARTITION = 12


@dataclass(frozen=True)
class SwissProtEntry:
    """One synthetic protein entry, pre-partitioned."""

    key: int
    first: tuple[int, ...]  # a1..a12
    second: tuple[int, ...]  # a13..a25

    def first_row(self) -> tuple[int, ...]:
        return (self.key, *self.first)

    def second_row(self) -> tuple[int, ...]:
        return (self.key, *self.second)


def partition_schemas(peer: str) -> tuple[RelationSchema, RelationSchema]:
    """The two relations of one peer's SWISS-PROT partitioning.

    Both are keyed on the shared entry key (``k``), which preserves
    losslessness of the partitioning and keeps provenance relations
    single-column, as in the paper's encoding.
    """
    first = RelationSchema.of(
        f"{peer}_R1",
        ["k"] + [f"a{i}" for i in range(1, FIRST_PARTITION + 1)],
        key=["k"],
    )
    second = RelationSchema.of(
        f"{peer}_R2",
        ["k"] + [f"a{i}" for i in range(FIRST_PARTITION + 1, UNIVERSAL_ATTRIBUTES + 1)],
        key=["k"],
    )
    return first, second


def generate_entries(
    count: int, seed: int = 0, key_offset: int = 0
) -> list[SwissProtEntry]:
    """Sample *count* entries deterministically.

    Integer hash surrogates stand in for SWISS-PROT's CLOBs, exactly as
    the paper substituted "integer hash values for each large string".
    ``key_offset`` lets different peers contribute disjoint entries.
    """
    rng = random.Random(seed)
    entries = []
    for index in range(count):
        key = key_offset + index
        values = tuple(
            rng.randrange(0, 2**31) for _ in range(UNIVERSAL_ATTRIBUTES)
        )
        entries.append(
            SwissProtEntry(key, values[:FIRST_PARTITION], values[FIRST_PARTITION:])
        )
    return entries
