"""CDSS mapping topologies of the evaluation (Figures 5 and 6).

Both topologies have a *target peer* that every mapping propagates
data towards.  Peers are numbered so that peer 0 is the target; data
flows from higher-numbered (upstream) peers down to peer 0.

* **chain** (Figure 5): P(n-1) -> P(n-2) -> ... -> P0.
* **branched** (Figure 6): a balanced binary in-tree converging on the
  target peer — peer i receives from peers 2i+1 and 2i+2.

Each peer has the two SWISS-PROT partition relations; each mapping
joins the two source relations in its body and produces the two target
relations in its head ("each mapping has a join between two such
relations in the body and another join between two relations in the
head", Section 6.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cdss.peer import Peer
from repro.cdss.system import CDSS
from repro.workloads.swissprot import generate_entries, partition_schemas


def peer_name(index: int) -> str:
    return f"P{index}"


def target_relation(cdss_or_none=None) -> str:
    """The anchor relation of the experiments' target query (R0)."""
    return "P0_R1"


@dataclass
class TopologySpec:
    """Description of one generated CDSS workload."""

    kind: str  # "chain" | "branched"
    num_peers: int
    #: peers whose local tables receive data
    data_peers: tuple[int, ...]
    base_size: int
    seed: int = 0
    #: (source peer, target peer) per mapping, in mapping order
    edges: tuple[tuple[int, int], ...] = field(default=())
    #: update-exchange engine ("memory" | "sqlite")
    engine: str = "memory"
    #: sqlite-engine store path (None = in-memory; a filesystem path
    #: makes the exchange working set disk-resident / out-of-core)
    exchange_path: str | None = None
    #: store-resident exchange: the store is the authoritative
    #: instance; derived tuples are never materialized in Python
    resident: bool = False
    #: static-analysis pre-flight mode passed to ``CDSS.exchange``
    #: ("off" | "warn" | "error")
    validate: str = "off"
    #: observability hookup, forwarded to ``CDSS(trace=...)`` — a
    #: ``repro.obs`` tracer/sink, a JSONL path, or None (tracing off)
    trace: object | None = None


def chain_edges(num_peers: int) -> list[tuple[int, int]]:
    """Chain topology: peer i+1 feeds peer i (target peer is 0)."""
    return [(i + 1, i) for i in range(num_peers - 1)]


def branched_edges(num_peers: int) -> list[tuple[int, int]]:
    """Branched topology (Figure 6): a trunk chain into the target
    peer with side chains merging at interior trunk peers.

    The first half of the peers form the trunk (peer 0 is the target);
    the rest split into two contiguous side chains attached at one- and
    two-thirds of the trunk.  This reproduces the paper's structure of
    "short subpaths in the topology with no branches" punctuated by
    branch points, which is what differentiates the ASR variants in
    Figure 13.
    """
    if num_peers < 2:
        return []
    trunk = max(2, (num_peers + 1) // 2)
    edges = [(i + 1, i) for i in range(trunk - 1)]
    side_peers = list(range(trunk, num_peers))
    if side_peers:
        half = (len(side_peers) + 1) // 2
        sides = [side_peers[:half], side_peers[half:]]
        attach_points = [max(1, trunk // 3), max(1, (2 * trunk) // 3)]
        for side, attach in zip(sides, attach_points):
            previous = attach
            for peer in side:
                edges.append((peer, previous))
                previous = peer
    return edges


def _mapping_text(source: int, target: int) -> str:
    """The 2-source/2-target GLAV mapping between two peers."""
    first_attrs = ", ".join(f"x{i}" for i in range(1, 13))
    second_attrs = ", ".join(f"y{i}" for i in range(13, 26))
    src, dst = peer_name(source), peer_name(target)
    return (
        f"{dst}_R1(k, {first_attrs}), {dst}_R2(k, {second_attrs}) :- "
        f"{src}_R1(k, {first_attrs}), {src}_R2(k, {second_attrs})"
    )


def build_system(spec: TopologySpec) -> CDSS:
    """Construct the peers and mappings of one workload CDSS —
    *structure only*, no data and no exchange.

    This is what the static analyzer (``python -m repro.analysis
    chain:N``) builds: the full mapping program is available for
    analysis without a single tuple existing.
    """
    if spec.kind == "chain":
        edges = chain_edges(spec.num_peers)
    elif spec.kind == "branched":
        edges = branched_edges(spec.num_peers)
    else:
        raise ValueError(f"unknown topology kind {spec.kind!r}")
    spec.edges = tuple(edges)
    cdss = CDSS(
        (
            Peer.of(peer_name(i), partition_schemas(peer_name(i)))
            for i in range(spec.num_peers)
        ),
        trace=spec.trace,
    )
    for number, (source, target) in enumerate(edges, start=1):
        cdss.add_mapping(_mapping_text(source, target), name=f"m{number}")
    return cdss


def build_topology(spec: TopologySpec) -> CDSS:
    """Construct, populate, and exchange one workload CDSS."""
    cdss = build_system(spec)
    _populate(cdss, spec)
    cdss.exchange(
        engine=spec.engine,
        storage=spec.exchange_path,
        resident=spec.resident,
        validate=spec.validate,
    )
    return cdss


def _populate(cdss: CDSS, spec: TopologySpec) -> None:
    for peer_index in spec.data_peers:
        if not 0 <= peer_index < spec.num_peers:
            raise ValueError(f"data peer {peer_index} out of range")
        name = peer_name(peer_index)
        entries = generate_entries(
            spec.base_size,
            seed=spec.seed + peer_index,
            key_offset=peer_index * 10_000_000,
        )
        cdss.insert_local_many(f"{name}_R1", [e.first_row() for e in entries])
        cdss.insert_local_many(f"{name}_R2", [e.second_row() for e in entries])


def chain(
    num_peers: int,
    data_peers: Iterable[int] | None = None,
    base_size: int = 100,
    seed: int = 0,
    engine: str = "memory",
    exchange_path: str | None = None,
    resident: bool = False,
    validate: str = "off",
    trace: object | None = None,
) -> CDSS:
    """A chain CDSS (Figure 5).  ``data_peers`` defaults to the two
    most-upstream peers, matching Section 6.3's setting of "data at a
    few of the peers near the right-hand side"."""
    if data_peers is None:
        data_peers = upstream_data_peers(num_peers, 2)
    return build_topology(
        TopologySpec(
            "chain",
            num_peers,
            tuple(data_peers),
            base_size,
            seed,
            engine=engine,
            exchange_path=exchange_path,
            resident=resident,
            validate=validate,
            trace=trace,
        )
    )


def branched(
    num_peers: int,
    data_peers: Iterable[int] | None = None,
    base_size: int = 100,
    seed: int = 0,
    engine: str = "memory",
    exchange_path: str | None = None,
    resident: bool = False,
    validate: str = "off",
    trace: object | None = None,
) -> CDSS:
    """A branched CDSS (Figure 6) with data at the leaves by default."""
    if data_peers is None:
        data_peers = leaf_peers(num_peers)[:4]
    return build_topology(
        TopologySpec(
            "branched",
            num_peers,
            tuple(data_peers),
            base_size,
            seed,
            engine=engine,
            exchange_path=exchange_path,
            resident=resident,
            validate=validate,
            trace=trace,
        )
    )


def upstream_data_peers(num_peers: int, count: int) -> tuple[int, ...]:
    """The *count* peers farthest from the chain's target."""
    count = min(count, num_peers)
    return tuple(range(num_peers - count, num_peers))


def leaf_peers(num_peers: int) -> tuple[int, ...]:
    """Source peers of the branched topology (peers nobody feeds),
    most-upstream first — the natural data contributors."""
    fed = {target for _, target in branched_edges(num_peers)}
    sources = {source for source, _ in branched_edges(num_peers)}
    leaves = sorted(sources - fed, reverse=True)
    if not leaves:  # single-peer degenerate case
        return (0,)
    return tuple(leaves)


def instance_tuple_count(cdss: CDSS) -> int:
    """Materialized public-instance size (the right axes of Figs 9-10)."""
    return cdss.instance_size(public_only=True)
