"""Shared fixtures: the paper's running example (Example 2.1 /
Figure 1) in cyclic and acyclic variants, plus small workloads."""

from __future__ import annotations

import pytest

from repro.cdss import CDSS, Peer
from repro.relational import RelationSchema
from repro.storage import SQLiteStorage

EXAMPLE_MAPPINGS = [
    "m1: C(i, n) :- A(i, s, _), N(i, n, false)",
    "m2: N(i, n, true) :- A(i, n, _)",
    "m3: N(i, n, false) :- C(i, n)",
    "m4: O(n, h, true) :- A(i, n, h)",
    "m5: O(n, h, true) :- A(i, _, h), C(i, n)",
]


def example_peers() -> list[Peer]:
    """The three peers of Example 2.1."""
    return [
        Peer.of(
            "P1",
            [
                RelationSchema.of(
                    "A", ["id", ("sn", "str"), "len"], key=["id"]
                ),
                RelationSchema.of(
                    "C", ["id", ("name", "str")], key=["id", "name"]
                ),
            ],
        ),
        Peer.of(
            "P2",
            [
                RelationSchema.of(
                    "N",
                    ["id", ("name", "str"), ("canon", "bool")],
                    key=["id", "name"],
                )
            ],
        ),
        Peer.of(
            "P3",
            [
                RelationSchema.of(
                    "O",
                    [("name", "str"), "h", ("animal", "bool")],
                    key=["name"],
                )
            ],
        ),
    ]


def populate_example(system: CDSS) -> CDSS:
    """Figure 1's base data (boldface tuples)."""
    system.insert_local("A", (1, "sn1", 7))
    system.insert_local("A", (2, "sn1", 5))
    system.insert_local("N", (1, "cn1", False))
    system.insert_local("C", (2, "cn2"))
    system.exchange()
    return system


@pytest.fixture
def example_cdss() -> CDSS:
    """The full running example — note its provenance graph is CYCLIC
    (m1 and m3 derive C and N from each other)."""
    system = CDSS(example_peers())
    system.add_mappings(EXAMPLE_MAPPINGS)
    return populate_example(system)


@pytest.fixture
def acyclic_cdss() -> CDSS:
    """The running example without m3 — an acyclic provenance graph,
    the scope of the paper's SQL implementation."""
    system = CDSS(example_peers())
    system.add_mappings([m for m in EXAMPLE_MAPPINGS if not m.startswith("m3")])
    return populate_example(system)


@pytest.fixture
def acyclic_storage(acyclic_cdss) -> SQLiteStorage:
    storage = SQLiteStorage(acyclic_cdss)
    storage.load()
    yield storage
    storage.close()


@pytest.fixture
def example_storage(example_cdss) -> SQLiteStorage:
    storage = SQLiteStorage(example_cdss)
    storage.load()
    yield storage
    storage.close()
