"""A deliberately broken CDSS for the analyzer's CLI tests and the CI
smoke job: ``python -m repro.analysis tests/fixtures/broken_topology.py``
must exit non-zero with machine-readable diagnostics.

Defects: a non-weakly-acyclic mapping cycle (RA201), an unsafe rule
whose labeled nulls are unparameterized (RA101), and a trust policy
with dangling references (RA301/RA302).
"""

from repro.cdss import CDSS, Peer, TrustPolicy
from repro.relational import RelationSchema


def build_cdss() -> CDSS:
    system = CDSS(
        Peer.of(name, [RelationSchema.of(f"{name}_R", ["k", "v"], key=["k"])])
        for name in ("P0", "P1", "P2")
    )
    system.add_mappings(
        [
            "m_fwd: P1_R(v, w) :- P0_R(_, v)",
            "m_back: P0_R(v, w) :- P1_R(_, v)",
            "m_null: P2_R(x, y) :- P0_R(_, _)",
        ]
    )
    return system


def trust_policies() -> list[TrustPolicy]:
    policy = TrustPolicy()
    policy.distrust_relation("P9_R")
    policy.distrust_mapping("m_ghost")
    return [policy]
