"""Unit tests for the static analyzer (repro.analysis).

One test (at least) per diagnostic code, plus the CDSS
``validate=`` pre-flight, the reference-check parity sweep, the CLI,
and the EXPLAIN lowering lint on fresh and reopened stores.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.analysis import CODES, Diagnostic, analyze, analyze_program, make_report
from repro.analysis.diagnostics import ERROR, WARNING, Report, severity_of
from repro.analysis.lowering import lowering_pass
from repro.analysis.termination import build_position_graph
from repro.cdss import CDSS, Peer, TrustPolicy
from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_rule
from repro.datalog.planner import CompiledRule
from repro.datalog.rules import Rule
from repro.datalog.terms import SkolemTerm, Variable
from repro.errors import AnalysisError, ExchangeError, SchemaError
from repro.exchange.cache import CompiledExchangeProgram
from repro.exchange.sql_executor import ExchangeStore
from repro.relational import RelationSchema
from repro.relational.instance import Catalog

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BROKEN_FIXTURE = REPO_ROOT / "tests" / "fixtures" / "broken_topology.py"


def small_cdss() -> CDSS:
    system = CDSS(
        Peer.of(name, [RelationSchema.of(f"{name}_R", ["k", "v"], key=["k"])])
        for name in ("P0", "P1")
    )
    system.add_mapping("m1: P0_R(k, v) :- P1_R(k, v)")
    return system


def broken_cdss() -> CDSS:
    system = CDSS(
        Peer.of(name, [RelationSchema.of(f"{name}_R", ["k", "v"], key=["k"])])
        for name in ("P0", "P1")
    )
    system.add_mappings(
        [
            "m_fwd: P1_R(v, w) :- P0_R(_, v)",
            "m_back: P0_R(v, w) :- P1_R(_, v)",
        ]
    )
    return system


# -- diagnostics plumbing ---------------------------------------------------


def test_unknown_code_rejected():
    with pytest.raises(AnalysisError):
        Diagnostic("RA999", "nope")


def test_severity_catalog_is_closed():
    assert all(sev in (ERROR, WARNING) for sev, _ in CODES.values())
    assert severity_of("RA101") == ERROR
    assert severity_of("RA103") == WARNING


def test_report_ordering_errors_first():
    report = make_report(
        [
            Diagnostic("RA103", "warn", subject="b"),
            Diagnostic("RA201", "err", subject="a"),
        ]
    )
    assert [d.code for d in report.diagnostics] == ["RA201", "RA103"]
    assert not report.ok
    assert report.by_code("RA201")
    payload = json.loads(report.to_json())
    assert payload["errors"] == 1 and payload["warnings"] == 1


def test_report_raise_for_errors():
    report = make_report([Diagnostic("RA106", "boom", subject="m")])
    with pytest.raises(AnalysisError, match="RA106"):
        report.raise_for_errors()
    make_report([]).raise_for_errors()  # clean: no raise


# -- RA1xx: safety ----------------------------------------------------------


def test_ra101_empty_frontier():
    report = analyze_program([parse_rule("m: T(y) :- S(x)")])
    assert "RA101" in {d.code for d in report.errors}


def test_ra101_nullary_skolem_in_prepared_rule():
    rule = parse_rule("m: T(y) :- S(x)").skolemize()
    report = analyze_program([rule])
    assert "RA101" in report.codes()


def test_ra102_unbound_skolem_argument():
    rule = Rule(
        "m",
        (Atom("T", (SkolemTerm("f_m_v", (Variable("z"),)),)),),
        (Atom("S", (Variable("x"),)),),
    )
    report = analyze_program([rule])
    assert "RA102" in report.codes()


def test_ra103_singleton_variable():
    report = analyze_program([parse_rule("m: T(x) :- S(x, y)")])
    assert report.by_code("RA103")
    assert report.ok  # warning only


def test_ra103_wildcards_exempt():
    report = analyze_program([parse_rule("m: T(x) :- S(x, _)")])
    assert "RA103" not in report.codes()


def test_ra104_duplicate_mapping():
    rules = [
        parse_rule("m1: T(k, v) :- S(k, v)"),
        parse_rule("m2: T(k, v) :- S(k, v)"),
    ]
    report = analyze_program(rules)
    (dup,) = report.by_code("RA104")
    assert dup.subject == "m2" and "m1" in dup.message


def test_ra104_existentials_compare_up_to_skolem_naming():
    rules = [
        parse_rule("m1: T(k, w) :- S(k, v)").skolemize(),
        parse_rule("m2: T(k, w) :- S(k, v)").skolemize(),
    ]
    report = analyze_program(rules)
    assert report.by_code("RA104")


def test_ra105_arity_mismatch():
    catalog = Catalog()
    catalog.add(RelationSchema.of("S", ["k", "v"], key=["k"]))
    catalog.add(RelationSchema.of("T", ["k"], key=["k"]))
    report = analyze_program([parse_rule("m: T(k, k) :- S(k, v)")], catalog)
    assert "RA105" in report.codes()


def test_ra106_unknown_relation():
    catalog = Catalog()
    catalog.add(RelationSchema.of("S", ["k", "v"], key=["k"]))
    report = analyze_program([parse_rule("m: T(k) :- S(k, v)")], catalog)
    assert "RA106" in report.codes()


# -- RA2xx: termination -----------------------------------------------------


def test_ra201_special_edge_cycle():
    report = analyze_program(
        [
            parse_rule("ma: B(x, y) :- A(x, _)"),
            parse_rule("mb: A(z, y) :- B(_, z)"),
        ]
    )
    (diag,) = report.by_code("RA201")
    assert "ma" in diag.message and "mb" in diag.message
    assert "may not terminate" in diag.message


def test_ra201_self_loop():
    report = analyze_program([parse_rule("m: A(x, y) :- A(_, x)")])
    assert report.by_code("RA201")


def test_value_cycle_is_weakly_acyclic():
    """cyclic_provenance's C <-> N cycle copies values, never nulls."""
    report = analyze_program(
        [
            parse_rule("m1: C(i, n) :- N(i, n)"),
            parse_rule("m3: N(i, n) :- C(i, n)"),
        ]
    )
    assert "RA201" not in report.codes()


def test_existentials_off_cycle_are_weakly_acyclic():
    report = analyze_program(
        [
            parse_rule("ma: B(x, y) :- A(x, _)"),
            parse_rule("mb: A(x, y) :- B(x, _)"),
        ]
    )
    assert "RA201" not in report.codes()


def test_position_graph_shape():
    adjacency, edge_rules, special = build_position_graph(
        [parse_rule("m: B(x, y) :- A(x, z)")]
    )
    assert (("A", 0), ("B", 0)) in edge_rules
    assert any(dst == ("B", 1) for (_, dst) in special)


def test_ra202_isolated_peer():
    system = CDSS(
        Peer.of(name, [RelationSchema.of(f"{name}_R", ["k", "v"], key=["k"])])
        for name in ("P0", "P1", "P2")
    )
    system.add_mapping("m1: P0_R(k, v) :- P1_R(k, v)")
    report = analyze(system, lowering=False)
    (diag,) = report.by_code("RA202")
    assert diag.subject == "P2"
    assert report.ok  # warning only


def test_ra203_noop_mapping():
    report = analyze_program([parse_rule("m: T(x) :- T(x), S(x)")])
    assert report.by_code("RA203")


# -- RA3xx: trust lint ------------------------------------------------------


def test_ra301_unknown_condition_relation():
    system = small_cdss()
    policy = TrustPolicy()
    policy.trust_relation("NOPE")
    report = analyze(system, policies=[policy], lowering=False)
    (diag,) = report.by_code("RA301")
    assert diag.subject == "NOPE"


def test_ra302_unknown_distrusted_mapping():
    system = small_cdss()
    policy = TrustPolicy()
    policy.distrust_mapping("m_ghost")
    report = analyze(system, policies=[policy], lowering=False)
    assert report.by_code("RA302")


def test_ra302_local_rules_are_legal_targets():
    system = small_cdss()
    policy = TrustPolicy()
    policy.distrust_mapping("L_P1_R")
    report = analyze(system, policies=[policy], lowering=False)
    assert "RA302" not in report.codes()


def test_ra303_shadowed_local_condition():
    system = small_cdss()
    policy = TrustPolicy()
    policy.trust_relation("P1_R")
    policy.distrust_relation("P1_R_l")
    report = analyze(system, policies=[policy], lowering=False)
    (diag,) = report.by_code("RA303")
    assert diag.subject == "P1_R_l"


# -- RA4xx: lowering lint ---------------------------------------------------


def test_lowering_clean_on_small_system():
    report = analyze(small_cdss())
    assert report.ok
    assert report.stats["explained_statements"] > 0


def test_ra401_explain_failure_reported():
    """Simulated drift: a statement naming a missing table."""
    from repro.analysis.lowering import _explain

    store = ExchangeStore()
    diagnostics: list[Diagnostic] = []
    prepared = _explain(
        store, "SELECT * FROM __no_such_table", {}, (), "RA401", "m1", diagnostics
    )
    store.close()
    assert prepared == 0
    (diag,) = diagnostics
    assert diag.code == "RA401" and "m1" in diag.subject


def test_ra402_derives_into_local():
    system = small_cdss()
    system.add_mapping("m_loc: P0_R_l(k, v) :- P1_R(k, v)")
    report = analyze(system)
    assert "RA402" in report.codes()


def test_ra403_explain_failure_reported():
    from repro.analysis.lowering import _explain

    store = ExchangeStore()
    diagnostics: list[Diagnostic] = []
    prepared = _explain(
        store, "SELECT missing_col FROM P0_R", {}, (), "RA403", "lineage", diagnostics
    )
    store.close()
    assert prepared == 0
    (diag,) = diagnostics
    assert diag.code == "RA403"


def test_ra404_uncompilable_rule():
    rule = parse_rule("m: T(x) :- S(x)")
    crule = CompiledRule(rule, 1, ("S",), (("T", ()),), plans=())
    program = CompiledExchangeProgram("fp", (rule,), (crule,))
    diagnostics, stats = lowering_pass(program, Catalog(), {})
    assert any(d.code == "RA404" for d in diagnostics)
    assert stats["sql_rules"] == 0


def test_lowering_zero_rows_written():
    system = small_cdss()
    system.insert_local("P1_R", (1, 2))
    analyze(system)
    # the analyzer never exchanged: only pending local rows exist
    assert system.instance_size(public_only=False) == 1
    assert system.last_exchange is None


def test_lowering_fresh_and_reopened_store(tmp_path):
    path = str(tmp_path / "lint.db")
    system = small_cdss()
    store = ExchangeStore(path)
    report = analyze(system, store=store)
    assert report.ok
    store.close()
    reopened = ExchangeStore(path)
    report2 = analyze(system, store=reopened)
    assert report2.ok
    # schema-only: the store holds tables but no rows
    cursor = reopened.connection.execute("SELECT count(*) FROM P0_R")
    assert cursor.fetchone()[0] == 0
    reopened.close()


# -- validate= pre-flight ---------------------------------------------------


def test_validate_error_refuses_exchange():
    system = broken_cdss()
    system.insert_local("P0_R", (1, 2))
    with pytest.raises(AnalysisError, match="RA201"):
        system.exchange(validate="error")
    assert system.instance_size() == 0
    assert system.last_validation is not None
    assert not system.last_validation.ok


def test_validate_warn_runs_and_warns():
    system = broken_cdss()
    with pytest.warns(UserWarning, match="RA201"):
        result = system.exchange(validate="warn")
    assert result is not None
    assert system.last_validation is not None


def test_validate_clean_program_passes():
    system = small_cdss()
    system.insert_local("P1_R", (1, 2))
    system.exchange(validate="error")
    assert system.last_validation is not None
    assert system.last_validation.ok
    assert system.instance_size() == 2  # P1_R + copied P0_R


def test_validate_off_is_default_and_free():
    system = small_cdss()
    system.exchange()
    assert system.last_validation is None


def test_validate_unknown_mode_rejected():
    system = small_cdss()
    with pytest.raises(ExchangeError, match="validate"):
        system.exchange(validate="maybe")


# -- parity sweep: reference errors share one shape -------------------------


def test_unknown_relation_message_parity():
    system = small_cdss()
    with pytest.raises(SchemaError, match="unknown relation NOPE"):
        system.insert_local("NOPE", (1,))
    with pytest.raises(SchemaError, match="unknown relation NOPE"):
        system.delete_local("NOPE", (1,))
    with pytest.raises(SchemaError, match="unknown relation NOPE"):
        system.add_mapping("m9: P0_R(k, v) :- NOPE(k, v)")
    policy = TrustPolicy()
    policy.trust_relation("NOPE")
    with pytest.raises(SchemaError, match="unknown relation NOPE"):
        system.trusted(policy)


def test_unknown_mapping_trust_parity():
    system = small_cdss()
    policy = TrustPolicy()
    policy.distrust_mapping("m_ghost")
    with pytest.raises(SchemaError, match="unknown mapping m_ghost"):
        system.trusted(policy)


def test_trusted_accepts_local_rule_names():
    system = small_cdss()
    system.insert_local("P1_R", (1, 2))
    system.exchange()
    policy = TrustPolicy()
    policy.distrust_mapping("L_P1_R")
    trusted = system.trusted(policy)
    assert trusted  # annotated without raising


# -- workloads threading ----------------------------------------------------


def test_build_system_is_structure_only():
    from repro.workloads.topologies import TopologySpec, build_system

    system = build_system(TopologySpec("chain", 3, (), base_size=0))
    assert len(system.peers) == 3 and len(system.mappings) == 2
    assert system.instance_size(public_only=False) == 0
    assert system.last_exchange is None


def test_build_topology_validates():
    from repro.workloads.topologies import chain

    system = chain(3, base_size=2, validate="error")
    assert system.last_validation is not None
    assert system.last_validation.ok


def test_harness_reports_analysis_counts():
    from repro.workloads.harness import run_target_query
    from repro.workloads.topologies import chain

    system = chain(3, base_size=2, validate="error")
    result = run_target_query(system)
    assert result.analysis_errors == 0
    assert result.analysis_warnings == 0


# -- CLI --------------------------------------------------------------------


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        timeout=120,
        cwd=REPO_ROOT,
        env=env,
    )


def test_cli_clean_spec_targets():
    result = run_cli("chain:4", "branched:5")
    assert result.returncode == 0, result.stderr[-2000:]
    assert "clean" in result.stdout


def test_cli_broken_fixture_json():
    result = run_cli(str(BROKEN_FIXTURE), "--json")
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    (report,) = payload.values()
    assert report["ok"] is False
    codes = {d["code"] for d in report["diagnostics"]}
    assert {"RA101", "RA201", "RA301", "RA302"} <= codes
    assert all(d["severity"] in ("error", "warning") for d in report["diagnostics"])


def test_cli_missing_builder_is_ra001(tmp_path):
    target = tmp_path / "empty.py"
    target.write_text("x = 1\n")
    result = run_cli(str(target), "--json")
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    (report,) = payload.values()
    assert {d["code"] for d in report["diagnostics"]} == {"RA001"}


def test_cli_no_lowering_flag():
    result = run_cli("chain:3", "--no-lowering", "--json")
    assert result.returncode == 0
    payload = json.loads(result.stdout)
    (report,) = payload.values()
    assert "explained_statements" not in report["stats"]


def test_repro_lint_wrapper():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "repro_lint.py"), "chain:3"],
        capture_output=True,
        text=True,
        timeout=120,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stderr[-2000:]


# -- the running example stays clean ----------------------------------------


def test_running_example_analyzes_clean(example_cdss):
    report = analyze(example_cdss)
    assert report.ok
    assert "RA201" not in report.codes()  # cyclic but weakly acyclic


def test_report_is_frozen_value():
    report = analyze_program([parse_rule("m: T(x) :- S(x)")])
    assert isinstance(report, Report)
    with pytest.raises(AttributeError):
        report.diagnostics = ()
