"""Property tests for the static analyzer.

Two invariants:

* **clean programs run** — any generated chain/branched CDSS passes
  the analyzer, and the exchange it green-lights terminates with both
  engines agreeing on the instance;
* **broken programs diagnose** — injecting a known defect into a clean
  system yields the expected diagnostic code, never a raw traceback.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze
from repro.cdss import CDSS, Peer, TrustPolicy
from repro.relational import RelationSchema
from repro.workloads.topologies import TopologySpec, build_system, build_topology

KINDS = st.sampled_from(["chain", "branched"])


def fresh_system(num_peers: int = 2) -> CDSS:
    system = CDSS(
        Peer.of(name, [RelationSchema.of(f"{name}_R", ["k", "v"], key=["k"])])
        for name in (f"P{i}" for i in range(num_peers))
    )
    for i in range(num_peers - 1):
        system.add_mapping(f"m{i}: P{i + 1}_R(k, v) :- P{i}_R(k, v)")
    return system


# -- clean programs analyze clean and run ----------------------------------


@settings(max_examples=10, deadline=None)
@given(kind=KINDS, num_peers=st.integers(min_value=2, max_value=4))
def test_generated_topologies_analyze_clean(kind, num_peers):
    system = build_system(TopologySpec(kind, num_peers, (), base_size=0))
    report = analyze(system)
    assert report.ok, str(report)
    assert report.stats["explained_statements"] > 0


@settings(max_examples=6, deadline=None)
@given(
    kind=KINDS,
    num_peers=st.integers(min_value=2, max_value=3),
    base_size=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_validated_exchange_terminates_and_engines_agree(
    kind, num_peers, base_size, seed
):
    data_peers = (num_peers - 1,)
    memory = build_topology(
        TopologySpec(
            kind, num_peers, data_peers, base_size, seed=seed, validate="error"
        )
    )
    assert memory.last_validation is not None and memory.last_validation.ok

    sqlite = build_topology(
        TopologySpec(
            kind,
            num_peers,
            data_peers,
            base_size,
            seed=seed,
            engine="sqlite",
            validate="error",
        )
    )
    assert memory.instance == sqlite.instance
    assert memory.graph.tuples == sqlite.graph.tuples


# -- injected defects fire the expected code, never a traceback ------------


DEFECTS = [
    ("RA101", "m_bad: P1_R(x, y) :- P0_R(_, _)"),
    ("RA103", "m_bad: P1_R(k, k) :- P0_R(k, lonely)"),
    ("RA201", "m_bad: P0_R(v, w) :- P1_R(_, v)"),
    ("RA203", "m_bad: P0_R(k, v) :- P0_R(k, v)"),
]


@settings(max_examples=15, deadline=None)
@given(defect=st.sampled_from(DEFECTS), extra_peers=st.integers(0, 2))
def test_injected_rule_defects_are_flagged(defect, extra_peers):
    code, text = defect
    system = fresh_system(2 + extra_peers)
    if code == "RA201":
        # close the cycle: P1 already maps back into P0 via m0's inverse
        system.add_mapping("m_cycle: P1_R(v, w) :- P0_R(_, v)")
    system.add_mapping(text)
    report = analyze(system, lowering=False)
    assert code in report.codes(), f"{code} not in {report.codes()}"


@settings(max_examples=10, deadline=None)
@given(
    ghost=st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll"), max_codepoint=127),
        min_size=1,
        max_size=8,
    )
)
def test_dangling_trust_references_are_flagged(ghost):
    system = fresh_system()
    policy = TrustPolicy()
    policy.distrust_relation(f"X_{ghost}")
    policy.distrust_mapping(f"x_{ghost}")
    report = analyze(system, policies=[policy], lowering=False)
    assert {"RA301", "RA302"} <= report.codes()


@settings(max_examples=10, deadline=None)
@given(num_peers=st.integers(min_value=3, max_value=5))
def test_unmapped_peer_is_flagged_isolated(num_peers):
    system = fresh_system(num_peers)
    lonely = Peer.of("Q0", [RelationSchema.of("Q0_R", ["k", "v"], key=["k"])])
    system.add_peer(lonely)
    report = analyze(system, lowering=False)
    assert any(d.subject == "Q0" for d in report.by_code("RA202"))
