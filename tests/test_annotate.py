"""Tests for annotation evaluation (Section 2.1, Table 1) including the
running example of Figure 1 and cyclic fixpoints."""

import math

import pytest

from repro.errors import CycleError, SemiringError
from repro.provenance import (
    ProvenanceGraph,
    TupleNode,
    annotate,
    provenance_polynomial,
)
from repro.semirings import (
    BOTTOM,
    ConfidentialitySemiring,
    get_semiring,
)
from repro.semirings.polynomial import Polynomial


def diamond():
    """top has two derivations: m1(a, b) and m2(b)."""
    graph = ProvenanceGraph()
    a, b = TupleNode("A_l", (1,)), TupleNode("B_l", (2,))
    top = TupleNode("T", (0,))
    graph.derive("m1", [a, b], [top])
    graph.derive("m2", [b], [top])
    return graph, a, b, top


class TestAcyclic:
    def test_default_leaf_assignment_is_one(self):
        graph, a, b, top = diamond()
        values = annotate(graph, get_semiring("DERIVABILITY"))
        assert values[top] is True

    def test_counting(self):
        graph, a, b, top = diamond()
        values = annotate(graph, get_semiring("COUNT"))
        assert values[top] == 2

    def test_counting_with_multiplicities(self):
        graph, a, b, top = diamond()
        values = annotate(graph, get_semiring("COUNT"), {a: 2, b: 3})
        # m1: 2*3 + m2: 3
        assert values[top] == 9

    def test_weight(self):
        graph, a, b, top = diamond()
        values = annotate(graph, get_semiring("WEIGHT"), {a: 1.0, b: 2.0})
        assert values[top] == min(1.0 + 2.0, 2.0)

    def test_lineage(self):
        graph, a, b, top = diamond()
        values = annotate(
            graph, get_semiring("LINEAGE"), lambda leaf: frozenset([leaf])
        )
        assert values[top] == frozenset([a, b])

    def test_confidentiality(self):
        graph, a, b, top = diamond()
        semiring = ConfidentialitySemiring()
        values = annotate(graph, semiring, {a: "TS", b: "C"})
        # m1 needs max(TS, C) = TS; m2 needs C; union takes the less secure.
        assert values[top] == "C"

    def test_probability_events(self):
        graph, a, b, top = diamond()
        semiring = get_semiring("PROBABILITY")
        values = annotate(graph, semiring, lambda leaf: str(leaf))
        probability = semiring.probability(
            values[top], {str(a): 0.5, str(b): 0.5}
        )
        # (a AND b) OR b == b
        assert probability == pytest.approx(0.5)

    def test_mapping_function_applied(self):
        graph, a, b, top = diamond()
        semiring = get_semiring("TRUST")
        values = annotate(
            graph,
            semiring,
            mapping_functions={"m1": semiring.constant_function(False)},
        )
        assert values[top] is True  # m2 still trusts
        values = annotate(
            graph,
            semiring,
            mapping_functions={
                "m1": semiring.constant_function(False),
                "m2": semiring.constant_function(False),
            },
        )
        assert values[top] is False

    def test_leaf_assignment_validated(self):
        graph, a, b, top = diamond()
        with pytest.raises(SemiringError):
            annotate(graph, get_semiring("WEIGHT"), lambda leaf: -1.0)

    def test_polynomial_extraction(self):
        graph, a, b, top = diamond()
        poly = provenance_polynomial(graph, top)
        expected = Polynomial.variable(str(a)) * Polynomial.variable(
            str(b)
        ) + Polynomial.variable(str(b))
        assert poly == expected

    def test_polynomial_evaluation_matches_direct_annotation(self):
        """The universal property, on a real graph."""
        graph, a, b, top = diamond()
        poly = provenance_polynomial(graph, top)
        for name, assignment in [
            ("COUNT", {str(a): 2, str(b): 3}),
            ("DERIVABILITY", {str(a): True, str(b): False}),
            ("WEIGHT", {str(a): 1.0, str(b): 4.0}),
        ]:
            semiring = get_semiring(name)
            direct = annotate(
                graph, semiring, lambda leaf: assignment[str(leaf)]
            )
            assert poly.evaluate(semiring, assignment) == direct[top]


class TestCyclic:
    def make_cycle(self):
        """leaf -> a <-> b, with b also feeding t."""
        graph = ProvenanceGraph()
        leaf = TupleNode("L_l", (0,))
        a, b = TupleNode("A", (1,)), TupleNode("B", (1,))
        t = TupleNode("T", (1,))
        graph.derive("seed", [leaf], [a])
        graph.derive("ab", [a], [b])
        graph.derive("ba", [b], [a])
        graph.derive("out", [b], [t])
        return graph, leaf, a, b, t

    def test_derivability_through_cycle(self):
        graph, leaf, a, b, t = self.make_cycle()
        values = annotate(graph, get_semiring("DERIVABILITY"))
        assert values[t] is True

    def test_underivable_when_leaf_false(self):
        graph, leaf, a, b, t = self.make_cycle()
        values = annotate(graph, get_semiring("DERIVABILITY"), {leaf: False})
        # Nothing supports the cycle from below: fixpoint stays False
        # (a cyclic derivation alone is not a derivation).
        assert values[t] is False
        assert values[a] is False

    def test_weight_through_cycle(self):
        graph, leaf, a, b, t = self.make_cycle()
        values = annotate(graph, get_semiring("WEIGHT"), {leaf: 2.0})
        assert values[t] == 2.0

    def test_lineage_through_cycle(self):
        graph, leaf, a, b, t = self.make_cycle()
        values = annotate(
            graph, get_semiring("LINEAGE"), lambda n: frozenset([n])
        )
        assert values[t] == frozenset([leaf])

    def test_count_raises_on_cycle(self):
        graph, *_ = self.make_cycle()
        with pytest.raises(CycleError):
            annotate(graph, get_semiring("COUNT"))

    def test_polynomial_raises_on_cycle(self):
        graph, leaf, a, b, t = self.make_cycle()
        with pytest.raises(CycleError):
            provenance_polynomial(graph, t)


class TestRunningExample:
    """Annotations over the materialized Figure 1 graph."""

    def test_trust_q7(self, example_cdss):
        semiring = get_semiring("TRUST")
        values = annotate(
            example_cdss.graph,
            semiring,
            leaf_assignment=lambda n: not (
                n.relation == "A_l" and n.values[2] >= 6
            ),
            mapping_functions={"m4": semiring.constant_function(False)},
        )
        by_name = {
            node.values[0]: values[node]
            for node in example_cdss.graph.tuples_in("O")
        }
        assert by_name == {
            "cn1": False,
            "cn2": True,
            "sn1": False,
        }

    def test_derivability_all_true(self, example_cdss):
        values = annotate(example_cdss.graph, get_semiring("DERIVABILITY"))
        assert all(values[n] for n in example_cdss.graph.tuples_in("O"))

    def test_lineage_of_o_cn2(self, example_cdss):
        values = annotate(
            example_cdss.graph,
            get_semiring("LINEAGE"),
            lambda n: frozenset([str(n)]),
        )
        node = TupleNode("O", ("cn2", 5, True))
        assert values[node] == frozenset(
            {"A_l(2,sn1,5)", "C_l(2,cn2)"}
        )
