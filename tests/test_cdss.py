"""Tests for the CDSS substrate: mappings, exchange, deletions, trust."""

import pytest

from repro.cdss import CDSS, Peer, TrustPolicy, attribute_condition
from repro.errors import SchemaError
from repro.provenance import TupleNode
from repro.relational import RelationSchema


class TestSchemaMapping:
    def test_provenance_columns_match_figure2(self, example_cdss):
        columns = {
            name: [c.name for c in m.provenance_columns]
            for name, m in example_cdss.mappings.items()
        }
        # P1 and P5 store (i, n); projections m2-m4 also reduce to keys.
        assert columns["m1"] == ["i", "n"]
        assert columns["m5"] == ["i", "n"]

    def test_superfluous_detection(self, example_cdss):
        superfluous = {
            name
            for name, m in example_cdss.mappings.items()
            if m.is_superfluous
        }
        assert superfluous == {"m2", "m3", "m4"}

    def test_provenance_schema_names(self, example_cdss):
        schema = example_cdss.mappings["m1"].provenance_schema()
        assert schema.name == "P_m1"
        assert schema.attribute_names == ("i", "n")

    def test_unknown_relation_rejected(self):
        system = CDSS([Peer.of("P", [RelationSchema.of("R", ["a"])])])
        with pytest.raises(SchemaError):
            system.add_mapping("m: R(a) :- Zed(a)")

    def test_arity_mismatch_rejected(self):
        system = CDSS([Peer.of("P", [RelationSchema.of("R", ["a"])])])
        with pytest.raises(SchemaError):
            system.add_mapping("m: R(a, b) :- R(a)")

    def test_duplicate_mapping_name_rejected(self):
        system = CDSS([Peer.of("P", [RelationSchema.of("R", ["a"])])])
        system.add_mapping("m: R(a) :- R_l(a)", name="m")
        with pytest.raises(SchemaError):
            system.add_mapping("m: R(a) :- R_l(a)", name="m")


class TestPeers:
    def test_duplicate_peer_rejected(self):
        system = CDSS([Peer.of("P", [])])
        with pytest.raises(SchemaError):
            system.add_peer(Peer.of("P", []))

    def test_duplicate_relation_in_peer(self):
        with pytest.raises(SchemaError):
            Peer.of(
                "P", [RelationSchema.of("R", ["a"]), RelationSchema.of("R", ["b"])]
            )

    def test_local_relation_names(self):
        peer = Peer.of("P", [RelationSchema.of("R", ["a"])])
        assert peer.local_relation_names() == ["R_l"]


class TestExchange:
    def test_materializes_figure1_instance(self, example_cdss):
        rows = {tuple(r) for r in example_cdss.instance["O"]}
        assert rows == {
            ("cn1", 7, True),
            ("cn2", 5, True),
            ("sn1", 5, True),
            ("sn1", 7, True),
        }

    def test_graph_matches_figure1_shape(self, example_cdss):
        tuples, derivations = example_cdss.graph.size()
        assert tuples == 16
        assert derivations == 14

    def test_incremental_exchange_fires_less(self, example_cdss):
        example_cdss.insert_local("A", (3, "sn9", 4))
        result = example_cdss.exchange()
        assert result.firings <= 5
        assert example_cdss.instance.contains("O", ("sn9", 4, True))

    def test_insert_local_accepts_public_or_local_name(self, example_cdss):
        assert example_cdss.insert_local("A_l", (9, "x", 1))
        assert example_cdss.instance.contains("A_l", (9, "x", 1))

    def test_instance_size_public_only(self, example_cdss):
        public = example_cdss.instance_size(public_only=True)
        total = example_cdss.instance_size(public_only=False)
        assert total == public + 4  # the four local contributions


class TestDeletionPropagation:
    def test_q5_deletion_garbage_collects(self, example_cdss):
        example_cdss.insert_local("A", (3, "sn9", 4))
        example_cdss.exchange()
        assert example_cdss.instance.contains("O", ("sn9", 4, True))
        example_cdss.delete_local("A", (3, "sn9", 4))
        removed = example_cdss.propagate_deletions()
        assert removed >= 3
        assert not example_cdss.instance.contains("O", ("sn9", 4, True))
        assert not example_cdss.instance.contains("A", (3, "sn9", 4))

    def test_deletion_keeps_alternately_derivable(self, acyclic_cdss):
        # O(cn2,5,true) via m5 from A(2) & C_l(2,cn2); deleting C_l
        # must keep tuples that are still derivable another way.
        acyclic_cdss.delete_local("C", (2, "cn2"))
        acyclic_cdss.propagate_deletions()
        assert not acyclic_cdss.instance.contains("O", ("cn2", 5, True))
        # m4-derived tuples survive
        assert acyclic_cdss.instance.contains("O", ("sn1", 5, True))

    def test_noop_when_nothing_deleted(self, example_cdss):
        assert example_cdss.propagate_deletions() == 0


class TestTrustPolicy:
    def test_policy_compiles_to_assignment(self, example_cdss):
        policy = TrustPolicy()
        policy.trust_relation("C")
        schema = example_cdss.catalog["A"]
        policy.trust_if(
            "A", attribute_condition(schema, "len", lambda v: v < 6)
        )
        policy.distrust_mapping("m4")
        trusted = example_cdss.trusted(policy)
        by_name = {
            node.values[0]: trusted[node]
            for node in example_cdss.graph.tuples_in("O")
        }
        assert by_name == {"cn1": False, "cn2": True, "sn1": False}

    def test_default_trust(self):
        policy = TrustPolicy(default_trust=False)
        assign = policy.leaf_assignment()
        assert assign(TupleNode("A_l", (1, "x", 2))) is False

    def test_distrust_relation(self):
        policy = TrustPolicy()
        policy.distrust_relation("A")
        assign = policy.leaf_assignment()
        assert assign(TupleNode("A_l", (1, "x", 2))) is False
        assert assign(TupleNode("B_l", (1,))) is True


class TestLineageHelper:
    def test_lineage_of_derived_tuple(self, example_cdss):
        node = TupleNode("O", ("cn2", 5, True))
        lineage = example_cdss.lineage(node)
        assert lineage == frozenset(
            {TupleNode("A_l", (2, "sn1", 5)), TupleNode("C_l", (2, "cn2"))}
        )

    def test_derivability_q5(self, example_cdss):
        values = example_cdss.derivability()
        assert all(
            values[node] for node in example_cdss.graph.tuples_in("O")
        )


class TestDeletionValidation:
    """delete_local must reject unknown relations exactly like
    insert_local does (it used to silently accept any name)."""

    def test_delete_local_unknown_relation_rejected(self, example_cdss):
        with pytest.raises(SchemaError):
            example_cdss.delete_local("Nope", (1,))

    def test_delete_local_many_unknown_relation_rejected(self, example_cdss):
        with pytest.raises(SchemaError):
            example_cdss.delete_local_many("Nope", [(1,), (2,)])

    def test_delete_local_many_counts_present_rows(self, example_cdss):
        example_cdss.insert_local("A", (8, "sn8", 1))
        example_cdss.exchange()
        removed = example_cdss.delete_local_many(
            "A", [(8, "sn8", 1), (99, "zz", 0)]
        )
        assert removed == 1

    def test_delete_local_accepts_local_name(self, example_cdss):
        # Both the public and the _l spelling address the contribution.
        example_cdss.insert_local("A", (8, "sn8", 1))
        assert example_cdss.delete_local("A_l", (8, "sn8", 1))
