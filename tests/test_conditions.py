"""Tests for ProQL condition/operand evaluation."""

import pytest

from repro.errors import ProQLSemanticError
from repro.proql.ast import (
    And,
    AttrAccess,
    BinaryOp,
    Compare,
    Identifier,
    Literal,
    Membership,
    Not,
    Or,
    VarRef,
)
from repro.proql.conditions import (
    UNDEFINED,
    compare_values,
    eval_condition,
    eval_operand,
    mapping_name_constraints,
    tuple_in_relation,
)
from repro.provenance import DerivationNode, TupleNode
from repro.relational import Catalog, RelationSchema

CATALOG = Catalog(
    [
        RelationSchema.of("A", ["id", ("sn", "str"), "len"], key=["id"]),
        RelationSchema.of("A_l", ["id", ("sn", "str"), "len"], key=["id"]),
    ]
)

A_NODE = TupleNode("A", (1, "sn1", 7))
A_LOCAL = TupleNode("A_l", (1, "sn1", 7))
DERIV = DerivationNode("m4", (A_NODE,), ())


class TestOperands:
    def test_literal_and_identifier(self):
        assert eval_operand(Literal(3), {}, CATALOG) == 3
        assert eval_operand(Identifier("m1"), {}, CATALOG) == "m1"

    def test_varref(self):
        assert eval_operand(VarRef("x"), {"x": 5}, CATALOG) == 5
        with pytest.raises(ProQLSemanticError):
            eval_operand(VarRef("x"), {}, CATALOG)

    def test_attr_access(self):
        env = {"x": A_NODE}
        assert eval_operand(AttrAccess("x", "len"), env, CATALOG) == 7
        assert eval_operand(AttrAccess("x", "zz"), env, CATALOG) is UNDEFINED

    def test_attr_access_on_local_tuple_uses_public_schema(self):
        env = {"x": A_LOCAL}
        assert eval_operand(AttrAccess("x", "len"), env, CATALOG) == 7

    def test_attr_access_on_non_tuple(self):
        assert eval_operand(AttrAccess("x", "a"), {"x": 3}, CATALOG) is UNDEFINED

    def test_binary_op(self):
        expr = BinaryOp("+", VarRef("z"), Literal(2))
        assert eval_operand(expr, {"z": 3}, CATALOG) == 5
        expr = BinaryOp("*", Literal(3), Literal(4))
        assert eval_operand(expr, {}, CATALOG) == 12

    def test_binary_op_type_clash_undefined(self):
        expr = BinaryOp("+", VarRef("z"), Literal(2))
        assert eval_operand(expr, {"z": None}, CATALOG) is UNDEFINED


class TestCompare:
    def test_numeric_operators(self):
        assert compare_values(1, "<", 2)
        assert compare_values(2, "<=", 2)
        assert compare_values(3, ">", 2)
        assert compare_values(3, ">=", 3)
        assert compare_values(3, "=", 3)
        assert compare_values(3, "!=", 4)

    def test_undefined_is_false(self):
        assert not compare_values(UNDEFINED, "=", 1)
        assert not compare_values(1, "=", UNDEFINED)

    def test_type_clash_is_false(self):
        assert not compare_values(1, "<", "a")

    def test_derivation_compares_by_mapping_name(self):
        assert compare_values(DERIV, "=", "m4")
        assert not compare_values(DERIV, "=", "m5")

    def test_unknown_operator(self):
        with pytest.raises(ProQLSemanticError):
            compare_values(1, "~", 2)


class TestConditions:
    def test_membership(self):
        assert tuple_in_relation(A_NODE, "A")
        assert tuple_in_relation(A_LOCAL, "A")
        assert not tuple_in_relation(A_NODE, "B")
        condition = Membership("x", "A")
        assert eval_condition(condition, {"x": A_NODE}, CATALOG)
        assert not eval_condition(condition, {"x": DERIV}, CATALOG)

    def test_boolean_connectives(self):
        true = Compare(Literal(1), "=", Literal(1))
        false = Compare(Literal(1), "=", Literal(2))
        assert eval_condition(And((true, true)), {}, CATALOG)
        assert not eval_condition(And((true, false)), {}, CATALOG)
        assert eval_condition(Or((false, true)), {}, CATALOG)
        assert eval_condition(Not(false), {}, CATALOG)

    def test_case_style_condition(self):
        # CASE $y in A and $y.len >= 6
        condition = And(
            (
                Membership("y", "A"),
                Compare(AttrAccess("y", "len"), ">=", Literal(6)),
            )
        )
        assert eval_condition(condition, {"y": A_NODE}, CATALOG)
        small = TupleNode("A", (2, "x", 5))
        assert not eval_condition(condition, {"y": small}, CATALOG)

    def test_path_condition_requires_checker(self):
        from repro.proql.ast import PathCondition, PathExpr, TupleSpec

        condition = PathCondition(PathExpr((TupleSpec("A", "x"),), ()))
        with pytest.raises(ProQLSemanticError):
            eval_condition(condition, {}, CATALOG)
        assert eval_condition(
            condition, {}, CATALOG, path_checker=lambda pc, env: True
        )


class TestMappingNameConstraints:
    def parse_where(self, text):
        from repro.proql.parser import parse_query

        return parse_query(f"FOR [$x] <$p [] WHERE {text} RETURN $x").where

    def test_single_equality(self):
        where = self.parse_where("$p = m1")
        assert mapping_name_constraints(where, "p") == {"m1"}

    def test_disjunction(self):
        where = self.parse_where("$p = m1 OR $p = m2")
        assert mapping_name_constraints(where, "p") == {"m1", "m2"}

    def test_reversed_equality(self):
        where = self.parse_where("m3 = $p")
        assert mapping_name_constraints(where, "p") == {"m3"}

    def test_conjunction_intersects(self):
        where = self.parse_where("$p = m1 AND $x.a = 3")
        assert mapping_name_constraints(where, "p") == {"m1"}

    def test_unrelated_condition_gives_none(self):
        where = self.parse_where("$x.a = 3")
        assert mapping_name_constraints(where, "p") is None

    def test_disjunction_with_unrelated_gives_none(self):
        where = self.parse_where("$p = m1 OR $x.a = 3")
        assert mapping_name_constraints(where, "p") is None

    def test_none_condition(self):
        assert mapping_name_constraints(None, "p") is None
