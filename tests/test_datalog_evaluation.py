"""Tests for provenance-recording fixpoint evaluation."""

import pytest

from repro.datalog import evaluate, evaluate_naive, parse_program
from repro.datalog.terms import SkolemValue
from repro.errors import EvaluationError
from repro.provenance.graph import TupleNode
from repro.relational import Catalog, Instance, RelationSchema


def make_instance(*relations):
    return Instance(Catalog([RelationSchema.of(name, attrs) for name, attrs in relations]))


def transitive_closure_setup():
    instance = make_instance(("E", ["a", "b"]), ("T", ["a", "b"]))
    for edge in [(1, 2), (2, 3), (3, 4)]:
        instance.insert("E", edge)
    program = parse_program(
        """
        base: T(x, y) :- E(x, y)
        step: T(x, z) :- T(x, y), E(y, z)
        """
    )
    return program, instance


class TestFixpoint:
    def test_transitive_closure(self):
        program, instance = transitive_closure_setup()
        evaluate(program, instance)
        assert instance["T"] == frozenset(
            {(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4)}
        )

    def test_naive_matches_semi_naive(self):
        program, instance1 = transitive_closure_setup()
        _, instance2 = transitive_closure_setup()
        semi = evaluate(program, instance1)
        naive = evaluate_naive(program, instance2)
        assert instance1 == instance2
        assert semi.graph == naive.graph

    def test_all_derivations_recorded(self):
        # T(1,3) has exactly one derivation; diamond gives two for T(1,4).
        instance = make_instance(("E", ["a", "b"]), ("T", ["a", "b"]))
        for edge in [(1, 2), (1, 3), (2, 4), (3, 4)]:
            instance.insert("E", edge)
        program = parse_program(
            "base: T(x, y) :- E(x, y)\nstep: T(x, z) :- T(x, y), E(y, z)"
        )
        result = evaluate(program, instance)
        node = TupleNode("T", (1, 4))
        derivations = result.graph.derivations_of(node)
        assert len(derivations) == 2  # through 2 and through 3

    def test_multi_head_rule_single_derivation_node(self):
        instance = make_instance(("S", ["x"]), ("R", ["x"]), ("Q", ["x"]))
        instance.insert("S", (1,))
        program = parse_program("m: R(x), Q(x) :- S(x)")
        result = evaluate(program, instance)
        (derivation,) = result.graph.derivations
        assert {t.relation for t in derivation.targets} == {"R", "Q"}
        assert derivation.sources == (TupleNode("S", (1,)),)

    def test_skolem_values_in_derived_tuples(self):
        instance = make_instance(("S", ["x"]), ("R", ["x", "z"]))
        instance.insert("S", (5,))
        program = parse_program("g: R(x, z) :- S(x)")
        result = evaluate(program, instance)
        (row,) = instance["R"]
        assert row[1] == SkolemValue("f_g_z", (5,))
        assert result.inserted == 1

    def test_initial_delta_incremental(self):
        program, instance = transitive_closure_setup()
        result = evaluate(program, instance)
        firings_full = result.firings
        # Incremental insertion of one new edge.
        instance.insert("E", (4, 5))
        incremental = evaluate(
            program, instance, graph=result.graph, initial_delta={"E": {(4, 5)}}
        )
        assert instance.contains("T", (1, 5))
        assert incremental.firings < firings_full
        # All provenance still in one graph.
        assert result.graph.derivations_of(TupleNode("T", (4, 5)))

    def test_initial_delta_must_be_in_instance(self):
        # A delta row missing from the instance cannot be joined through
        # the indexes, which would silently lose firings — reject it.
        program, instance = transitive_closure_setup()
        evaluate(program, instance)
        with pytest.raises(EvaluationError, match="initial_delta"):
            evaluate(program, instance, initial_delta={"E": {(4, 5)}})

    def test_empty_body_rejected(self):
        instance = make_instance(("R", ["x"]))
        program = parse_program("f: R(1)")
        with pytest.raises(EvaluationError):
            evaluate(program, instance)

    def test_max_iterations_guard(self):
        program, instance = transitive_closure_setup()
        with pytest.raises(EvaluationError):
            evaluate(program, instance, max_iterations=1)

    def test_constants_in_body_filter(self):
        instance = make_instance(("S", ["x", "y"]), ("R", ["x"]))
        instance.insert("S", (1, 10))
        instance.insert("S", (2, 20))
        program = parse_program("m: R(x) :- S(x, 10)")
        evaluate(program, instance)
        assert instance["R"] == frozenset({(1,)})

    def test_shared_variable_join(self):
        instance = make_instance(("S", ["x", "y"]), ("T", ["y", "z"]), ("R", ["x", "z"]))
        instance.insert("S", (1, 2))
        instance.insert("S", (1, 9))
        instance.insert("T", (2, 3))
        program = parse_program("m: R(x, z) :- S(x, y), T(y, z)")
        evaluate(program, instance)
        assert instance["R"] == frozenset({(1, 3)})

    def test_repeated_variable_in_atom(self):
        instance = make_instance(("S", ["x", "y"]), ("R", ["x"]))
        instance.insert("S", (1, 1))
        instance.insert("S", (1, 2))
        program = parse_program("m: R(x) :- S(x, x)")
        evaluate(program, instance)
        assert instance["R"] == frozenset({(1,)})

    def test_firings_count_distinct_derivations(self):
        # Both body atoms of the same firing match rows of the current
        # delta; it must be enumerated once (from its first delta atom),
        # not once per delta atom.
        instance = make_instance(("R", ["a", "b"]), ("U", ["a", "b"]))
        instance.insert("R", (1, 2))
        instance.insert("R", (2, 3))
        program = parse_program("j: U(x, z) :- R(x, y), R(y, z)")
        result = evaluate(program, instance)
        assert instance["U"] == frozenset({(1, 3)})
        assert result.firings == len(result.graph.derivations) == 1

    def test_firings_deduped_on_incremental_delta(self):
        # With an old row alongside two new delta rows, the plan seeded
        # at the second atom runs (the relation is only partially new)
        # and its guard must reject the firing already enumerated from
        # the first delta atom.
        instance = make_instance(("R", ["a", "b"]), ("U", ["a", "b"]))
        instance.insert("R", (9, 9))
        program = parse_program("j: U(x, z) :- R(x, y), R(y, z)")
        result = evaluate(program, instance)
        instance.insert("R", (1, 2))
        instance.insert("R", (2, 3))
        incremental = evaluate(
            program,
            instance,
            graph=result.graph,
            initial_delta={"R": {(1, 2), (2, 3)}},
        )
        assert instance.contains("U", (1, 3))
        assert incremental.firings == 1
        assert incremental.dedup_skipped >= 1

    def test_engine_statistics_populated(self):
        program, instance = transitive_closure_setup()
        result = evaluate(program, instance)
        # One plan per body atom: base has 1, step has 2.
        assert result.plans_compiled == 3
        assert result.index_hits > 0

    def test_leaves_are_local_tuples(self):
        instance = make_instance(("R_l", ["x"]), ("R", ["x"]), ("S", ["x"]))
        instance.insert("R_l", (1,))
        program = parse_program("L_R: R(x) :- R_l(x)\nm: S(x) :- R(x)")
        result = evaluate(program, instance)
        leaves = list(result.graph.leaves())
        assert leaves == [TupleNode("R_l", (1,))]
