"""Unit tests for the Datalog rule/program parser."""

import pytest

from repro.datalog import Atom, Constant, SkolemTerm, Variable, parse_program, parse_rule
from repro.datalog.terms import is_wildcard
from repro.errors import DatalogError, DatalogParseError


class TestParseRule:
    def test_named_rule(self):
        rule = parse_rule("m1: C(i, n) :- A(i, s, _), N(i, n, false)")
        assert rule.name == "m1"
        assert [a.relation for a in rule.head] == ["C"]
        assert [a.relation for a in rule.body] == ["A", "N"]

    def test_default_name_used_when_unnamed(self):
        rule = parse_rule("C(i, n) :- A(i, n)", name="x9")
        assert rule.name == "x9"

    def test_constants(self):
        rule = parse_rule("R(x) :- S(x, 3, 2.5, 'txt', true, false, null)")
        values = [t.value for t in rule.body[0].terms[1:]]
        assert values == [3, 2.5, "txt", True, False, None]

    def test_negative_number(self):
        rule = parse_rule("R(x) :- S(x, -4)")
        assert rule.body[0].terms[1] == Constant(-4)

    def test_wildcards_are_fresh(self):
        rule = parse_rule("R(x) :- S(x, _, _)")
        w1, w2 = rule.body[0].terms[1:]
        assert is_wildcard(w1) and is_wildcard(w2)
        assert w1 != w2

    def test_multi_head(self):
        rule = parse_rule("R(x), S(x, y) :- T(x, y)")
        assert len(rule.head) == 2

    def test_skolem_term(self):
        rule = parse_rule("R(x, f(x, y)) :- S(x, y)")
        skolem = rule.head[0].terms[1]
        assert isinstance(skolem, SkolemTerm)
        assert skolem.function == "f"
        assert skolem.args == (Variable("x"), Variable("y"))

    def test_escaped_quote_in_string(self):
        rule = parse_rule(r"R(x) :- S(x, 'it\'s')")
        assert rule.body[0].terms[1] == Constant("it's")

    def test_zero_arity_atom(self):
        rule = parse_rule("R() :- S()")
        assert rule.head[0].arity == 0

    def test_fact_without_body(self):
        rule = parse_rule("R(1, 2)")
        assert rule.body == ()

    @pytest.mark.parametrize(
        "text",
        [
            "R(x :- S(x)",
            "R(x) :- ",
            ":- S(x)",
            "R(x) x",
            "R(x) :- S(x) extra(y)",
            "R(%)",
        ],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(DatalogParseError):
            parse_rule(text)


class TestParseProgram:
    def test_lines_and_comments(self):
        program = parse_program(
            """
            % local rules
            L1: A(i) :- A_l(i)

            m1: B(i) :- A(i)  % copy
            B(i) :- A(i), A_l(i)
            """
        )
        assert [r.name for r in program] == ["L1", "m1", "r3"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(DatalogError):
            parse_program("m1: A(i) :- B(i)\nm1: C(i) :- B(i)")

    def test_program_lookup(self):
        program = parse_program("m1: A(i) :- B(i)")
        assert program["m1"].name == "m1"
        assert "m1" in program
        assert "m2" not in program
        with pytest.raises(DatalogError):
            program["m2"]

    def test_rules_defining_and_using(self):
        program = parse_program(
            "m1: A(i) :- B(i)\nm2: C(i) :- A(i)\nm3: A(i), D(i) :- C(i)"
        )
        assert [r.name for r in program.rules_defining("A")] == ["m1", "m3"]
        assert [r.name for r in program.rules_using("A")] == ["m2"]

    def test_edb_idb_partition(self):
        program = parse_program("m1: A(i) :- B(i)\nm2: C(i) :- A(i)")
        assert program.idb_relations() == {"A", "C"}
        assert program.edb_relations() == {"B"}

    def test_recursion_detection(self):
        acyclic = parse_program("m1: A(i) :- B(i)\nm2: C(i) :- A(i)")
        assert not acyclic.is_recursive()
        cyclic = parse_program("m1: A(i) :- B(i)\nm2: B(i) :- A(i)")
        assert cyclic.is_recursive()
        self_loop = parse_program("m1: A(i) :- A(i)")
        assert self_loop.is_recursive()
