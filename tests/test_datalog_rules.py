"""Unit tests for rules: safety, Skolemization, renaming, grounding."""

import pytest

from repro.datalog import Atom, Constant, SkolemTerm, Variable, parse_rule
from repro.datalog.terms import SkolemValue, ground
from repro.errors import DatalogError


class TestSafety:
    def test_safe_rule(self):
        assert parse_rule("R(x) :- S(x, y)").is_safe()

    def test_unsafe_rule(self):
        rule = parse_rule("R(x, z) :- S(x)")
        assert not rule.is_safe()
        with pytest.raises(DatalogError):
            rule.check_safe()

    def test_empty_head_rejected(self):
        with pytest.raises(DatalogError):
            from repro.datalog.rules import Rule

            Rule("bad", (), (Atom("S", (Variable("x"),)),))


class TestSkolemize:
    def test_existential_becomes_skolem(self):
        rule = parse_rule("glav: R(x, z) :- S(x)").skolemize()
        assert rule.is_safe()
        skolem = rule.head[0].terms[1]
        assert isinstance(skolem, SkolemTerm)
        assert skolem.function == "f_glav_z"
        assert skolem.args == (Variable("x"),)

    def test_skolem_args_are_frontier_variables(self):
        rule = parse_rule("g: R(x, y, z) :- S(x, y), T(y)").skolemize()
        skolem = rule.head[0].terms[2]
        assert set(skolem.args) == {Variable("x"), Variable("y")}

    def test_no_existentials_is_identity(self):
        rule = parse_rule("m: R(x) :- S(x)")
        assert rule.skolemize() is rule

    def test_skolem_grounds_to_skolem_value(self):
        rule = parse_rule("g: R(x, z) :- S(x)").skolemize()
        row = rule.head[0].ground({Variable("x"): 7})
        assert row[0] == 7
        assert row[1] == SkolemValue("f_g_z", (7,))

    def test_equal_bindings_give_equal_nulls(self):
        rule = parse_rule("g: R(x, z) :- S(x)").skolemize()
        first = rule.head[0].ground({Variable("x"): 7})
        second = rule.head[0].ground({Variable("x"): 7})
        third = rule.head[0].ground({Variable("x"): 8})
        assert first == second
        assert first != third


class TestRuleStructure:
    def test_source_target_relations(self):
        rule = parse_rule("m: R(x), S(x) :- T(x), U(x)")
        assert rule.source_relations() == ("T", "U")
        assert rule.target_relations() == ("R", "S")

    def test_rename_variables(self):
        rule = parse_rule("m: R(x) :- S(x, y)")
        renamed = rule.rename_variables("_1")
        assert renamed.head[0].terms == (Variable("x_1"),)
        assert renamed.body[0].terms == (Variable("x_1"), Variable("y_1"))
        # original untouched
        assert rule.head[0].terms == (Variable("x"),)

    def test_str_roundtrips_through_parser(self):
        rule = parse_rule("m: R(x, 3) :- S(x, 'a'), T(x, true)")
        reparsed = parse_rule(str(rule))
        assert reparsed == rule


class TestGround:
    def test_ground_constant_and_variable(self):
        assert ground(Constant(5), {}) == 5
        assert ground(Variable("x"), {Variable("x"): "v"}) == "v"

    def test_ground_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            ground(Variable("x"), {})

    def test_atom_match_binds(self):
        from repro.datalog.atoms import match_tuple

        atom = Atom("R", (Variable("x"), Constant(2), Variable("x")))
        assert match_tuple(atom, (1, 2, 1), {}) == {Variable("x"): 1}
        assert match_tuple(atom, (1, 2, 3), {}) is None
        assert match_tuple(atom, (1, 9, 1), {}) is None
        assert match_tuple(atom, (1, 2), {}) is None
