"""The docs checker (tools/check_docs.py) runs green on the repo —
and actually detects problems when they exist."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools import check_docs


def test_repo_markdown_links_resolve():
    assert check_docs.check_markdown_links(REPO_ROOT) == []


def test_public_cdss_api_is_documented():
    assert check_docs.check_cdss_docstrings() == []


def test_key_docs_exist_and_are_linked():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme
    roadmap = (REPO_ROOT / "ROADMAP.md").read_text(encoding="utf-8")
    assert "architecture.md" in roadmap
    assert (REPO_ROOT / "docs" / "architecture.md").exists()


def test_analysis_code_catalog_matches_docs():
    sys.path.insert(0, str(REPO_ROOT / "src"))
    assert check_docs.check_analysis_catalog(REPO_ROOT) == []


def test_span_taxonomy_matches_docs():
    sys.path.insert(0, str(REPO_ROOT / "src"))
    assert check_docs.check_observability_catalog(REPO_ROOT) == []


def test_graph_index_catalog_matches_docs():
    sys.path.insert(0, str(REPO_ROOT / "src"))
    assert check_docs.check_graph_index_catalog(REPO_ROOT) == []


def test_graph_index_checker_detects_drift(tmp_path):
    sys.path.insert(0, str(REPO_ROOT / "src"))
    docs = tmp_path / "docs"
    docs.mkdir()
    # one documented-but-unknown name; everything real is undocumented
    (docs / "graph-index.md").write_text(
        "## Spans and metrics\n\n| `no.such.name` | span | ... |\n",
        encoding="utf-8",
    )
    errors = check_docs.check_graph_index_catalog(tmp_path)
    assert any("unknown name no.such.name" in e for e in errors)
    assert any("index.maintain is undocumented" in e for e in errors)
    assert any("graph_query.index_hit is undocumented" in e for e in errors)


def test_serving_catalog_matches_docs():
    sys.path.insert(0, str(REPO_ROOT / "src"))
    assert check_docs.check_serving_catalog(REPO_ROOT) == []


def test_serving_checker_detects_drift(tmp_path):
    sys.path.insert(0, str(REPO_ROOT / "src"))
    docs = tmp_path / "docs"
    docs.mkdir()
    # one documented-but-unknown name; everything real is undocumented
    (docs / "serving.md").write_text(
        "## Spans and metrics\n\n| `no.such.name` | span | ... |\n",
        encoding="utf-8",
    )
    errors = check_docs.check_serving_catalog(tmp_path)
    assert any("unknown name no.such.name" in e for e in errors)
    assert any("serve.query is undocumented" in e for e in errors)
    assert any("serve.checkpoints is undocumented" in e for e in errors)


def test_span_catalog_checker_detects_drift(tmp_path):
    sys.path.insert(0, str(REPO_ROOT / "src"))
    docs = tmp_path / "docs"
    docs.mkdir()
    # one documented-but-unknown span; everything real is undocumented
    (docs / "observability.md").write_text(
        "## Span taxonomy\n\n| `no.such.span` | x | ... |\n",
        encoding="utf-8",
    )
    errors = check_docs.check_observability_catalog(tmp_path)
    assert any("unknown span no.such.span" in e for e in errors)
    assert any("span exchange.round is undocumented" in e for e in errors)


def test_catalog_checker_detects_drift(tmp_path):
    sys.path.insert(0, str(REPO_ROOT / "src"))
    docs = tmp_path / "docs"
    docs.mkdir()
    # one missing code, one unknown code, one wrong severity
    (docs / "analysis.md").write_text(
        "| RA101 | warning | ... |\n| RA999 | error | ... |\n",
        encoding="utf-8",
    )
    errors = check_docs.check_analysis_catalog(tmp_path)
    assert any("RA201 is undocumented" in e for e in errors)
    assert any("unknown code RA999" in e for e in errors)
    assert any("RA101 documented as warning" in e for e in errors)
    # the query-analysis family needs its own catalog section
    assert any("missing a '### RA5xx' section" in e for e in errors)


def test_checker_detects_broken_links(tmp_path):
    (tmp_path / "doc.md").write_text(
        "see [missing](nope/absent.md) and [ok](real.md) "
        "and [web](https://example.com) and [anchor](#x)",
        encoding="utf-8",
    )
    (tmp_path / "real.md").write_text("here", encoding="utf-8")
    errors = check_docs.check_markdown_links(tmp_path)
    assert len(errors) == 1 and "nope/absent.md" in errors[0]


def test_checker_cli_entrypoint():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "docs check: ok" in result.stdout
