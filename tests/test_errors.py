"""Tests for the error hierarchy and cross-cutting failure behavior."""

import pytest

from repro.errors import (
    CycleError,
    DatalogError,
    DatalogParseError,
    EvaluationError,
    IndexingError,
    ProQLError,
    ProQLSemanticError,
    ProQLSyntaxError,
    ProvenanceError,
    ReproError,
    SchemaError,
    SemiringError,
    StorageError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            SchemaError,
            DatalogError,
            DatalogParseError,
            EvaluationError,
            SemiringError,
            ProvenanceError,
            CycleError,
            ProQLError,
            ProQLSyntaxError,
            ProQLSemanticError,
            StorageError,
            IndexingError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_parse_error_is_datalog_error(self):
        assert issubclass(DatalogParseError, DatalogError)

    def test_cycle_error_is_provenance_error(self):
        assert issubclass(CycleError, ProvenanceError)

    def test_proql_errors_under_proql(self):
        assert issubclass(ProQLSyntaxError, ProQLError)
        assert issubclass(ProQLSemanticError, ProQLError)

    def test_syntax_error_position(self):
        error = ProQLSyntaxError("bad", line=3, column=7)
        assert error.line == 3
        assert error.column == 7
        assert "line 3" in str(error)

    def test_syntax_error_without_position(self):
        error = ProQLSyntaxError("bad")
        assert "line" not in str(error)


class TestCatchability:
    """Library users can catch ReproError at an API boundary."""

    def test_bad_query_caught_as_repro_error(self, example_cdss):
        from repro.proql import GraphEngine

        engine = GraphEngine(example_cdss.graph, example_cdss.catalog)
        with pytest.raises(ReproError):
            engine.run("FOR [O $x RETURN $x")  # missing bracket
        with pytest.raises(ReproError):
            engine.run("FOR [O $x] RETURN $nope")  # unbound

    def test_bad_semiring_caught(self, example_cdss):
        from repro.proql import GraphEngine

        engine = GraphEngine(example_cdss.graph, example_cdss.catalog)
        with pytest.raises(ReproError):
            engine.run("EVALUATE NOPE OF { FOR [O $x] RETURN $x }")

    def test_unknown_pattern_relation_caught(self, acyclic_storage):
        from repro.proql import SQLEngine

        engine = SQLEngine(acyclic_storage)
        with pytest.raises(ReproError):
            engine.run("FOR [Zed $x] INCLUDE PATH [$x] <-+ [] RETURN $x")
