"""Property-based cross-checks of the evaluation engines.

Random small workloads; the semi-naive engine must agree with the
naive oracle on both the materialized instance and the full provenance
graph, and graph annotations must equal the provenance polynomial's
evaluation (the universal property on real data)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdss import CDSS, Peer
from repro.datalog import evaluate, evaluate_naive, parse_program
from repro.provenance import TupleNode, annotate, provenance_polynomial
from repro.relational import Catalog, Instance, RelationSchema
from repro.relational.schema import local_name
from repro.semirings import get_semiring
from repro.workloads.topologies import branched_edges, chain_edges

PROGRAM = parse_program(
    """
    L_R: R(x, y) :- R_l(x, y)
    L_S: S(x, y) :- S_l(x, y)
    join: T(x, z) :- R(x, y), S(y, z)
    copy: T(x, y) :- R(x, y)
    chain: U(x, z) :- T(x, y), T(y, z)
    """
)

edges = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=10, unique=True
)


def build_instance(r_rows, s_rows) -> Instance:
    catalog = Catalog(
        [
            RelationSchema.of("R_l", ["a", "b"]),
            RelationSchema.of("S_l", ["a", "b"]),
            RelationSchema.of("R", ["a", "b"]),
            RelationSchema.of("S", ["a", "b"]),
            RelationSchema.of("T", ["a", "b"]),
            RelationSchema.of("U", ["a", "b"]),
        ]
    )
    instance = Instance(catalog)
    instance.insert_many("R_l", r_rows)
    instance.insert_many("S_l", s_rows)
    return instance


@settings(max_examples=25, deadline=None)
@given(r_rows=edges, s_rows=edges)
def test_semi_naive_equals_naive(r_rows, s_rows):
    first = build_instance(r_rows, s_rows)
    second = build_instance(r_rows, s_rows)
    semi = evaluate(PROGRAM, first)
    naive = evaluate_naive(PROGRAM, second)
    assert first == second
    assert semi.graph == naive.graph


@settings(max_examples=15, deadline=None)
@given(r_rows=edges, s_rows=edges)
def test_polynomial_universal_property_on_real_graphs(r_rows, s_rows):
    instance = build_instance(r_rows, s_rows)
    result = evaluate(PROGRAM, instance)
    graph = result.graph
    if not graph.is_acyclic():  # pragma: no cover - program is acyclic
        return
    count = get_semiring("COUNT")
    counts = annotate(graph, count)
    for node in list(graph.tuples_in("U"))[:3]:
        poly = provenance_polynomial(graph, node)
        assert poly.evaluate(count, lambda leaf: 1) == counts[node]


@settings(max_examples=15, deadline=None)
@given(r_rows=edges, s_rows=edges)
def test_derivability_matches_membership(r_rows, s_rows):
    """Everything materialized is derivable; derivability over the
    graph must be uniformly true (the least-model property)."""
    instance = build_instance(r_rows, s_rows)
    result = evaluate(PROGRAM, instance)
    values = annotate(result.graph, get_semiring("DERIVABILITY"))
    assert all(values[node] for node in result.graph.tuples)


def _topology_cdss(kind: str, num_peers: int) -> CDSS:
    """A miniature chain/branched CDSS with 2-ary SWISS-PROT-style
    partitions (same mapping shape as the benchmark workloads)."""
    edge_fn = chain_edges if kind == "chain" else branched_edges
    cdss = CDSS(
        Peer.of(
            f"P{i}",
            [
                RelationSchema.of(f"P{i}_R1", ["k", "a"]),
                RelationSchema.of(f"P{i}_R2", ["k", "b"]),
            ],
        )
        for i in range(num_peers)
    )
    for number, (src, dst) in enumerate(edge_fn(num_peers), start=1):
        cdss.add_mapping(
            f"P{dst}_R1(k, a), P{dst}_R2(k, b) :- "
            f"P{src}_R1(k, a), P{src}_R2(k, b)",
            name=f"m{number}",
        )
    return cdss


def _insert_rows(instance, num_peers, rows):
    inserted = {}
    for peer, k, v in rows:
        peer %= num_peers
        for suffix in ("R1", "R2"):
            relation = local_name(f"P{peer}_{suffix}")
            if instance.insert(relation, (k, v)):
                inserted.setdefault(relation, set()).add((k, v))
    return inserted


topology_rows = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 3), st.integers(0, 3)),
    max_size=8,
    unique=True,
)


@settings(max_examples=20, deadline=None)
@given(
    kind=st.sampled_from(["chain", "branched"]),
    num_peers=st.integers(2, 5),
    rows=topology_rows,
)
def test_planned_evaluate_matches_naive_on_topologies(kind, num_peers, rows):
    """The compiled-plan engine and the naive oracle agree on instance
    and provenance graph (node/edge sets) for the workload shapes."""
    cdss = _topology_cdss(kind, num_peers)
    program = cdss.program()
    first = Instance(cdss.catalog)
    second = Instance(cdss.catalog)
    _insert_rows(first, num_peers, rows)
    _insert_rows(second, num_peers, rows)
    semi = evaluate(program, first)
    naive = evaluate_naive(program, second)
    assert first == second
    assert semi.graph.tuples == naive.graph.tuples
    assert semi.graph.derivations == naive.graph.derivations


@settings(max_examples=20, deadline=None)
@given(
    kind=st.sampled_from(["chain", "branched"]),
    num_peers=st.integers(2, 4),
    base_rows=topology_rows,
    extra_rows=topology_rows,
)
def test_incremental_exchange_matches_from_scratch(
    kind, num_peers, base_rows, extra_rows
):
    """Full exchange + initial_delta increment == one exchange over all
    the data (instance and graph), for both topology shapes."""
    cdss = _topology_cdss(kind, num_peers)
    program = cdss.program()

    incremental = Instance(cdss.catalog)
    _insert_rows(incremental, num_peers, base_rows)
    result = evaluate(program, incremental)
    delta = _insert_rows(incremental, num_peers, extra_rows)
    evaluate(program, incremental, graph=result.graph, initial_delta=delta)

    scratch = Instance(cdss.catalog)
    _insert_rows(scratch, num_peers, base_rows)
    _insert_rows(scratch, num_peers, extra_rows)
    oracle = evaluate_naive(program, scratch)

    assert incremental == scratch
    assert result.graph.tuples == oracle.graph.tuples
    assert result.graph.derivations == oracle.graph.derivations


def _insert_local_rows(cdss: CDSS, num_peers, rows):
    """CDSS-level twin of :func:`_insert_rows` (queues pending rows)."""
    for peer, k, v in rows:
        peer %= num_peers
        for suffix in ("R1", "R2"):
            cdss.insert_local(f"P{peer}_{suffix}", (k, v))


@settings(max_examples=15, deadline=None)
@given(
    kind=st.sampled_from(["chain", "branched"]),
    num_peers=st.integers(2, 4),
    base_rows=topology_rows,
    extra_rows=topology_rows,
)
def test_sqlite_engine_matches_memory_engine(
    kind, num_peers, base_rows, extra_rows
):
    """The set-oriented SQLite engine and the in-memory engine yield
    identical instances and provenance graphs on both topology shapes,
    for the full exchange AND the incremental (initial_delta) call —
    and the second exchange compiles 0 plans (program-cache hit) in
    both engines."""
    systems = {}
    for engine in ("memory", "sqlite"):
        system = _topology_cdss(kind, num_peers)
        _insert_local_rows(system, num_peers, base_rows)
        first = system.exchange(engine=engine)
        assert not first.plan_cache_hit
        _insert_local_rows(system, num_peers, extra_rows)
        second = system.exchange(engine=engine)
        assert second.plan_cache_hit
        assert second.plans_compiled == 0
        systems[engine] = system
    memory, sqlite = systems["memory"], systems["sqlite"]
    assert memory.instance == sqlite.instance
    assert memory.graph.tuples == sqlite.graph.tuples
    assert memory.graph.derivations == sqlite.graph.derivations


@settings(max_examples=15, deadline=None)
@given(r_rows=edges, s_rows=edges, drop=st.integers(0, 9))
def test_deletion_propagation_equals_recomputation(r_rows, s_rows, drop):
    """Deleting one base tuple + propagate == evaluating from scratch
    without it (the Q5 maintenance invariant)."""
    if not r_rows:
        return
    victim = r_rows[drop % len(r_rows)]

    # From-scratch world without the victim.
    reference = build_instance([r for r in r_rows if r != victim], s_rows)
    evaluate(PROGRAM, reference)

    # Incremental world: full exchange, then delete + propagate.
    from repro.cdss import CDSS, Peer

    system = CDSS(
        [
            Peer.of(
                "P",
                [
                    RelationSchema.of("R", ["a", "b"]),
                    RelationSchema.of("S", ["a", "b"]),
                    RelationSchema.of("T", ["a", "b"]),
                    RelationSchema.of("U", ["a", "b"]),
                ],
            )
        ]
    )
    system.add_mapping("join: T(x, z) :- R(x, y), S(y, z)", name="join")
    system.add_mapping("copy: T(x, y) :- R(x, y)", name="copy")
    system.add_mapping("chain: U(x, z) :- T(x, y), T(y, z)", name="chain")
    system.insert_local_many("R", r_rows)
    system.insert_local_many("S", s_rows)
    system.exchange()
    system.delete_local("R", victim)
    system.propagate_deletions()

    for relation in ("T", "U"):
        assert system.instance[relation] == reference[relation], relation


@settings(max_examples=10, deadline=None)
@given(
    kind=st.sampled_from(["chain", "branched"]),
    num_peers=st.integers(2, 4),
    base_rows=topology_rows,
    extra_rows=topology_rows,
    drop=st.integers(0, 7),
)
def test_engines_agree_after_deletions_with_incremental_sync(
    kind, num_peers, base_rows, extra_rows, drop
):
    """Full exchange, delete_local + propagate_deletions, then an
    incremental exchange: both engines end with identical instances and
    provenance graphs, and the SQLite mirror — synced incrementally,
    with full reloads only where deletions struck — decodes back to
    exactly the instance."""
    victims = base_rows[: drop % (len(base_rows) + 1)]
    systems = {}
    for engine in ("memory", "sqlite"):
        system = _topology_cdss(kind, num_peers)
        _insert_local_rows(system, num_peers, base_rows)
        system.exchange(engine=engine)
        for peer, k, v in victims:
            peer %= num_peers
            for suffix in ("R1", "R2"):
                system.delete_local(f"P{peer}_{suffix}", (k, v))
        system.propagate_deletions()
        _insert_local_rows(system, num_peers, extra_rows)
        second = system.exchange(engine=engine)
        assert second.plan_cache_hit
        systems[engine] = system
    memory, sqlite = systems["memory"], systems["sqlite"]
    assert memory.instance == sqlite.instance
    assert memory.graph.tuples == sqlite.graph.tuples
    assert memory.graph.derivations == sqlite.graph.derivations
    store = sqlite.exchange_store
    for schema in sqlite.catalog:
        assert store.relation_rows(schema) == set(
            sqlite.instance[schema.name]
        ), schema.name


@settings(max_examples=10, deadline=None)
@given(
    kind=st.sampled_from(["chain", "branched"]),
    num_peers=st.integers(2, 4),
    base_rows=topology_rows,
    extra_rows=topology_rows,
    drop=st.integers(0, 7),
)
def test_resident_sql_deletion_matches_graph_engine(
    kind, num_peers, base_rows, extra_rows, drop
):
    """Store-resident deletion propagation (the SQL derivability
    fixpoint over P_m) and the memory engine's graph-based
    propagate_deletions agree on the surviving instance, on the
    surviving P_m firing history, and on the deletion statistics — and
    a post-delete incremental exchange still ships only the changed
    relations into the store."""
    import tempfile
    from pathlib import Path

    from repro.storage import provenance_rows

    victims = base_rows[: drop % (len(base_rows) + 1)]

    def seed(system):
        for peer, k, v in base_rows:
            peer %= num_peers
            for suffix in ("R1", "R2"):
                system.insert_local(f"P{peer}_{suffix}", (k, v))

    def delete(system):
        for peer, k, v in victims:
            peer %= num_peers
            for suffix in ("R1", "R2"):
                system.delete_local(f"P{peer}_{suffix}", (k, v))

    memory = _topology_cdss(kind, num_peers)
    seed(memory)
    memory.exchange()
    delete(memory)
    memory.propagate_deletions()

    with tempfile.TemporaryDirectory() as tmpdir:
        resident = _topology_cdss(kind, num_peers)
        seed(resident)
        resident.exchange(
            engine="sqlite",
            storage=str(Path(tmpdir) / "resident.db"),
            resident=True,
        )
        delete(resident)
        resident.propagate_deletions()

        assert (
            resident.last_deletion.rows_deleted
            == memory.last_deletion.rows_deleted
        )
        assert (
            resident.last_deletion.pm_rows_collected
            == memory.last_deletion.pm_rows_collected
        )
        store = resident.exchange_store
        for schema in resident.catalog:
            assert store.relation_rows(schema) == set(
                memory.instance[schema.name]
            ), schema.name
        from test_exchange_sql import stored_pm_rows

        for name, mapping in resident.mappings.items():
            if mapping.is_superfluous or not mapping.provenance_columns:
                continue
            assert stored_pm_rows(store, mapping) == set(
                provenance_rows(memory.mappings[name], memory.graph)
            ), name

        # Post-delete incremental exchange: rows_mirrored counts only
        # the appended local rows — the deletion epochs were consumed
        # by the SQL victim marking, not by full relation reloads.
        appended = {}
        for peer, k, v in extra_rows:
            peer %= num_peers
            for suffix in ("R1", "R2"):
                relation = local_name(f"P{peer}_{suffix}")
                for system in (memory, resident):
                    if system.insert_local(relation, (k, v)) and system is resident:
                        appended.setdefault(relation, set()).add((k, v))
        memory.exchange()
        result = resident.exchange(engine="sqlite", resident=True)
        assert result.rows_mirrored == sum(
            len(rows) for rows in appended.values()
        )
        assert result.relations_synced == len(appended)
        for schema in resident.catalog:
            assert store.relation_rows(schema) == set(
                memory.instance[schema.name]
            ), schema.name


@settings(max_examples=10, deadline=None)
@given(
    kind=st.sampled_from(["chain", "branched"]),
    num_peers=st.integers(2, 4),
    base_rows=topology_rows,
    drop=st.integers(0, 7),
    node_pick=st.integers(0, 9999),
    distrust_pick=st.integers(0, 9),
)
def test_resident_graph_queries_match_graph_engine(
    kind, num_peers, base_rows, drop, node_pick, distrust_pick
):
    """Store-resident graph queries (SQL over the P_m firing history)
    and the graph engine agree node-for-node: same lineage set for a
    random query node, same trusted verdicts under a random policy,
    same derivability annotation over the same node set — on the fresh
    store AND again after delete_local + propagate_deletions."""
    import tempfile
    from pathlib import Path

    from repro.cdss.trust import TrustPolicy

    victims = base_rows[: drop % (len(base_rows) + 1)]

    def seed(system):
        for peer, k, v in base_rows:
            peer %= num_peers
            for suffix in ("R1", "R2"):
                system.insert_local(f"P{peer}_{suffix}", (k, v))

    def delete(system):
        for peer, k, v in victims:
            peer %= num_peers
            for suffix in ("R1", "R2"):
                system.delete_local(f"P{peer}_{suffix}", (k, v))

    def policy_for(system):
        policy = TrustPolicy()
        # Condition keyed on the public relation name: applies to the
        # local leaves of the most-upstream peer's first partition.
        policy.trust_if(
            f"P{num_peers - 1}_R1", lambda values: values[1] % 2 == 0
        )
        names = sorted(system.mappings)
        if names:
            policy.distrust_mapping(names[distrust_pick % len(names)])
        return policy

    def check(memory, resident):
        assert resident.derivability() == memory.derivability()
        assert resident.trusted(policy_for(resident)) == memory.trusted(
            policy_for(memory)
        )
        nodes = sorted(memory.graph.tuples)
        if nodes:
            node = nodes[node_pick % len(nodes)]
            assert resident.lineage(node) == memory.lineage(node), node
        # The resident side answered relationally, graph still empty.
        assert resident.graph.size() == (0, 0)
        assert resident.last_graph_query.engine == "sqlite"

    memory = _topology_cdss(kind, num_peers)
    seed(memory)
    memory.exchange()
    with tempfile.TemporaryDirectory() as tmpdir:
        resident = _topology_cdss(kind, num_peers)
        seed(resident)
        resident.exchange(
            engine="sqlite",
            storage=str(Path(tmpdir) / "resident.db"),
            resident=True,
        )
        check(memory, resident)

        for system in (memory, resident):
            delete(system)
            system.propagate_deletions()
        check(memory, resident)
