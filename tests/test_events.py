"""Tests for lineage and probabilistic event-expression semirings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SemiringError
from repro.semirings import BOTTOM, LineageSemiring, ProbabilitySemiring, event
from repro.semirings.events import _absorb


class TestLineage:
    semiring = LineageSemiring()

    def test_bottom_is_plus_identity(self):
        assert self.semiring.plus(BOTTOM, frozenset([1])) == frozenset([1])
        assert self.semiring.plus(frozenset([1]), BOTTOM) == frozenset([1])

    def test_bottom_annihilates_product(self):
        assert self.semiring.times(BOTTOM, frozenset([1])) is BOTTOM

    def test_union_semantics(self):
        a, b = frozenset([1, 2]), frozenset([2, 3])
        assert self.semiring.plus(a, b) == frozenset([1, 2, 3])
        assert self.semiring.times(a, b) == frozenset([1, 2, 3])

    def test_bottom_is_singleton(self):
        from repro.semirings.events import _Bottom

        assert _Bottom() is BOTTOM


class TestAbsorption:
    def test_superset_clauses_dropped(self):
        dnf = _absorb([frozenset([1]), frozenset([1, 2]), frozenset([3])])
        assert dnf == frozenset({frozenset([1]), frozenset([3])})

    def test_empty_clause_absorbs_everything(self):
        dnf = _absorb([frozenset(), frozenset([1])])
        assert dnf == frozenset({frozenset()})


class TestProbabilityAlgebra:
    semiring = ProbabilitySemiring()

    def test_zero_one(self):
        assert self.semiring.zero == frozenset()
        assert self.semiring.one == frozenset([frozenset()])

    def test_times_is_conjunction(self):
        value = self.semiring.times(event("a"), event("b"))
        assert value == frozenset({frozenset({"a", "b"})})

    def test_plus_is_disjunction_with_absorption(self):
        ab = self.semiring.times(event("a"), event("b"))
        value = self.semiring.plus(event("a"), ab)
        assert value == event("a")


class TestProbabilityComputation:
    semiring = ProbabilitySemiring()

    def test_atomic_event(self):
        expr = event("a")
        assert self.semiring.probability(expr, {"a": 0.3}) == pytest.approx(0.3)

    def test_conjunction(self):
        expr = self.semiring.times(event("a"), event("b"))
        probability = self.semiring.probability(expr, {"a": 0.5, "b": 0.4})
        assert probability == pytest.approx(0.2)

    def test_disjoint_disjunction_inclusion_exclusion(self):
        expr = self.semiring.plus(event("a"), event("b"))
        probability = self.semiring.probability(expr, {"a": 0.5, "b": 0.5})
        # P(a or b) = 0.5 + 0.5 - 0.25
        assert probability == pytest.approx(0.75)

    def test_certain_and_impossible(self):
        assert self.semiring.probability(self.semiring.one, {}) == 1.0
        assert self.semiring.probability(self.semiring.zero, {}) == 0.0

    def test_missing_probability_raises(self):
        with pytest.raises(SemiringError):
            self.semiring.probability(event("a"), {})

    def test_monte_carlo_close_to_exact(self):
        probabilities = {"a": 0.5, "b": 0.3, "c": 0.8}
        expr = self.semiring.plus(
            self.semiring.times(event("a"), event("b")), event("c")
        )
        exact = self.semiring.probability(expr, probabilities)
        estimate = self.semiring.probability(
            expr, probabilities, exact_limit=0, samples=40000, seed=7
        )
        assert estimate == pytest.approx(exact, abs=0.02)

    @settings(max_examples=25, deadline=None)
    @given(
        clauses=st.frozensets(
            st.frozensets(st.sampled_from("abc"), min_size=1, max_size=3),
            min_size=1,
            max_size=4,
        ),
        data=st.data(),
    )
    def test_inclusion_exclusion_matches_enumeration(self, clauses, data):
        probabilities = {
            e: data.draw(
                st.floats(min_value=0.1, max_value=0.9), label=f"p({e})"
            )
            for e in "abc"
        }
        expr = self.semiring.validate(clauses)
        computed = self.semiring.probability(expr, probabilities)
        # brute-force over all 8 worlds
        total = 0.0
        for mask in range(8):
            world = {e for i, e in enumerate("abc") if mask >> i & 1}
            weight = 1.0
            for i, e in enumerate("abc"):
                weight *= (
                    probabilities[e] if e in world else 1 - probabilities[e]
                )
            if any(clause <= world for clause in expr):
                total += weight
        assert computed == pytest.approx(total, abs=1e-9)
