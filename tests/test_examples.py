"""Smoke tests: every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script), str(tmp_path / "out")],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example narrates what it does


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the paper reproduction ships >= 3 examples"
