"""Smoke tests: every example script must run cleanly end to end."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def subprocess_env(base: dict | None = None) -> dict:
    """Environment for example subprocesses.

    The tier-1 command sets a *relative* ``PYTHONPATH=src``, which the
    examples (run with ``cwd=tmp_path``) would not resolve; prepend the
    absolute path to ``src/`` so the ``repro`` package imports from any
    working directory.
    """
    env = dict(os.environ if base is None else base)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src
    return env


def run_example(script, tmp_path, env=None):
    return subprocess.run(
        [sys.executable, str(script), str(tmp_path / "out")],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,
        env=subprocess_env(env),
    )


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, tmp_path):
    result = run_example(script, tmp_path)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout  # every example narrates what it does


def test_example_runs_with_relative_pythonpath(tmp_path):
    """Regression: a relative ``PYTHONPATH=src`` (the documented tier-1
    invocation) must not leak into example subprocesses unresolved."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    result = run_example(EXAMPLES[0], tmp_path, env=env)
    assert result.returncode == 0, result.stderr[-2000:]


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the paper reproduction ships >= 3 examples"
