"""Tests for the compiled-program cache (repro.exchange.cache)."""

import pytest

from repro.cdss import CDSS, Peer
from repro.datalog.parser import parse_program
from repro.exchange import (
    CompiledExchangeProgram,
    ProgramCache,
    compile_exchange_program,
    program_fingerprint,
)
from repro.relational import RelationSchema


def simple_program(extra: str = ""):
    text = """
    L_R: R(x, y) :- R_l(x, y)
    join: T(x, z) :- R(x, y), R(y, z)
    """
    if extra:
        text += extra + "\n"
    return parse_program(text)


class TestFingerprint:
    def test_stable_across_parses(self):
        assert program_fingerprint(simple_program()) == program_fingerprint(
            simple_program()
        )

    def test_sensitive_to_rules(self):
        assert program_fingerprint(simple_program()) != program_fingerprint(
            simple_program("copy: T(x, y) :- R(x, y)")
        )

    def test_insensitive_to_rule_order(self):
        # Rule order cannot change a semi-naive fixpoint, so reordered
        # programs share plans instead of recompiling.
        a = parse_program("r1: T(x) :- R(x)\nr2: U(x) :- R(x)")
        b = parse_program("r2: U(x) :- R(x)\nr1: T(x) :- R(x)")
        assert program_fingerprint(a) == program_fingerprint(b)

    def test_sensitive_to_rule_names(self):
        a = parse_program("r1: T(x) :- R(x)")
        b = parse_program("r2: T(x) :- R(x)")
        assert program_fingerprint(a) != program_fingerprint(b)


class TestProgramCache:
    def test_miss_then_hit(self):
        cache = ProgramCache()
        program = simple_program()
        first, hit1 = cache.fetch(program)
        second, hit2 = cache.fetch(simple_program())
        assert (hit1, hit2) == (False, True)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_reordered_program_hits_and_evaluates_identically(self):
        """A reordered (logically identical) program is a cache hit,
        and evaluating through the cached entry — whose compiled rules
        keep the *first* program's order — produces the same instance
        and provenance graph as compiling fresh."""
        from repro.datalog import evaluate, parse_program as parse
        from repro.relational import Catalog, Instance, RelationSchema

        text_a = "L_R: R(x, y) :- R_l(x, y)\njoin: T(x, z) :- R(x, y), R(y, z)"
        text_b = "join: T(x, z) :- R(x, y), R(y, z)\nL_R: R(x, y) :- R_l(x, y)"
        cache = ProgramCache()
        entry_a, hit_a = cache.fetch(parse(text_a))
        entry_b, hit_b = cache.fetch(parse(text_b))
        assert (hit_a, hit_b) == (False, True)
        assert entry_a is entry_b

        catalog = Catalog(
            [
                RelationSchema.of("R_l", ["a", "b"]),
                RelationSchema.of("R", ["a", "b"]),
                RelationSchema.of("T", ["a", "b"]),
            ]
        )
        cached, fresh = Instance(catalog), Instance(catalog)
        for instance in (cached, fresh):
            instance.insert_many("R_l", [(1, 2), (2, 3), (3, 1)])
        via_cache = evaluate(parse(text_b), cached, compiled_program=entry_b)
        via_compile = evaluate(parse(text_b), fresh)
        assert via_cache.plans_compiled == 0
        assert cached == fresh
        assert via_cache.graph.tuples == via_compile.graph.tuples
        assert via_cache.graph.derivations == via_compile.graph.derivations

    def test_invalidate_drops_entries(self):
        cache = ProgramCache()
        cache.fetch(simple_program())
        assert len(cache) == 1
        cache.invalidate()
        assert len(cache) == 0
        _, hit = cache.fetch(simple_program())
        assert not hit

    def test_plan_count(self):
        program = compile_exchange_program(simple_program())
        assert isinstance(program, CompiledExchangeProgram)
        # L_R has 1 body atom, join has 2 -> 3 plans.
        assert program.plan_count == 3


def _cdss():
    system = CDSS(
        [
            Peer.of(
                "P",
                [
                    RelationSchema.of("R", ["a", "b"]),
                    RelationSchema.of("T", ["a", "b"]),
                ],
            )
        ]
    )
    system.add_mapping("m1: T(x, z) :- R(x, y), R(y, z)", name="m1")
    system.insert_local_many("R", [(1, 2), (2, 3)])
    return system


class TestCDSSIntegration:
    @pytest.mark.parametrize("engine", ["memory", "sqlite"])
    def test_second_exchange_compiles_zero_plans(self, engine):
        system = _cdss()
        first = system.exchange(engine=engine)
        assert first.plans_compiled > 0
        assert not first.plan_cache_hit
        system.insert_local("R", (3, 4))
        second = system.exchange(engine=engine)
        assert second.plans_compiled == 0
        assert second.plan_cache_hit
        assert system.plan_cache.hits == 1

    def test_add_mapping_invalidates(self):
        system = _cdss()
        system.exchange()
        system.add_mapping("m2: T(x, y) :- R(x, y)", name="m2")
        result = system.exchange()
        assert result.plans_compiled > 0
        assert not result.plan_cache_hit

    def test_add_peer_invalidates(self):
        system = _cdss()
        system.exchange()
        system.add_peer(Peer.of("Q", [RelationSchema.of("S", ["a"])]))
        result = system.exchange()
        assert result.plans_compiled > 0
        assert not result.plan_cache_hit

    def test_engines_share_cache(self):
        system = _cdss()
        system.exchange(engine="memory")
        system.insert_local("R", (5, 6))
        result = system.exchange(engine="sqlite")
        assert result.plan_cache_hit
        assert result.plans_compiled == 0

    def test_unknown_engine_rejected(self):
        from repro.errors import ExchangeError

        with pytest.raises(ExchangeError):
            _cdss().exchange(engine="postgres")
