"""Tests for the SQL-backed update-exchange engine.

The acceptance bar: ``engine="sqlite"`` must produce instances and
provenance graphs *identical* to ``engine="memory"`` — on the paper's
running example (cyclic and acyclic), with labeled nulls, across
incremental calls, and out-of-core (on-disk store).
"""

import pytest

from repro.cdss import CDSS, Peer
from repro.errors import ExchangeError
from repro.exchange.sql_executor import ExchangeStore, SQLiteExchangeEngine
from repro.relational import RelationSchema
from repro.storage import provenance_rows
from repro.storage.encoding import quote_identifier

# The running example (Example 2.1 / Figure 1), self-contained so this
# module imports identically from the repo root and from tests/.
EXAMPLE_MAPPINGS = [
    "m1: C(i, n) :- A(i, s, _), N(i, n, false)",
    "m2: N(i, n, true) :- A(i, n, _)",
    "m3: N(i, n, false) :- C(i, n)",
    "m4: O(n, h, true) :- A(i, n, h)",
    "m5: O(n, h, true) :- A(i, _, h), C(i, n)",
]


def example_peers() -> list[Peer]:
    return [
        Peer.of(
            "P1",
            [
                RelationSchema.of("A", ["id", ("sn", "str"), "len"], key=["id"]),
                RelationSchema.of("C", ["id", ("name", "str")], key=["id", "name"]),
            ],
        ),
        Peer.of(
            "P2",
            [
                RelationSchema.of(
                    "N",
                    ["id", ("name", "str"), ("canon", "bool")],
                    key=["id", "name"],
                )
            ],
        ),
        Peer.of(
            "P3",
            [
                RelationSchema.of(
                    "O", [("name", "str"), "h", ("animal", "bool")], key=["name"]
                )
            ],
        ),
    ]


def populate_example(system: CDSS) -> CDSS:
    insert_example_data(system)
    system.exchange()
    return system


def example_twins(mappings=EXAMPLE_MAPPINGS):
    """Two structurally identical CDSSs over the running example."""
    out = []
    for _ in range(2):
        system = CDSS(example_peers())
        system.add_mappings(mappings)
        out.append(system)
    return out


def insert_example_data(system: CDSS) -> None:
    """Figure 1's base data, without running an exchange."""
    system.insert_local("A", (1, "sn1", 7))
    system.insert_local("A", (2, "sn1", 5))
    system.insert_local("N", (1, "cn1", False))
    system.insert_local("C", (2, "cn2"))


def assert_same_state(memory: CDSS, sqlite: CDSS) -> None:
    assert memory.instance == sqlite.instance
    assert memory.graph.tuples == sqlite.graph.tuples
    assert memory.graph.derivations == sqlite.graph.derivations


class TestEngineEquivalence:
    def test_running_example_cyclic(self):
        memory, sql = example_twins()
        populate_example(memory)
        insert_example_data(sql)
        result = sql.exchange(engine="sqlite")
        assert result.engine == "sqlite"
        assert result.firings == memory.last_exchange.firings
        assert result.inserted == memory.last_exchange.inserted
        assert_same_state(memory, sql)

    def test_running_example_acyclic(self):
        mappings = [m for m in EXAMPLE_MAPPINGS if not m.startswith("m3")]
        memory, sql = example_twins(mappings)
        populate_example(memory)
        insert_example_data(sql)
        sql.exchange(engine="sqlite")
        assert_same_state(memory, sql)

    def test_incremental_updates(self):
        memory, sql = example_twins()
        for system, engine in ((memory, "memory"), (sql, "sqlite")):
            system.insert_local("A", (1, "sn1", 7))
            system.insert_local("N", (1, "cn1", False))
            system.exchange(engine=engine)
            system.insert_local("A", (2, "sn1", 5))
            system.insert_local("C", (2, "cn2"))
            system.exchange(engine=engine)
        assert_same_state(memory, sql)

    def test_skolem_values_join_in_sql(self):
        def build():
            system = CDSS(
                [
                    Peer.of(
                        "P",
                        [
                            RelationSchema.of("A", ["x"]),
                            RelationSchema.of("B", ["x", "y"]),
                            RelationSchema.of("D", ["x", "y"]),
                        ],
                    )
                ]
            )
            # Existential y becomes a labeled null; m2 must join on it.
            system.add_mapping("m1: B(x, y) :- A(x)", name="m1")
            system.add_mapping("m2: D(x, y) :- B(x, y), A(x)", name="m2")
            system.insert_local_many("A", [(1,), (2,)])
            return system

        memory, sql = build(), build()
        memory.exchange()
        sql.exchange(engine="sqlite")
        assert_same_state(memory, sql)
        assert memory.instance.size("D") == 2

    def test_empty_incremental_exchange(self):
        memory, sql = example_twins()
        populate_example(memory)
        insert_example_data(sql)
        sql.exchange(engine="sqlite")
        memory.exchange()  # no pending rows
        result = sql.exchange(engine="sqlite")  # no pending rows
        assert result.iterations == 0
        assert result.inserted == 0
        assert_same_state(memory, sql)


class TestProvenanceRelations:
    def test_pm_rows_match_graph_encoding(self):
        _, system = example_twins()
        insert_example_data(system)
        system.exchange(engine="sqlite")
        store = system.exchange_store
        for name, mapping in system.mappings.items():
            if mapping.is_superfluous or not mapping.provenance_columns:
                continue
            table = quote_identifier(f"P_{name}")
            stored = {
                tuple(
                    store.codec.decode(value, column.type)
                    for value, column in zip(row, mapping.provenance_columns)
                )
                for row in store.connection.execute(f"SELECT * FROM {table}")
            }
            expected = set(provenance_rows(mapping, system.graph))
            assert stored == expected, name

    def test_pm_rows_accumulate_incrementally(self):
        _, system = example_twins()
        system.insert_local("A", (1, "sn1", 7))
        system.insert_local("N", (1, "cn1", False))
        system.exchange(engine="sqlite")
        system.insert_local("A", (2, "sn1", 5))
        system.insert_local("C", (2, "cn2"))
        system.exchange(engine="sqlite")
        store = system.exchange_store
        mapping = system.mappings["m1"]
        stored = {
            tuple(
                store.codec.decode(value, column.type)
                for value, column in zip(row, mapping.provenance_columns)
            )
            for row in store.connection.execute('SELECT * FROM "P_m1"')
        }
        assert stored == set(provenance_rows(mapping, system.graph))


class TestExchangeStore:
    def test_on_disk_store(self, tmp_path):
        path = str(tmp_path / "exchange.db")
        memory, sql = example_twins()
        populate_example(memory)
        insert_example_data(sql)
        sql.exchange(engine="sqlite", storage=path)
        assert sql.exchange_store.path == path
        # Incremental call with the same path reuses the store.
        store = sql.exchange_store
        sql.insert_local("A", (3, "sn3", 9))
        memory.insert_local("A", (3, "sn3", 9))
        sql.exchange(engine="sqlite", storage=path)
        memory.exchange()
        assert sql.exchange_store is store
        assert_same_state(memory, sql)

    def test_store_context_manager(self):
        with ExchangeStore() as store:
            assert not store.closed
        assert store.closed
        store.close()  # idempotent

    def test_engine_rejects_closed_store(self):
        store = ExchangeStore()
        store.close()
        with pytest.raises(ExchangeError):
            SQLiteExchangeEngine(store)

    def test_explicit_store_hook(self):
        _, system = example_twins()
        system.insert_local("A", (1, "sn1", 7))
        with ExchangeStore() as store:
            system.exchange(engine="sqlite", storage=store)
            assert system.exchange_store is store

    def test_replaced_owned_store_is_closed(self, tmp_path):
        _, system = example_twins()
        system.insert_local("A", (1, "sn1", 7))
        system.exchange(engine="sqlite")  # CDSS-owned default store
        owned = system.exchange_store
        system.insert_local("A", (2, "sn2", 8))
        system.exchange(engine="sqlite", storage=str(tmp_path / "a.db"))
        assert owned.closed  # no connection leak

    def test_caller_store_not_closed_on_replacement(self, tmp_path):
        _, system = example_twins()
        system.insert_local("A", (1, "sn1", 7))
        with ExchangeStore() as caller_store:
            system.exchange(engine="sqlite", storage=caller_store)
            system.insert_local("A", (2, "sn2", 8))
            system.exchange(engine="sqlite", storage=str(tmp_path / "b.db"))
            # The caller's store is theirs to close.
            assert not caller_store.closed

    def test_memory_engine_rejects_storage(self):
        _, system = example_twins()
        system.insert_local("A", (1, "sn1", 7))
        with pytest.raises(ExchangeError):
            system.exchange(engine="memory", storage="somewhere.db")


class TestLoweringLimits:
    def test_skolem_body_rule_rejected(self):
        from repro.datalog.parser import parse_rule
        from repro.datalog.rules import Rule
        from repro.datalog.terms import SkolemTerm, Variable
        from repro.datalog.atoms import Atom
        from repro.exchange.cache import compile_exchange_program
        from repro.exchange.sql_plans import lower_program
        from repro.relational.instance import Catalog
        from repro.storage.encoding import ValueCodec

        x = Variable("x")
        body_atom = Atom("R", (SkolemTerm("f", (x,)), x))
        rule = Rule("weird", (Atom("T", (x,)),), (body_atom,))
        catalog = Catalog(
            [
                RelationSchema.of("R", ["a", "b"]),
                RelationSchema.of("T", ["a"]),
            ]
        )
        from repro.datalog.planner import compile_rule

        compiled = compile_rule(rule)
        assert not compiled.plans  # planner falls back -> SQL must refuse
        with pytest.raises(ExchangeError):
            lower_program([compiled], catalog, {}, ValueCodec())
